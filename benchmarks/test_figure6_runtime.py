"""Figure 6 — battleship selection runtime per active-learning iteration.

The paper observes that the per-iteration runtime of the battleship approach
*decreases* over the learning course, because the prediction-based graphs are
built over a shrinking pool.  The bench records the measured selection time of
every iteration on two datasets and checks the decreasing trend (first half
vs. second half of the iterations).  A second bench scales the selection
substrate itself to a 5k-node pool and checks the vectorized CSR path beats
the seed dict path by at least 5x.
"""

import numpy as np

from repro.evaluation.reporting import format_table
from repro.experiments.figures import figure6_runtime

_DATASETS = ("walmart_amazon", "amazon_google")


def test_figure6_runtime(benchmark, bench_settings, write_report):
    rows = benchmark.pedantic(figure6_runtime, args=(bench_settings, _DATASETS),
                              rounds=1, iterations=1)
    assert rows
    for dataset in _DATASETS:
        runtimes = [row["selection_seconds"] for row in rows if row["dataset"] == dataset]
        assert len(runtimes) == bench_settings.iterations
        assert all(seconds > 0 for seconds in runtimes)
        # Decreasing trend: the average of the later iterations should not
        # exceed the average of the earlier iterations by much.
        half = len(runtimes) // 2
        if half >= 1:
            early, late = np.mean(runtimes[:half]), np.mean(runtimes[half:])
            assert late <= early * 1.5
    write_report("figure6_runtime",
                 format_table(rows, title="Figure 6 — battleship selection runtime "
                                          "(seconds) per iteration", float_format="{:.3f}"))


def test_figure6_substrate_scaling_5k(substrate_scaling_5k, write_report):
    """Selection-substrate pass on a 5k-node pool: CSR path vs. seed path.

    The paper's scalability discussion rests on the graph substrate; the
    vectorized stack (argpartition q-NN builder, batched certainty, sparse
    per-component PageRank) must beat the dict-based seed stack while
    producing the same graph.  The shared session fixture provides the single
    timed measurement; the hard >= 5x gate lives in the micro-benchmark.
    """
    measured = substrate_scaling_5k
    assert measured["vectorized_edges"] == measured["reference_edges"]
    rows = [
        {"path": "seed (dict)", "seconds": round(measured["reference_seconds"], 3),
         "edges": measured["reference_edges"]},
        {"path": "vectorized (CSR)",
         "seconds": round(measured["vectorized_seconds"], 3),
         "edges": measured["vectorized_edges"]},
    ]
    write_report("figure6_substrate_scaling",
                 format_table(rows, title=f"Figure 6 — substrate pass on a 5k-node "
                                          f"pool (speedup {measured['speedup']:.1f}x)"))
    assert measured["vectorized_seconds"] < measured["reference_seconds"], (
        "vectorized substrate did not beat the seed path")
