"""Figure 6 — battleship selection runtime per active-learning iteration.

The paper observes that the per-iteration runtime of the battleship approach
*decreases* over the learning course, because the prediction-based graphs are
built over a shrinking pool.  The bench records the measured selection time of
every iteration on two datasets and checks the decreasing trend (first half
vs. second half of the iterations).
"""

import numpy as np

from repro.evaluation.reporting import format_table
from repro.experiments.figures import figure6_runtime

_DATASETS = ("walmart_amazon", "amazon_google")


def test_figure6_runtime(benchmark, bench_settings, write_report):
    rows = benchmark.pedantic(figure6_runtime, args=(bench_settings, _DATASETS),
                              rounds=1, iterations=1)
    assert rows
    for dataset in _DATASETS:
        runtimes = [row["selection_seconds"] for row in rows if row["dataset"] == dataset]
        assert len(runtimes) == bench_settings.iterations
        assert all(seconds > 0 for seconds in runtimes)
        # Decreasing trend: the average of the later iterations should not
        # exceed the average of the earlier iterations by much.
        half = len(runtimes) // 2
        if half >= 1:
            early, late = np.mean(runtimes[:half]), np.mean(runtimes[half:])
            assert late <= early * 1.5
    write_report("figure6_runtime",
                 format_table(rows, title="Figure 6 — battleship selection runtime "
                                          "(seconds) per iteration", float_format="{:.3f}"))
