"""Table 6 — weighting certainty vs. centrality (α ablation).

α = 1 ranks purely by certainty, α = 0 purely by centrality; the paper finds
the mixed settings (0.25-0.75) best on every dataset.  The reproduction runs
the sweep on the two ablation datasets and checks the mixed settings are
competitive with the pure ones.
"""

from repro.evaluation.reporting import format_table
from repro.experiments.configs import ABLATION_DATASETS
from repro.experiments.tables import table6_alpha_ablation

_ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_table6_alpha_ablation(benchmark, bench_settings, write_report):
    rows = benchmark.pedantic(
        table6_alpha_ablation,
        args=(bench_settings, ABLATION_DATASETS, _ALPHAS),
        rounds=1, iterations=1,
    )
    assert len(rows) == len(ABLATION_DATASETS)
    for row in rows:
        measured = {alpha: row[f"alpha_{alpha}"] for alpha in _ALPHAS}
        assert all(0.0 <= value <= 100.0 for value in measured.values())
        mixed_best = max(measured[0.25], measured[0.5], measured[0.75])
        pure_best = max(measured[0.0], measured[1.0])
        # Mixed settings should not be dominated by the pure ones.
        assert mixed_best >= pure_best * 0.9
    write_report("table6_alpha_ablation",
                 format_table(rows, title="Table 6 — final F1 for different alpha values "
                                          "(measured vs. paper)"))
