"""Figure 5 — F1 vs. cumulative labeled samples for every method and dataset.

The headline comparison of the paper: the battleship approach against Random,
DAL, and a DIAL-style committee on all six benchmarks.  The absolute numbers
differ from the paper (synthetic data, NumPy matcher), but the shape should
hold: battleship's curve should dominate the baselines on most datasets,
especially in AUC terms (see the Table 5 bench).
"""

import numpy as np

from repro.evaluation.reporting import format_learning_curves
from repro.experiments.runner import run_learning_curves


def test_figure5_learning_curves(benchmark, bench_settings, headline_curves, write_report):
    # The heavy sweep is computed once in the session fixture; the benchmark
    # measures a representative single-dataset/method run for timing purposes.
    benchmark.pedantic(
        run_learning_curves,
        args=(("amazon_google",), ("random",), bench_settings),
        rounds=1, iterations=1,
    )

    sections = []
    wins = 0
    comparisons = 0
    for dataset_name, curves in headline_curves.items():
        sections.append(format_learning_curves(
            curves, title=f"Figure 5 ({dataset_name}) — F1 (%) vs. labeled samples"))
        battleship_auc = curves["battleship"].auc()
        for method in ("random", "dal", "dial"):
            comparisons += 1
            if battleship_auc >= curves[method].auc():
                wins += 1

    for curves in headline_curves.values():
        for curve in curves.values():
            assert curve.labeled_counts == list(bench_settings.labeled_checkpoints)
            assert all(0.0 <= f1 <= 1.0 for f1 in curve.f1_scores)

    # Shape check: battleship dominates the majority of the baseline
    # comparisons across datasets (the paper reports it winning all of them).
    assert wins >= comparisons * 0.5
    write_report("figure5_learning_curves", "\n\n".join(sections))
