"""Ablation (ours, beyond the paper) — constrained vs. plain K-Means.

DESIGN.md calls out the constrained clustering as a design choice worth
ablating: the size bounds guarantee that every region can be represented under
the per-component budget distribution.  The bench compares the battleship
selector run with the paper's cluster-size constraints (5%-15%) against a run
whose clusters are effectively unconstrained.
"""

from repro.active.selectors import BattleshipConfig, BattleshipSelector
from repro.evaluation.reporting import format_table
from repro.experiments.runner import get_dataset, run_single

_DATASET = "amazon_google"


def test_ablation_constrained_clustering(benchmark, bench_settings, write_report):
    dataset = get_dataset(_DATASET, bench_settings)

    def run_both():
        constrained = run_single(
            dataset,
            BattleshipSelector(BattleshipConfig(min_cluster_fraction=0.05,
                                                max_cluster_fraction=0.15)),
            bench_settings, random_state=bench_settings.base_random_seed)
        unconstrained = run_single(
            dataset,
            BattleshipSelector(BattleshipConfig(min_cluster_fraction=0.01,
                                                max_cluster_fraction=0.9)),
            bench_settings, random_state=bench_settings.base_random_seed)
        return constrained, unconstrained

    constrained, unconstrained = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        {"variant": "constrained_kmeans (paper)",
         "final_f1": round(constrained.final_f1 * 100, 2),
         "auc": round(constrained.learning_curve().auc(), 2)},
        {"variant": "unconstrained_clusters",
         "final_f1": round(unconstrained.final_f1 * 100, 2),
         "auc": round(unconstrained.learning_curve().auc(), 2)},
    ]
    # Both runs must complete; the constrained variant should be competitive.
    assert constrained.final_f1 > 0.0
    assert unconstrained.final_f1 > 0.0
    assert constrained.learning_curve().auc() >= unconstrained.learning_curve().auc() * 0.8
    write_report("ablation_clustering",
                 format_table(rows, title="Ablation — constrained vs. unconstrained "
                                          f"clustering ({_DATASET})"))
