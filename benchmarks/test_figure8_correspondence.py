"""Figure 8 — the correspondence effect.

With α = 1 and β = 1 the battleship approach selects with exactly DAL's
criterion (model-confidence entropy), so any remaining difference is due to
the prediction-graph separation and the component-wise budget distribution.
The paper finds the battleship variant ahead for most of the learning course
(higher AUC); the reproduction checks the AUC relationship.
"""

from repro.evaluation.reporting import format_table
from repro.experiments.configs import ABLATION_DATASETS
from repro.experiments.figures import figure8_correspondence


def test_figure8_correspondence(benchmark, bench_settings, write_report):
    rows = benchmark.pedantic(figure8_correspondence,
                              args=(bench_settings, ABLATION_DATASETS),
                              rounds=1, iterations=1)
    assert len(rows) == len(ABLATION_DATASETS)
    ahead = 0
    for row in rows:
        assert row["battleship_final_f1"] > 0.0
        assert row["dal_final_f1"] > 0.0
        if row["battleship_auc"] >= row["dal_auc"] * 0.95:
            ahead += 1
    # Correspondence alone should keep the constrained variant competitive
    # with (and usually ahead of) plain DAL on at least one ablation dataset.
    assert ahead >= 1
    write_report("figure8_correspondence",
                 format_table(rows, title="Figure 8 — correspondence effect "
                                          "(battleship with alpha=1, beta=1 vs. DAL)"))
