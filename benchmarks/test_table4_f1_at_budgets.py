"""Table 4 — F1 with the mid- and final-budget labeled sets, plus ZeroER / Full D.

The mid/final checkpoints play the role of the paper's 500 / 900 labeled
samples.  Shape expectations: the fully trained model is an upper reference
for most methods, ZeroER needs no labels but is beaten by the battleship
approach after a couple of iterations, and battleship's final F1 leads the
active-learning baselines on most datasets.
"""

from repro.evaluation.reporting import format_table
from repro.experiments.tables import table4_f1_by_budget


def test_table4_f1_by_budget(benchmark, bench_settings, headline_curves, write_report):
    rows = benchmark.pedantic(
        table4_f1_by_budget,
        args=(headline_curves, bench_settings),
        kwargs={"include_reference_models": True},
        rounds=1, iterations=1,
    )
    methods = {row["method"] for row in rows}
    assert {"battleship", "dal", "random", "dial", "full_d", "zeroer"} <= methods

    battleship_wins = 0
    datasets = list(headline_curves)
    for dataset in datasets:
        by_method = {row["method"]: row for row in rows if row["dataset"] == dataset}
        battleship_final = by_method["battleship"]["f1_final"]
        baseline_best = max(by_method[m]["f1_final"] for m in ("dal", "random", "dial"))
        if battleship_final >= baseline_best:
            battleship_wins += 1
        # The battleship final model should at least reach ZeroER's level
        # (the paper: it overtakes ZeroER within two iterations).
        assert battleship_final >= by_method["zeroer"]["f1_final"] * 0.85

    assert battleship_wins >= len(datasets) // 2
    write_report("table4_f1_at_budgets",
                 format_table(rows, title="Table 4 — F1 at the mid and final "
                                          "labeling budgets (measured vs. paper)"))
