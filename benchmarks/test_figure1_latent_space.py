"""Figure 1 — match pairs concentrate in the latent space of a trained matcher.

The paper visualizes t-SNE projections of pair representations for
Amazon-Google and Walmart-Amazon.  The bench quantifies the phenomenon: the
fraction of nearest neighbours sharing a pair's label must far exceed the
positive rate, and match pairs must sit closer to the match centroid than to
the non-match centroid.
"""

from repro.evaluation.reporting import format_table
from repro.experiments.figures import figure1_latent_space


def test_figure1_latent_space(benchmark, bench_settings, write_report):
    def build():
        return [
            figure1_latent_space(name, bench_settings, max_points=250, run_tsne=True)
            for name in ("amazon_google", "walmart_amazon")
        ]

    reports = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [report.as_row() for report in reports]
    for report in reports:
        # Concentration: neighbours agree on the label far more often than the
        # base positive rate would imply.
        assert report.knn_label_agreement > max(0.6, report.positive_rate)
        # Match pairs cluster: closer to their own centroid.
        assert report.match_centroid_distance_ratio < 1.0
        # The 2-D embedding was produced.
        assert report.embedding.shape[1] == 2
    write_report("figure1_latent_space",
                 format_table(rows, title="Figure 1 — latent-space concentration "
                                          "of match pairs (fully trained matcher)"))
