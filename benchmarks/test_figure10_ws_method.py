"""Figure 10 — spatial vs. entropy-only weak supervision.

The battleship approach picks its weak labels by the spatially aware certainty
score (Eq. 4); DAL uses plain conditional entropy (Eq. 1).  The paper reports
a small but consistent AUC advantage for the spatial method when everything
else is held fixed.  The reproduction runs the battleship selector with both
weak-supervision methods and compares AUCs.
"""

from repro.evaluation.reporting import format_table
from repro.experiments.configs import ABLATION_DATASETS
from repro.experiments.figures import figure10_ws_method


def test_figure10_ws_method(benchmark, bench_settings, write_report):
    rows = benchmark.pedantic(figure10_ws_method,
                              args=(bench_settings, ABLATION_DATASETS),
                              rounds=1, iterations=1)
    assert len(rows) == len(ABLATION_DATASETS)
    competitive = 0
    for row in rows:
        assert row["battleship_ws_auc"] > 0
        assert row["dal_style_ws_auc"] > 0
        if row["battleship_ws_auc"] >= row["dal_style_ws_auc"] * 0.9:
            competitive += 1
    # The paper reports a modest edge for the spatial WS; at reduced scale we
    # require it to be at least competitive on the ablation datasets.
    assert competitive >= 1
    write_report("figure10_ws_method",
                 format_table(rows, title="Figure 10 — battleship WS vs. DAL-style WS "
                                          "(AUC, measured vs. paper)"))
