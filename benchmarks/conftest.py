"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The scale is
controlled by ``REPRO_SCALE`` (default ``tiny`` here so the whole harness runs
in minutes on a laptop; set ``REPRO_SCALE=paper`` for the full-size runs).
Reports are printed and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.config import get_scale
from repro.experiments.configs import ExperimentSettings, default_settings
from repro.experiments.runner import run_learning_curves
from repro.graphs.entropy import certainty_scores
from repro.graphs.pagerank import pagerank_per_component
from repro.graphs.pair_graph import build_pair_graph_reference
from repro.graphs.sparse import (
    build_sparse_adjacency,
    certainty_scores_batch,
    pagerank_components,
)
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig

_RESULTS_DIR = Path(__file__).parent / "results"

#: Methods compared in the headline experiments (Figure 5, Tables 4-5).
HEADLINE_METHODS = ("battleship", "dal", "dial", "random")


def _bench_scale_name() -> str:
    return os.environ.get("REPRO_SCALE", "tiny")


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings used by every benchmark."""
    scale = get_scale(_bench_scale_name())
    settings = default_settings(scale)
    if scale.name == "paper":
        return settings
    # Reduced scales use a faster matcher so the whole harness stays quick.
    return ExperimentSettings(
        scale=settings.scale,
        datasets=settings.datasets,
        iterations=settings.iterations,
        budget_per_iteration=settings.budget_per_iteration,
        seed_size=settings.seed_size,
        num_seeds=1,
        alphas=(0.5,),
        beta=0.5,
        matcher_config=MatcherConfig(hidden_dims=(96, 48), epochs=6, batch_size=16,
                                     learning_rate=2e-3, random_state=0),
        featurizer_config=FeaturizerConfig(hash_dim=128),
        base_random_seed=7,
    )


@pytest.fixture(scope="session")
def headline_curves(bench_settings):
    """Learning curves of all headline methods on all datasets (computed once).

    This is the data behind Figure 5 and Tables 4-5; sharing it across the
    benches avoids re-running the expensive active-learning sweeps.
    """
    return run_learning_curves(bench_settings.datasets, HEADLINE_METHODS, bench_settings)


def substrate_pool_inputs(num_nodes: int, dim: int = 64, num_clusters: int = 8,
                          seed: int = 0) -> dict:
    """A synthetic selection pool shared by the substrate scaling benches."""
    rng = np.random.default_rng(seed)
    return dict(
        representations=rng.normal(size=(num_nodes, dim)),
        node_ids=list(range(num_nodes)),
        predictions=rng.integers(0, 2, size=num_nodes),
        confidences=rng.uniform(0.5, 1.0, size=num_nodes),
        match_probabilities=rng.uniform(0.0, 1.0, size=num_nodes),
        labeled_mask=np.zeros(num_nodes, dtype=bool),
        cluster_labels=rng.integers(0, num_clusters, size=num_nodes),
        num_neighbors=15,
        extra_edge_ratio=0.03,
    )


def time_reference_substrate(inputs: dict) -> tuple[float, int]:
    """Seed path: dict builder + per-node certainty walk + per-component PageRank."""
    start = time.perf_counter()
    graph = build_pair_graph_reference(**inputs)
    certainty_scores(graph)
    pagerank_per_component(graph)
    return time.perf_counter() - start, graph.num_edges


def time_vectorized_substrate(inputs: dict) -> tuple[float, int]:
    """CSR path: vectorized builder + batched certainty + sparse PageRank."""
    start = time.perf_counter()
    adjacency = build_sparse_adjacency(**inputs)
    certainty_scores_batch(adjacency)
    pagerank_components(adjacency)
    return time.perf_counter() - start, adjacency.num_edges


@pytest.fixture(scope="session")
def substrate_scaling_5k() -> dict:
    """One timed selection-substrate pass on a 5k-node pool, both stacks.

    Session-scoped so the Figure 6 bench and the micro-benchmark share a
    single measurement (the reference pass costs seconds and a wall-clock
    comparison should get exactly one chance to run per session).
    """
    inputs = substrate_pool_inputs(5000)
    # Warm up BOTH paths outside the timed region (allocator and BLAS caches,
    # lazy numpy init) so neither measurement carries first-call overhead.
    warmup = substrate_pool_inputs(500, seed=1)
    time_vectorized_substrate(warmup)
    time_reference_substrate(warmup)
    # Best-of-two on BOTH sides: flake resistance against scheduler hiccups
    # without asymmetrically inflating the published speedup.
    vectorized_seconds, vectorized_edges = min(
        (time_vectorized_substrate(inputs) for _ in range(2)),
        key=lambda timed: timed[0])
    reference_seconds, reference_edges = min(
        (time_reference_substrate(inputs) for _ in range(2)),
        key=lambda timed: timed[0])
    return {
        "num_nodes": 5000,
        "vectorized_seconds": vectorized_seconds,
        "reference_seconds": reference_seconds,
        "vectorized_edges": vectorized_edges,
        "reference_edges": reference_edges,
        "speedup": reference_seconds / vectorized_seconds,
    }


@pytest.fixture(scope="session")
def write_report():
    """Callable writing a named report to benchmarks/results/ and stdout."""
    _RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = _RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[report written to {path}]")
        return path

    return _write
