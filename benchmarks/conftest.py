"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The scale is
controlled by ``REPRO_SCALE`` (default ``tiny`` here so the whole harness runs
in minutes on a laptop; set ``REPRO_SCALE=paper`` for the full-size runs).
Reports are printed and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.config import get_scale
from repro.experiments.configs import ExperimentSettings, default_settings
from repro.experiments.runner import run_learning_curves
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig

_RESULTS_DIR = Path(__file__).parent / "results"

#: Methods compared in the headline experiments (Figure 5, Tables 4-5).
HEADLINE_METHODS = ("battleship", "dal", "dial", "random")


def _bench_scale_name() -> str:
    return os.environ.get("REPRO_SCALE", "tiny")


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings used by every benchmark."""
    scale = get_scale(_bench_scale_name())
    settings = default_settings(scale)
    if scale.name == "paper":
        return settings
    # Reduced scales use a faster matcher so the whole harness stays quick.
    return ExperimentSettings(
        scale=settings.scale,
        datasets=settings.datasets,
        iterations=settings.iterations,
        budget_per_iteration=settings.budget_per_iteration,
        seed_size=settings.seed_size,
        num_seeds=1,
        alphas=(0.5,),
        beta=0.5,
        matcher_config=MatcherConfig(hidden_dims=(96, 48), epochs=6, batch_size=16,
                                     learning_rate=2e-3, random_state=0),
        featurizer_config=FeaturizerConfig(hash_dim=128),
        base_random_seed=7,
    )


@pytest.fixture(scope="session")
def headline_curves(bench_settings):
    """Learning curves of all headline methods on all datasets (computed once).

    This is the data behind Figure 5 and Tables 4-5; sharing it across the
    benches avoids re-running the expensive active-learning sweeps.
    """
    return run_learning_curves(bench_settings.datasets, HEADLINE_METHODS, bench_settings)


@pytest.fixture(scope="session")
def write_report():
    """Callable writing a named report to benchmarks/results/ and stdout."""
    _RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = _RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[report written to {path}]")
        return path

    return _write
