"""Micro-benchmarks of the batched blocking pipeline.

``MinHashLSHBlocker.block`` (batched: bulk tokenization + one
signature-matrix pass + array banding + sort-based candidate dedup) must
beat ``block_reference`` (the seed-era per-record signature loop over
dict-of-tuples band buckets) by at least 5x on a blocking-scale pool,
while producing the exact same candidate set.  The measured result is
published to ``BENCH_blocking.json`` at the repository root so the
performance trajectory of the blocking layer is tracked across PRs.

The pool is a duplicate-heavy templated catalog: 6k records per side in
groups of 15 sharing one title template (brands, nouns, and modifiers are
combinatorially distinct across groups, so candidates are exactly the
within-group cross products).  That is the regime blocking at scale must
survive — heavy value repetition rewards the batched path's memoized
extraction and record dedup, while the per-record reference path pays the
full tokenize/hash/permute cost for every copy.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.blocking.minhash_lsh import MinHashLSHBlocker
from repro.data.record import Record, Table
from repro.data.schema import Attribute, AttributeType, Schema

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_RESULT_PATH = _REPO_ROOT / "BENCH_blocking.json"
#: Minimum accepted batch-over-reference speedup.
_SPEEDUP_GATE = 5.0
_RECORDS_PER_SIDE = 6000
_NUM_GROUPS = 400
_NUM_PERMUTATIONS = 128
_NUM_BANDS = 16

_BRANDS = ("canon", "nikon", "sony", "hp", "dell", "asus", "logitech",
           "epson", "lenovo", "apple", "samsung", "lg")
_NOUNS = ("camera", "lens", "printer", "laptop", "monitor", "router",
          "keyboard", "speaker", "tablet", "drive")
_MODIFIERS = ("pro", "max", "ultra", "mini", "plus", "series", "edition",
              "mk2", "wireless", "compact")


def _title(group: int) -> str:
    # Each group's (brand, noun, modifier) triple is distinct, and the
    # model/sku/gen tokens are group-unique, so records from different
    # groups never share enough tokens to collide in a band.
    return " ".join((
        _BRANDS[group % len(_BRANDS)],
        _NOUNS[(group // 12) % len(_NOUNS)],
        _MODIFIERS[(group // 120) % len(_MODIFIERS)],
        f"model{group}",
        f"sku{group * 37 % 99991}",
        f"gen{group * 13 % 9973}",
    ))


def _catalog(name: str, num_records: int = _RECORDS_PER_SIDE,
             num_groups: int = _NUM_GROUPS) -> Table:
    schema = Schema(attributes=(Attribute("title", AttributeType.TEXT),),
                    name=name)
    table = Table(name, schema)
    for i in range(num_records):
        table.add(Record(record_id=f"{name}{i}",
                         values={"title": _title(i % num_groups)}))
    return table


def _make_blocker() -> MinHashLSHBlocker:
    return MinHashLSHBlocker(num_permutations=_NUM_PERMUTATIONS,
                             num_bands=_NUM_BANDS, random_state=0)


def _timed(method: str, left: Table, right: Table) -> tuple[float, set]:
    """One gc-quiesced timed call on a fresh blocker (no state leaks)."""
    blocker = _make_blocker()
    bound = getattr(blocker, method)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        pairs = bound(left, right)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, pairs


@pytest.fixture(scope="session")
def blocking_scaling_6k() -> dict:
    """One timed blocking pass over the 6k-per-side pool, both paths.

    Session-scoped: the wall-clock comparison gets exactly one chance to run
    per session (mirrors the featurizer scaling fixture).  Best-of-three on
    BOTH sides keeps scheduler hiccups on shared CI runners from
    asymmetrically skewing the published speedup.
    """
    left = _catalog("l")
    right = _catalog("r")
    warmup_left = _catalog("wl", num_records=200, num_groups=20)
    warmup_right = _catalog("wr", num_records=200, num_groups=20)
    _make_blocker().block_reference(warmup_left, warmup_right)
    _make_blocker().block(warmup_left, warmup_right)

    reference_seconds, reference_pairs = min(
        (_timed("block_reference", left, right) for _ in range(3)),
        key=lambda timed: timed[0])
    batch_seconds, batch_pairs = min(
        (_timed("block", left, right) for _ in range(3)),
        key=lambda timed: timed[0])
    return {
        "num_left_records": len(left),
        "num_right_records": len(right),
        "num_permutations": _NUM_PERMUTATIONS,
        "num_bands": _NUM_BANDS,
        "reference_seconds": reference_seconds,
        "batch_seconds": batch_seconds,
        "speedup": reference_seconds / batch_seconds,
        "identical": reference_pairs == batch_pairs,
        "num_candidates": len(batch_pairs),
    }


def test_bench_batched_blocking_identical_candidates(blocking_scaling_6k):
    """The batched path must emit exactly the reference candidate set."""
    assert blocking_scaling_6k["identical"]
    assert blocking_scaling_6k["num_candidates"] > 0


def test_bench_batched_blocking_speedup_6k(blocking_scaling_6k):
    """Gate: batched blocking >= 5x over the per-record reference path.

    Also emits ``BENCH_blocking.json`` at the repo root — the
    machine-readable record of the measured speedup (see the README's
    "Blocking at scale" section for the field semantics).
    """
    measured = blocking_scaling_6k
    payload = {
        "benchmark": "blocking_batch_vs_reference",
        "gate_speedup": _SPEEDUP_GATE,
        **{key: measured[key] for key in (
            "num_left_records", "num_right_records", "num_permutations",
            "num_bands", "reference_seconds", "batch_seconds", "speedup",
            "identical", "num_candidates")},
    }
    _BENCH_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                                  encoding="utf-8")
    print(f"\nblocking 6k/side: reference {measured['reference_seconds']:.3f}s, "
          f"batch {measured['batch_seconds']:.3f}s, "
          f"speedup {measured['speedup']:.1f}x "
          f"[result written to {_BENCH_RESULT_PATH}]")
    assert measured["speedup"] >= _SPEEDUP_GATE, (
        f"batched blocking only {measured['speedup']:.1f}x faster "
        f"than the per-record reference path")


def test_bench_batched_block(benchmark):
    """Absolute timing of the batched path on the 6k-per-side pool."""
    left = _catalog("l")
    right = _catalog("r")
    blocker = _make_blocker()
    pairs = benchmark.pedantic(blocker.block, args=(left, right),
                               rounds=2, iterations=1)
    assert len(pairs) > 0


def test_bench_streamed_block_iter(benchmark):
    """Absolute timing of the streaming path (chunked candidate emission)."""
    left = _catalog("l")
    right = _catalog("r")
    blocker = _make_blocker()

    def stream() -> int:
        return sum(len(chunk)
                   for chunk in blocker.block_iter(left, right,
                                                   chunk_size=10_000))

    total = benchmark.pedantic(stream, rounds=2, iterations=1)
    assert total > 0
