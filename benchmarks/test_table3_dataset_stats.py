"""Table 3 — dataset statistics of the six benchmarks.

Regenerates the size / positive-rate / attribute-count rows next to the
paper's published numbers.  At reduced scales the sizes shrink proportionally
but the positive rates and attribute counts must match the paper.
"""

from repro.evaluation.reporting import format_table
from repro.experiments.tables import table3_dataset_statistics


def test_table3_dataset_statistics(benchmark, bench_settings, write_report):
    rows = benchmark.pedantic(table3_dataset_statistics, args=(bench_settings,),
                              rounds=1, iterations=1)
    assert len(rows) == len(bench_settings.datasets)
    for row in rows:
        # The synthetic generators are calibrated to the paper's positive
        # rates and attribute counts.
        assert abs(row["pos"] - row["paper_pos"]) < 4.0
        assert row["atts"] == row["paper_atts"]
    write_report("table3_dataset_stats",
                 format_table(rows, title="Table 3 — dataset statistics "
                                           "(paper vs. generated)"))
