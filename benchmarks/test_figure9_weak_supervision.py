"""Figure 9 — the impact of weak supervision.

Both the battleship approach and DAL augment training with weak labels; the
paper shows that removing the component ("-WS") costs both methods a large
share of their final F1.  The reproduction checks that the with-WS variants
dominate the without-WS variants for both methods on the ablation datasets.
"""

from repro.evaluation.reporting import format_table
from repro.experiments.configs import ABLATION_DATASETS
from repro.experiments.figures import figure9_weak_supervision


def test_figure9_weak_supervision(benchmark, bench_settings, write_report):
    rows = benchmark.pedantic(figure9_weak_supervision,
                              args=(bench_settings, ABLATION_DATASETS),
                              rounds=1, iterations=1)
    assert len(rows) == len(ABLATION_DATASETS)
    improvements = 0
    comparisons = 0
    for row in rows:
        for method in ("battleship", "dal"):
            comparisons += 1
            if row[f"{method}_f1"] >= row[f"{method}_no_ws_f1"] * 0.95:
                improvements += 1
    # Weak supervision should help (or at least not hurt) in most settings.
    assert improvements >= comparisons * 0.5
    write_report("figure9_weak_supervision",
                 format_table(rows, title="Figure 9 — final F1 with and without "
                                          "weak supervision (measured vs. paper)"))
