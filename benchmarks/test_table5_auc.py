"""Table 5 — AUC of the F1 learning curves.

The paper's summary of the whole learning course: the battleship approach has
the highest AUC on every dataset.  The reproduction checks that it leads on
the majority of datasets (synthetic-data noise allows an occasional tie).
"""

from repro.evaluation.reporting import format_table
from repro.experiments.tables import table5_auc


def test_table5_auc(benchmark, bench_settings, headline_curves, write_report):
    rows = benchmark.pedantic(table5_auc, args=(headline_curves,), rounds=1, iterations=1)
    assert rows

    wins = 0
    datasets = list(headline_curves)
    for dataset in datasets:
        by_method = {row["method"]: row["auc"] for row in rows if row["dataset"] == dataset}
        best_baseline = max(by_method[m] for m in ("dal", "random", "dial"))
        if by_method["battleship"] >= best_baseline:
            wins += 1
    assert wins >= len(datasets) // 2

    write_report("table5_auc",
                 format_table(rows, title="Table 5 — AUC of the F1 learning curves "
                                          "(measured vs. paper)"))
