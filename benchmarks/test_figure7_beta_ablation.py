"""Figure 7 — local vs. spatial certainty (β ablation).

β = 1 uses only the model's own confidence, β = 0 only the spatial
(neighbourhood) confidence, β = 0.5 fuses both.  The paper finds the fused
version the strongest once enough labels accumulate; the reproduction checks
that the fused curve is competitive with the best single-signal variant.
"""

from repro.evaluation.reporting import format_table
from repro.experiments.configs import ABLATION_DATASETS
from repro.experiments.figures import figure7_beta_ablation, figure7_rows


def test_figure7_beta_ablation(benchmark, bench_settings, write_report):
    curves = benchmark.pedantic(
        figure7_beta_ablation,
        args=(bench_settings, ABLATION_DATASETS, (0.0, 0.5, 1.0)),
        rounds=1, iterations=1,
    )
    rows = figure7_rows(curves)
    assert len(rows) == len(ABLATION_DATASETS) * 3

    for dataset, by_beta in curves.items():
        fused = by_beta[0.5].auc()
        best_single = max(by_beta[0.0].auc(), by_beta[1.0].auc())
        # The fused certainty should not collapse relative to either extreme.
        assert fused >= best_single * 0.85
    write_report("figure7_beta_ablation",
                 format_table(rows, title="Figure 7 — final F1 for beta in {0, 0.5, 1} "
                                          "(measured vs. paper)"))
