"""Micro-benchmarks of the substrates (runtime discussion of Section 5.2).

These are the components whose cost dominates a battleship iteration:
featurization, matcher training, K-Means, graph construction + PageRank, and
nearest-neighbour search (exact vs. LSH).  pytest-benchmark reports their
individual timings, which backs the Figure 6 runtime discussion.
"""

import numpy as np
import pytest

from repro.ann.exact import ExactNearestNeighbors
from repro.ann.lsh import LSHNearestNeighbors
from repro.clustering.constrained import ConstrainedKMeans, SizeConstraints
from repro.experiments.runner import get_dataset
from repro.graphs.pagerank import pagerank_per_component
from repro.graphs.pair_graph import build_pair_graph
from repro.neural.featurizer import PairFeaturizer
from repro.neural.matcher import NeuralMatcher


@pytest.fixture(scope="module")
def representation_cloud():
    rng = np.random.default_rng(0)
    return rng.normal(size=(600, 128))


def test_bench_featurization(benchmark, bench_settings):
    dataset = get_dataset("amazon_google", bench_settings)
    featurizer = PairFeaturizer(bench_settings.featurizer_config)
    indices = list(range(min(200, len(dataset.pairs))))
    features = benchmark(featurizer.transform, dataset, indices)
    assert features.shape[0] == len(indices)


def test_bench_matcher_training(benchmark, bench_settings):
    dataset = get_dataset("amazon_google", bench_settings)
    featurizer = PairFeaturizer(bench_settings.featurizer_config)
    train = dataset.train_indices[:200]
    features = featurizer.transform(dataset, train)
    labels = dataset.labels(train)

    def train_once():
        matcher = NeuralMatcher(features.shape[1], bench_settings.matcher_config)
        matcher.fit(features, labels)
        return matcher

    matcher = benchmark.pedantic(train_once, rounds=1, iterations=1)
    assert matcher.is_fitted


def test_bench_constrained_kmeans(benchmark, representation_cloud):
    constraints = SizeConstraints.from_fractions(len(representation_cloud))
    model = ConstrainedKMeans(8, constraints, random_state=0)
    result = benchmark.pedantic(model.fit, args=(representation_cloud,),
                                rounds=1, iterations=1)
    assert result.num_clusters == 8


def test_bench_graph_and_pagerank(benchmark, representation_cloud):
    n = len(representation_cloud)
    rng = np.random.default_rng(1)
    cluster_labels = rng.integers(0, 8, size=n)

    def build_and_rank():
        graph = build_pair_graph(
            representations=representation_cloud,
            node_ids=list(range(n)),
            predictions=rng.integers(0, 2, size=n),
            confidences=rng.uniform(0.5, 1.0, size=n),
            match_probabilities=rng.uniform(0.0, 1.0, size=n),
            labeled_mask=np.zeros(n, dtype=bool),
            cluster_labels=cluster_labels,
            num_neighbors=10,
        )
        return pagerank_per_component(graph)

    scores = benchmark.pedantic(build_and_rank, rounds=1, iterations=1)
    assert len(scores) == n


def test_bench_sparse_substrate_speedup_5k(substrate_scaling_5k):
    """The CSR substrate must beat the seed dict path >= 5x on a 5k-node pool.

    The session-scoped fixture times one full selection-substrate pass (graph
    build + certainty + per-component PageRank) on both stacks; this is the
    scalability claim behind Figure 6.  Both stacks must agree on the edge
    set size.
    """
    measured = substrate_scaling_5k
    assert measured["vectorized_edges"] == measured["reference_edges"]
    print(f"\nsubstrate 5k: reference {measured['reference_seconds']:.3f}s, "
          f"vectorized {measured['vectorized_seconds']:.3f}s, "
          f"speedup {measured['speedup']:.1f}x")
    assert measured["speedup"] >= 5.0, (
        f"vectorized substrate only {measured['speedup']:.1f}x faster "
        f"than the seed path")


def test_bench_exact_knn(benchmark, representation_cloud):
    index = ExactNearestNeighbors().build(representation_cloud)
    indices, _ = benchmark(index.query, representation_cloud, 15, True)
    assert indices.shape == (len(representation_cloud), 15)


def test_bench_lsh_knn(benchmark, representation_cloud):
    index = LSHNearestNeighbors(num_tables=8, num_bits=10,
                                random_state=0).build(representation_cloud)
    indices, _ = benchmark.pedantic(index.query,
                                    args=(representation_cloud, 15),
                                    kwargs={"exclude_self": True},
                                    rounds=1, iterations=1)
    assert indices.shape == (len(representation_cloud), 15)
