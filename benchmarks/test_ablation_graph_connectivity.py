"""Ablation (ours, beyond the paper) — graph connectivity q.

Section 3.3.2 discusses the trade-off in the number of nearest neighbours per
node: larger q gives more robust certainty estimates and better connectivity
but costs compute and can blur cluster margins.  The bench sweeps q on one
dataset and reports final F1, AUC, and selection runtime.
"""

import numpy as np

from repro.active.selectors import BattleshipConfig, BattleshipSelector
from repro.evaluation.reporting import format_table
from repro.experiments.runner import get_dataset, run_single

_DATASET = "amazon_google"
_Q_VALUES = (3, 8, 15)


def test_ablation_graph_connectivity(benchmark, bench_settings, write_report):
    dataset = get_dataset(_DATASET, bench_settings)

    def run_sweep():
        results = {}
        for q in _Q_VALUES:
            selector = BattleshipSelector(BattleshipConfig(num_neighbors=q))
            results[q] = run_single(dataset, selector, bench_settings,
                                    random_state=bench_settings.base_random_seed)
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for q, result in results.items():
        runtimes = result.selection_runtimes()
        rows.append({
            "q": q,
            "final_f1": round(result.final_f1 * 100, 2),
            "auc": round(result.learning_curve().auc(), 2),
            "mean_selection_s": round(float(np.mean(runtimes)) if runtimes else 0.0, 3),
        })
        assert result.final_f1 > 0.0
    write_report("ablation_graph_connectivity",
                 format_table(rows, title="Ablation — nearest-neighbour count q "
                                          f"({_DATASET})", float_format="{:.3f}"))
