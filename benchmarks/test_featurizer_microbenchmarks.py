"""Micro-benchmarks of the batched featurization pipeline.

``PairFeaturizer.transform`` (batched: record dedup + bulk hashing + cached
value-pair similarities) must beat ``transform_reference`` (the seed-era
per-pair loop) by at least 5x on a 2k-pair candidate pool, while producing a
bit-identical matrix.  The measured result is published to
``BENCH_featurizer.json`` at the repository root so the performance
trajectory of the featurization layer is tracked across PRs.

The pool mimics what blocking hands the active learner: each record
participates in a handful of candidate pairs (k-NN-style neighborhoods), the
categorical and numeric attributes repeat across records, and roughly one
pair in ten is a match whose two sides describe the same entity.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.dataset import EMDataset
from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table
from repro.data.schema import product_schema
from repro.neural.featurizer import PairFeaturizer

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_RESULT_PATH = _REPO_ROOT / "BENCH_featurizer.json"
#: Minimum accepted batch-over-reference speedup.
_SPEEDUP_GATE = 5.0
_NUM_PAIRS = 2000
_RECORDS_PER_SIDE = 400

_NOUNS = ("camera", "lens", "printer", "laptop", "monitor", "router",
          "keyboard", "speaker", "tablet", "drive")
_BRANDS = ("canon", "nikon", "sony", "hp", "dell", "asus", "logitech",
           "epson", "lenovo", "apple", "samsung", "lg")
_MODIFIERS = ("pro", "max", "ultra", "mini", "plus", "series", "edition",
              "mk2", "wireless", "compact")


def _title(entity: int, side: int, rng: np.random.Generator) -> str:
    parts = [_BRANDS[entity % len(_BRANDS)], _NOUNS[entity % len(_NOUNS)],
             _MODIFIERS[(entity * 7) % len(_MODIFIERS)], f"model {entity}"]
    if side and rng.random() < 0.5:
        # The right catalog describes the same entity with extra noise words.
        parts.append(_MODIFIERS[int(rng.integers(len(_MODIFIERS)))])
    return " ".join(parts)


def _catalog(name: str, side: int, rng: np.random.Generator) -> Table:
    schema = product_schema()
    table = Table(name, schema)
    for i in range(_RECORDS_PER_SIDE):
        values = {
            "title": _title(i, side, rng),
            "manufacturer": _BRANDS[i % len(_BRANDS)],
            "price": f"{(i % 97) * 3 + 10}.{i % 100:02d}",
        }
        if rng.random() < 0.05:
            del values["manufacturer"]  # occasional missing attribute
        table.add(Record(f"{name}{i}", values, entity_id=f"e{i}"))
    return table


def build_benchmark_pool(num_pairs: int = _NUM_PAIRS, seed: int = 0) -> EMDataset:
    """A 2k-pair candidate pool with blocking-style record reuse."""
    rng = np.random.default_rng(seed)
    left = _catalog("l", 0, rng)
    right = _catalog("r", 1, rng)
    pairs = PairSet()
    seen: set[tuple[int, int]] = set()
    serial = 0
    while len(pairs) < num_pairs:
        left_index = int(rng.integers(_RECORDS_PER_SIDE))
        right_index = (left_index + int(rng.integers(-5, 6))) % _RECORDS_PER_SIDE
        if (left_index, right_index) in seen:
            continue
        seen.add((left_index, right_index))
        pairs.add(CandidatePair(f"p{serial}", f"l{left_index}",
                                f"r{right_index}",
                                int(left_index == right_index)))
        serial += 1
    return EMDataset("featurizer_pool", left, right, pairs, random_state=0)


@pytest.fixture(scope="session")
def featurizer_scaling_2k(bench_settings) -> dict:
    """One timed featurization pass over the 2k-pair pool, both paths.

    Session-scoped: the wall-clock comparison gets exactly one chance to run
    per session (mirrors the substrate scaling fixture).  A fresh featurizer
    is used for every timed call so no instance-level cache leaks between
    measurements; best-of-three on BOTH sides keeps scheduler hiccups on
    shared CI runners from asymmetrically skewing the published speedup.
    """
    config = bench_settings.featurizer_config
    dataset = build_benchmark_pool()
    warmup = build_benchmark_pool(num_pairs=150, seed=1)
    PairFeaturizer(config).transform_reference(warmup)
    PairFeaturizer(config).transform(warmup)

    def time_reference() -> tuple[float, np.ndarray]:
        featurizer = PairFeaturizer(config)
        start = time.perf_counter()
        matrix = featurizer.transform_reference(dataset)
        return time.perf_counter() - start, matrix

    def time_batch() -> tuple[float, np.ndarray]:
        featurizer = PairFeaturizer(config)
        start = time.perf_counter()
        matrix = featurizer.transform(dataset)
        return time.perf_counter() - start, matrix

    reference_seconds, reference_matrix = min(
        (time_reference() for _ in range(3)), key=lambda timed: timed[0])
    batch_seconds, batch_matrix = min(
        (time_batch() for _ in range(3)), key=lambda timed: timed[0])
    return {
        "num_pairs": len(dataset.pairs),
        "num_left_records": len(dataset.left),
        "num_right_records": len(dataset.right),
        "hash_dim": config.hash_dim,
        "reference_seconds": reference_seconds,
        "batch_seconds": batch_seconds,
        "speedup": reference_seconds / batch_seconds,
        "identical": bool(np.array_equal(reference_matrix, batch_matrix)),
        "feature_dim": int(batch_matrix.shape[1]),
    }


def test_bench_batch_featurization_bit_identical(featurizer_scaling_2k):
    """The batched pipeline must reproduce the reference matrix bit for bit."""
    assert featurizer_scaling_2k["identical"]


def test_bench_batch_featurization_speedup_2k(featurizer_scaling_2k, bench_settings):
    """Gate: batched featurization >= 5x over the per-pair reference path.

    Also emits ``BENCH_featurizer.json`` at the repo root — the
    machine-readable record of the measured speedup (see the README's
    Performance section for the field semantics).
    """
    measured = featurizer_scaling_2k
    payload = {
        "benchmark": "featurizer_batch_vs_reference",
        "scale": bench_settings.scale.name,
        "gate_speedup": _SPEEDUP_GATE,
        **{key: measured[key] for key in (
            "num_pairs", "num_left_records", "num_right_records", "hash_dim",
            "feature_dim", "reference_seconds", "batch_seconds", "speedup",
            "identical")},
    }
    _BENCH_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                                  encoding="utf-8")
    print(f"\nfeaturizer 2k pairs: reference {measured['reference_seconds']:.3f}s, "
          f"batch {measured['batch_seconds']:.3f}s, "
          f"speedup {measured['speedup']:.1f}x "
          f"[result written to {_BENCH_RESULT_PATH}]")
    assert measured["speedup"] >= _SPEEDUP_GATE, (
        f"batched featurization only {measured['speedup']:.1f}x faster "
        f"than the per-pair reference path")


def test_bench_batch_transform(benchmark, bench_settings):
    """Absolute timing of the batched path on the 2k-pair pool."""
    dataset = build_benchmark_pool()
    featurizer = PairFeaturizer(bench_settings.featurizer_config)
    matrix = benchmark.pedantic(featurizer.transform, args=(dataset,),
                                rounds=2, iterations=1)
    assert matrix.shape[0] == len(dataset.pairs)
