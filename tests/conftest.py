"""Shared fixtures for the test suite.

Heavy objects (synthetic benchmarks, trained matchers) are session-scoped so
the whole suite stays fast; individual tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import EMDataset
from repro.datasets.registry import load_benchmark
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer
from repro.neural.matcher import MatcherConfig, NeuralMatcher


@pytest.fixture(scope="session")
def tiny_dataset() -> EMDataset:
    """A tiny Amazon-Google style benchmark used across the suite."""
    return load_benchmark("amazon_google", scale="tiny", random_state=7)


@pytest.fixture(scope="session")
def tiny_product_dataset() -> EMDataset:
    """A tiny Walmart-Amazon style benchmark (5 attributes, numeric price)."""
    return load_benchmark("walmart_amazon", scale="tiny", random_state=11)


@pytest.fixture(scope="session")
def fast_matcher_config() -> MatcherConfig:
    """A small, quick-to-train matcher configuration for tests."""
    return MatcherConfig(hidden_dims=(64, 32), dropout=0.1, epochs=6, batch_size=16,
                         learning_rate=2e-3, random_state=3)


@pytest.fixture(scope="session")
def small_featurizer_config() -> FeaturizerConfig:
    """A narrow featurizer configuration for tests."""
    return FeaturizerConfig(hash_dim=64)


@pytest.fixture(scope="session")
def tiny_features(tiny_dataset, small_featurizer_config) -> np.ndarray:
    """Feature matrix of every candidate pair of the tiny dataset."""
    featurizer = PairFeaturizer(small_featurizer_config)
    return featurizer.transform(tiny_dataset)


@pytest.fixture(scope="session")
def fitted_matcher(tiny_dataset, tiny_features, fast_matcher_config) -> NeuralMatcher:
    """A matcher trained on the full train split of the tiny dataset."""
    matcher = NeuralMatcher(input_dim=tiny_features.shape[1], config=fast_matcher_config)
    train = tiny_dataset.train_indices
    validation = tiny_dataset.validation_indices
    matcher.fit(
        tiny_features[train], tiny_dataset.labels(train),
        validation_features=tiny_features[validation],
        validation_labels=tiny_dataset.labels(validation),
    )
    return matcher


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
