"""Tests for the nearest-neighbour substrate (exact and LSH)."""

import numpy as np
import pytest

from repro.ann.exact import ExactNearestNeighbors
from repro.ann.lsh import LSHNearestNeighbors
from repro.exceptions import NotFittedError


@pytest.fixture()
def clustered_vectors(rng):
    """Two well separated Gaussian blobs in 16 dimensions."""
    blob_a = rng.normal(loc=0.0, scale=0.1, size=(30, 16)) + np.eye(16)[0] * 5
    blob_b = rng.normal(loc=0.0, scale=0.1, size=(30, 16)) + np.eye(16)[1] * 5
    return np.vstack([blob_a, blob_b])


class TestExactNearestNeighbors:
    def test_requires_build(self):
        index = ExactNearestNeighbors()
        with pytest.raises(NotFittedError):
            index.query(np.ones((1, 4)), k=1)
        with pytest.raises(NotFittedError):
            _ = index.size

    def test_invalid_inputs(self):
        index = ExactNearestNeighbors()
        with pytest.raises(ValueError):
            index.build(np.ones(4))
        index.build(np.ones((3, 4)))
        with pytest.raises(ValueError):
            index.query(np.ones((1, 4)), k=0)

    def test_self_is_nearest_when_not_excluded(self, clustered_vectors):
        index = ExactNearestNeighbors().build(clustered_vectors)
        indices, similarities = index.query(clustered_vectors[:5], k=1)
        assert list(indices.reshape(-1)) == [0, 1, 2, 3, 4]
        assert np.allclose(similarities, 1.0)

    def test_exclude_self(self, clustered_vectors):
        index = ExactNearestNeighbors().build(clustered_vectors)
        indices, _ = index.query(clustered_vectors, k=3, exclude_self=True)
        for row, neighbours in enumerate(indices):
            assert row not in neighbours

    def test_neighbours_come_from_same_blob(self, clustered_vectors):
        index = ExactNearestNeighbors().build(clustered_vectors)
        indices, _ = index.query(clustered_vectors, k=5, exclude_self=True)
        first_blob = set(range(30))
        for row in range(30):
            assert set(indices[row]).issubset(first_blob)

    def test_similarities_sorted_descending(self, clustered_vectors):
        index = ExactNearestNeighbors().build(clustered_vectors)
        _, similarities = index.query(clustered_vectors[:3], k=10)
        for row in similarities:
            assert np.all(np.diff(row) <= 1e-12)

    def test_k_larger_than_index(self):
        vectors = np.random.default_rng(0).normal(size=(4, 8))
        index = ExactNearestNeighbors().build(vectors)
        indices, _ = index.query(vectors, k=10)
        assert indices.shape == (4, 4)

    def test_pairwise_similarities_symmetric(self, clustered_vectors):
        index = ExactNearestNeighbors().build(clustered_vectors)
        sims = index.pairwise_similarities()
        assert np.allclose(sims, sims.T)
        assert np.allclose(np.diag(sims), 1.0)


class TestLSHNearestNeighbors:
    def test_requires_build(self):
        with pytest.raises(NotFittedError):
            LSHNearestNeighbors().query(np.ones((1, 4)), k=1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LSHNearestNeighbors(num_tables=0)
        with pytest.raises(ValueError):
            LSHNearestNeighbors(num_bits=0)

    def test_recall_against_exact(self, clustered_vectors):
        exact = ExactNearestNeighbors().build(clustered_vectors)
        approximate = LSHNearestNeighbors(num_tables=12, num_bits=8,
                                          random_state=0).build(clustered_vectors)
        exact_indices, _ = exact.query(clustered_vectors, k=5, exclude_self=True)
        approx_indices, _ = approximate.query(clustered_vectors, k=5, exclude_self=True)
        recalls = []
        for row in range(len(clustered_vectors)):
            truth = set(exact_indices[row])
            found = set(index for index in approx_indices[row] if index >= 0)
            recalls.append(len(truth & found) / len(truth))
        assert np.mean(recalls) > 0.6

    def test_padding_for_sparse_buckets(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(5, 8))
        index = LSHNearestNeighbors(num_tables=1, num_bits=16, random_state=1).build(vectors)
        indices, similarities = index.query(vectors, k=4, exclude_self=True)
        assert indices.shape == (5, 4)
        # Missing neighbours are marked with -1 / -inf.
        assert np.all((indices >= -1) & (indices < 5))
        assert np.all(np.isneginf(similarities[indices == -1]))
