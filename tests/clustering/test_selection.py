"""Tests for Kneedle, silhouette, and cluster-count selection."""

import numpy as np
import pytest

from repro.clustering.kneedle import find_knee, find_knee_index
from repro.clustering.model_selection import (
    candidate_cluster_counts,
    cluster_representations,
    select_num_clusters,
)
from repro.clustering.silhouette import silhouette_samples, silhouette_score
from repro.exceptions import ConfigurationError


def _blobs(rng, num_blobs=8, per_blob=20, spread=0.3, dim=4):
    centers = rng.normal(scale=10.0, size=(num_blobs, dim))
    return np.vstack([
        rng.normal(scale=spread, size=(per_blob, dim)) + center for center in centers
    ])


class TestKneedle:
    def test_detects_knee_of_elbow_curve(self):
        x = np.arange(1.0, 11.0)
        # 1/x has a pronounced elbow at small x.
        y = 1.0 / x
        knee = find_knee(x, y, decreasing=True)
        assert knee is not None
        assert knee <= 4

    def test_no_knee_on_linear_curve(self):
        x = np.arange(1.0, 11.0)
        y = -x
        assert find_knee(x, y, decreasing=True) is None

    def test_increasing_curve_knee(self):
        x = np.arange(1.0, 11.0)
        y = np.log(x)
        knee = find_knee(x, y, decreasing=False)
        assert knee is not None

    def test_too_few_points(self):
        assert find_knee(np.array([1.0, 2.0]), np.array([2.0, 1.0])) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            find_knee(np.array([1.0, 2.0, 3.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            find_knee(np.array([1.0, 1.0, 2.0]), np.array([3.0, 2.0, 1.0]))
        with pytest.raises(ValueError):
            find_knee(np.array([1.0, 2.0, 3.0]), np.array([3.0, 2.0, 1.0]), sensitivity=-1)

    def test_knee_index(self):
        x = np.arange(1.0, 11.0)
        y = 1.0 / x
        index = find_knee_index(x, y, decreasing=True)
        assert index is not None
        assert x[index] == find_knee(x, y, decreasing=True)


class TestSilhouette:
    def test_well_separated_clusters_score_high(self, rng):
        points = np.vstack([rng.normal(size=(30, 2)),
                            rng.normal(size=(30, 2)) + 20.0])
        labels = np.array([0] * 30 + [1] * 30)
        assert silhouette_score(points, labels) > 0.8

    def test_random_labels_score_low(self, rng):
        points = rng.normal(size=(60, 2))
        labels = rng.integers(0, 2, size=60)
        assert silhouette_score(points, labels) < 0.3

    def test_requires_two_clusters(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            silhouette_score(points, np.zeros(10, dtype=int))

    def test_samples_in_range(self, rng):
        points = rng.normal(size=(40, 3))
        labels = rng.integers(0, 3, size=40)
        samples = silhouette_samples(points, labels)
        assert np.all(samples >= -1.0)
        assert np.all(samples <= 1.0)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            silhouette_samples(rng.normal(size=(5, 2)), np.zeros(4, dtype=int))


class TestCandidateClusterCounts:
    def test_respects_fraction_bounds(self):
        candidates = candidate_cluster_counts(200, min_fraction=0.05, max_fraction=0.15)
        assert min(candidates) >= int(np.ceil(1 / 0.15))
        assert max(candidates) <= int(np.floor(1 / 0.05))

    def test_small_pool(self):
        assert candidate_cluster_counts(1) == [1]

    def test_caps_number_of_candidates(self):
        candidates = candidate_cluster_counts(10_000, min_fraction=0.01, max_fraction=0.2)
        assert len(candidates) <= 8

    def test_invalid_fractions(self):
        with pytest.raises(ConfigurationError):
            candidate_cluster_counts(100, min_fraction=0.3, max_fraction=0.1)


class TestSelectNumClusters:
    def test_selection_is_feasible_candidate(self, rng):
        points = _blobs(rng)
        selection = select_num_clusters(points, random_state=0)
        assert selection.num_clusters in selection.candidates
        assert selection.method in {"kneedle", "silhouette", "single_candidate"}

    def test_curves_recorded(self, rng):
        points = _blobs(rng)
        selection = select_num_clusters(points, random_state=0)
        assert len(selection.sse_curve) == len(selection.candidates)
        assert len(selection.silhouette_curve) == len(selection.candidates)


class TestClusterRepresentations:
    def test_end_to_end_bounds(self, rng):
        points = _blobs(rng, num_blobs=8, per_blob=20)
        result, selection = cluster_representations(points, random_state=0)
        sizes = result.cluster_sizes()
        n = len(points)
        assert sizes.sum() == n
        assert selection.num_clusters == result.num_clusters
        # The 5%-15% constraint of the paper.
        assert np.all(sizes[sizes > 0] <= np.ceil(0.15 * n) + 1)

    def test_degenerate_small_input(self):
        points = np.zeros((2, 3))
        result, selection = cluster_representations(points, random_state=0)
        assert selection.method == "degenerate"
        assert len(result.labels) == 2
        assert set(result.labels.tolist()) == {0}

    def test_fixed_num_clusters_skips_the_sweep(self, rng):
        points = _blobs(rng, num_blobs=8, per_blob=20)
        result, selection = cluster_representations(points, random_state=0,
                                                    num_clusters=8)
        assert selection.method == "fixed"
        assert selection.num_clusters == 8
        assert result.num_clusters == 8
        assert result.cluster_sizes().sum() == len(points)

    def test_fixed_num_clusters_beyond_constraints_falls_back_to_plain_kmeans(self, rng):
        points = _blobs(rng, num_blobs=4, per_blob=10)
        # k = 25 makes the 5%-15% size constraints infeasible for 40 points.
        result, selection = cluster_representations(points, random_state=0,
                                                    num_clusters=25)
        assert selection.method == "fixed"
        assert len(result.labels) == len(points)

    def test_fixed_num_clusters_validated(self, rng):
        points = _blobs(rng, num_blobs=4, per_blob=10)
        with pytest.raises(ConfigurationError):
            cluster_representations(points, random_state=0, num_clusters=0)
        with pytest.raises(ConfigurationError):
            cluster_representations(points, random_state=0,
                                    num_clusters=len(points) + 1)

    def test_fixed_num_clusters_honored_on_tiny_pools(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        result, selection = cluster_representations(points, random_state=0,
                                                    num_clusters=2)
        assert selection.method == "fixed"
        assert result.num_clusters == 2
        assert len(set(result.labels.tolist())) == 2
