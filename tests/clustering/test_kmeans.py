"""Tests for plain and constrained K-Means."""

import numpy as np
import pytest

from repro.clustering.constrained import ConstrainedKMeans, SizeConstraints
from repro.clustering.kmeans import KMeans, average_cluster_sse, kmeans_plus_plus_init
from repro.exceptions import ConfigurationError, ConvergenceError


@pytest.fixture()
def blobs(rng):
    """Three well separated 2-D blobs of 40 points each."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.vstack([
        rng.normal(scale=0.5, size=(40, 2)) + center for center in centers
    ])
    return points


class TestKMeans:
    def test_recovers_three_blobs(self, blobs):
        result = KMeans(num_clusters=3, random_state=0).fit(blobs)
        sizes = sorted(result.cluster_sizes().tolist())
        assert sizes == [40, 40, 40]
        assert result.converged

    def test_inertia_decreases_with_more_clusters(self, blobs):
        inertia_2 = KMeans(2, random_state=0).fit(blobs).inertia
        inertia_6 = KMeans(6, random_state=0).fit(blobs).inertia
        assert inertia_6 < inertia_2

    def test_labels_cover_all_points(self, blobs):
        result = KMeans(3, random_state=1).fit(blobs)
        assert len(result.labels) == len(blobs)
        assert set(result.labels.tolist()).issubset({0, 1, 2})

    def test_too_few_points_raises(self):
        with pytest.raises(ConvergenceError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(2, max_iterations=0)
        with pytest.raises(ValueError):
            KMeans(2, num_init=0)

    def test_deterministic_given_seed(self, blobs):
        first = KMeans(3, random_state=5).fit(blobs)
        second = KMeans(3, random_state=5).fit(blobs)
        assert np.array_equal(first.labels, second.labels)

    def test_plus_plus_init_spreads_centroids(self, blobs, rng):
        centroids = kmeans_plus_plus_init(blobs, 3, rng)
        distances = np.linalg.norm(centroids[:, None] - centroids[None, :], axis=-1)
        off_diagonal = distances[~np.eye(3, dtype=bool)]
        assert off_diagonal.min() > 3.0

    def test_average_cluster_sse(self, blobs):
        result = KMeans(3, random_state=0).fit(blobs)
        tight = average_cluster_sse(blobs, result)
        loose = average_cluster_sse(blobs, KMeans(1, random_state=0).fit(blobs))
        assert tight < loose


class TestSizeConstraints:
    def test_from_fractions(self):
        constraints = SizeConstraints.from_fractions(200, 0.05, 0.15)
        assert constraints.min_size == 10
        assert constraints.max_size == 30

    def test_feasibility(self):
        constraints = SizeConstraints(min_size=5, max_size=10)
        assert constraints.feasible(num_points=30, num_clusters=4)
        assert not constraints.feasible(num_points=50, num_clusters=4)
        assert not constraints.feasible(num_points=10, num_clusters=4)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            SizeConstraints(min_size=-1, max_size=5)
        with pytest.raises(ConfigurationError):
            SizeConstraints(min_size=10, max_size=5)
        with pytest.raises(ConfigurationError):
            SizeConstraints.from_fractions(100, 0.2, 0.1)


class TestConstrainedKMeans:
    def test_sizes_respect_bounds(self, blobs):
        constraints = SizeConstraints(min_size=30, max_size=50)
        result = ConstrainedKMeans(3, constraints, random_state=0).fit(blobs)
        sizes = result.cluster_sizes()
        assert np.all(sizes >= 30)
        assert np.all(sizes <= 50)

    def test_max_size_forces_splitting_of_large_blob(self, rng):
        # One giant blob: unconstrained K-Means with k=4 could produce a
        # dominant cluster; the constraint forces near-even sizes.
        points = rng.normal(size=(100, 2))
        constraints = SizeConstraints(min_size=20, max_size=30)
        result = ConstrainedKMeans(4, constraints, random_state=0).fit(points)
        sizes = result.cluster_sizes()
        assert np.all(sizes >= 20)
        assert np.all(sizes <= 30)

    def test_infeasible_constraints_raise(self, blobs):
        constraints = SizeConstraints(min_size=100, max_size=110)
        with pytest.raises(ConfigurationError):
            ConstrainedKMeans(3, constraints).fit(blobs)

    def test_too_few_points_raise(self):
        constraints = SizeConstraints(min_size=0, max_size=5)
        with pytest.raises(ConvergenceError):
            ConstrainedKMeans(5, constraints).fit(np.zeros((2, 2)))

    def test_invalid_cluster_count(self):
        with pytest.raises(ConfigurationError):
            ConstrainedKMeans(0, SizeConstraints(0, 1))

    def test_labels_cover_all_points(self, blobs):
        constraints = SizeConstraints(min_size=10, max_size=80)
        result = ConstrainedKMeans(3, constraints, random_state=2).fit(blobs)
        assert len(result.labels) == len(blobs)
