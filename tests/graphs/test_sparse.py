"""Tests for the vectorized CSR substrate (SparseAdjacency and its kernels).

The substrate must be interchangeable with the dict-based stack: same edges
as the node-at-a-time reference builder, same certainty scores as the
per-node entropy walk, same per-component PageRank, and the same component
ordering the budget distribution depends on.
"""

import numpy as np
import pytest

from repro.graphs.entropy import certainty_score, spatial_confidence
from repro.graphs.pagerank import edge_pagerank, pagerank
from repro.graphs.pair_graph import build_pair_graph, build_pair_graph_reference
from repro.graphs.sparse import (
    SparseAdjacency,
    build_sparse_adjacency,
    certainty_scores_batch,
    compute_cluster_edges,
    pagerank_components,
    spatial_confidence_batch,
)


def _random_inputs(seed: int, n: int = 50, num_clusters: int = 3,
                   labeled_share: float = 0.25) -> dict:
    rng = np.random.default_rng(seed)
    return dict(
        representations=rng.normal(size=(n, 12)),
        node_ids=list(range(10, 10 + n)),
        predictions=rng.integers(0, 2, size=n),
        confidences=rng.uniform(0.5, 1.0, size=n),
        match_probabilities=rng.uniform(0.0, 1.0, size=n),
        labeled_mask=rng.uniform(size=n) < labeled_share,
        cluster_labels=rng.integers(0, num_clusters, size=n),
        num_neighbors=4,
        extra_edge_ratio=0.1,
    )


def _edge_set(graph) -> list[tuple[int, int, float]]:
    return sorted((u, v, round(w, 12)) for u, v, w in graph.edges())


class TestBuilderEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_vectorized_matches_reference_on_random_inputs(self, seed):
        kwargs = _random_inputs(seed)
        vectorized = build_pair_graph(**kwargs)
        reference = build_pair_graph_reference(**kwargs)
        assert _edge_set(vectorized) == _edge_set(reference)
        assert vectorized.num_nodes == reference.num_nodes
        for node_id in reference.node_ids():
            assert vectorized.node(node_id) == reference.node(node_id)

    def test_sparse_adjacency_matches_dict_view(self):
        kwargs = _random_inputs(7)
        adjacency = build_sparse_adjacency(**kwargs)
        graph = adjacency.to_pair_graph()
        assert adjacency.num_nodes == graph.num_nodes
        assert adjacency.num_edges == graph.num_edges
        for position in range(adjacency.num_nodes):
            node_id = int(adjacency.node_ids[position])
            neighbor_positions, weights = adjacency.neighbors(position)
            csr_view = {int(adjacency.node_ids[p]): round(float(w), 12)
                        for p, w in zip(neighbor_positions, weights)}
            dict_view = {k: round(v, 12) for k, v in graph.neighbors(node_id).items()}
            assert csr_view == dict_view

    def test_zero_extra_edge_ratio_creates_only_nearest_neighbor_edges(self):
        kwargs = _random_inputs(3)
        kwargs["extra_edge_ratio"] = 0.0
        sparse_only = build_sparse_adjacency(**kwargs)
        kwargs["extra_edge_ratio"] = 0.5
        dense = build_sparse_adjacency(**kwargs)
        assert sparse_only.num_edges < dense.num_edges
        nn_edges = set(zip(sparse_only.edges_u.tolist(), sparse_only.edges_v.tolist()))
        dense_edges = set(zip(dense.edges_u.tolist(), dense.edges_v.tolist()))
        assert nn_edges <= dense_edges

    def test_q_at_least_cluster_size_connects_all_allowed_pairs(self):
        n = 6
        rng = np.random.default_rng(0)
        graph = build_pair_graph(
            representations=rng.normal(size=(n, 8)),
            node_ids=list(range(n)),
            predictions=[1] * n,
            confidences=[0.9] * n,
            match_probabilities=[0.9] * n,
            labeled_mask=[True, True] + [False] * (n - 2),
            num_neighbors=50,  # far beyond the cluster size; clamped to n - 1
            extra_edge_ratio=0.0,
        )
        # Complete graph minus the forbidden labeled-labeled edge.
        assert graph.num_edges == n * (n - 1) // 2 - 1
        assert not graph.has_edge(0, 1)

    def test_labeled_pairs_excluded_from_both_stages(self):
        similarities = np.array([
            [1.0, 0.9, 0.2],
            [0.9, 1.0, 0.3],
            [0.2, 0.3, 1.0],
        ])
        edges_u, edges_v, _ = compute_cluster_edges(
            similarities, np.array([True, True, False]),
            num_neighbors=2, extra_edge_ratio=1.0)
        pairs = set(zip(edges_u.tolist(), edges_v.tolist()))
        assert (0, 1) not in pairs
        assert pairs == {(0, 2), (1, 2)}

    def test_empty_and_singleton_inputs(self):
        empty = build_sparse_adjacency(np.zeros((0, 4)), [], [], [], [], [])
        assert empty.num_nodes == 0
        assert empty.num_edges == 0
        assert empty.components() == []
        single = build_sparse_adjacency(np.zeros((1, 4)), [5], [1], [0.9], [0.9], [False])
        assert single.num_nodes == 1
        assert single.num_edges == 0
        assert single.components() == [{5}]

    def test_validation_matches_dict_builder(self):
        kwargs = _random_inputs(0)
        kwargs["predictions"] = kwargs["predictions"][:-1]
        with pytest.raises(ValueError):
            build_sparse_adjacency(**kwargs)
        kwargs = _random_inputs(0)
        kwargs["num_neighbors"] = 0
        with pytest.raises(ValueError):
            build_sparse_adjacency(**kwargs)
        kwargs = _random_inputs(0)
        kwargs["extra_edge_ratio"] = 1.5
        with pytest.raises(ValueError):
            build_sparse_adjacency(**kwargs)

    def test_csr_structure_is_consistent(self):
        adjacency = build_sparse_adjacency(**_random_inputs(11))
        assert adjacency.indptr[0] == 0
        assert adjacency.indptr[-1] == len(adjacency.indices)
        assert np.all(np.diff(adjacency.indptr) >= 0)
        assert int(adjacency.degrees.sum()) == 2 * adjacency.num_edges
        # Every undirected edge appears in both endpoint rows.
        sources, targets, _ = adjacency.directed_edges()
        assert len(sources) == 2 * adjacency.num_edges
        assert np.all(adjacency.edges_u < adjacency.edges_v)


class TestBatchedKernels:
    @pytest.fixture()
    def adjacency(self):
        return build_sparse_adjacency(**_random_inputs(21))

    def test_spatial_confidence_batch_matches_scalar(self, adjacency):
        graph = adjacency.to_pair_graph()
        batch = spatial_confidence_batch(adjacency)
        for position in range(adjacency.num_nodes):
            node_id = int(adjacency.node_ids[position])
            assert batch[position] == pytest.approx(
                spatial_confidence(graph, node_id), abs=1e-12)

    @pytest.mark.parametrize("beta", [0.0, 0.4, 1.0])
    def test_certainty_batch_matches_scalar(self, adjacency, beta):
        graph = adjacency.to_pair_graph()
        batch = certainty_scores_batch(adjacency, beta=beta)
        for position in range(adjacency.num_nodes):
            node_id = int(adjacency.node_ids[position])
            assert batch[position] == pytest.approx(
                certainty_score(graph, node_id, beta=beta), abs=1e-12)

    def test_certainty_batch_invalid_beta(self, adjacency):
        with pytest.raises(ValueError):
            certainty_scores_batch(adjacency, beta=1.5)

    def test_components_match_dict_graph_order(self, adjacency):
        assert adjacency.components() == adjacency.to_pair_graph().connected_components()

    def test_pagerank_components_matches_dict_pagerank(self, adjacency):
        graph = adjacency.to_pair_graph()
        scores = pagerank_components(adjacency)
        assert set(scores) == {int(i) for i in adjacency.node_ids}
        for component in graph.connected_components():
            reference = pagerank(graph, nodes=sorted(component))
            for node_id, value in reference.items():
                assert scores[node_id] == pytest.approx(value, abs=1e-9)

    def test_pagerank_components_supports_member_subsets(self, adjacency):
        graph = adjacency.to_pair_graph()
        component = max(graph.connected_components(), key=len)
        members = sorted(component)[:-1]  # drop one member
        if len(members) < 2:
            pytest.skip("largest component too small for a subset")
        scores = pagerank_components(adjacency, components=[set(members)])
        reference = pagerank(graph, nodes=members)
        assert set(scores) == set(members)
        for node_id in members:
            assert scores[node_id] == pytest.approx(reference[node_id], abs=1e-9)


class TestEdgePageRank:
    def test_matches_chain_graph_expectations(self):
        # Path 0 - 1 - 2 - 3: interior nodes rank higher.
        sources = np.array([0, 1, 1, 2, 2, 3])
        targets = np.array([1, 0, 2, 1, 3, 2])
        weights = np.ones(6)
        scores = edge_pagerank(sources, targets, weights, num_nodes=4)
        assert scores.sum() == pytest.approx(1.0)
        assert scores[1] > scores[0]
        assert scores[2] > scores[3]

    def test_dangling_nodes_teleport(self):
        # Node 1 has no outgoing weight at all (isolated).
        scores = edge_pagerank(np.array([0]), np.array([2]), np.array([1.0]),
                               num_nodes=3)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores > 0)

    def test_trivial_sizes(self):
        empty = np.empty(0, dtype=np.int64)
        assert edge_pagerank(empty, empty, empty, num_nodes=0).size == 0
        assert edge_pagerank(empty, empty, empty, num_nodes=1)[0] == pytest.approx(1.0)

    def test_invalid_damping(self):
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            edge_pagerank(empty, empty, empty, num_nodes=2, damping=1.5)
