"""Tests for union-find and connected components."""

import pytest

from repro.graphs.components import UnionFind, connected_components


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert len(uf) == 3
        assert not uf.connected("a", "b")

    def test_union_and_find(self):
        uf = UnionFind(["a", "b", "c", "d"])
        uf.union("a", "b")
        uf.union("c", "d")
        assert uf.connected("a", "b")
        assert not uf.connected("a", "c")
        uf.union("b", "c")
        assert uf.connected("a", "d")

    def test_groups_sorted_by_size(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        groups = uf.groups()
        assert len(groups) == 3
        assert len(groups[0]) == 3
        assert len(groups[1]) == 2
        assert len(groups[2]) == 1

    def test_unknown_element_raises(self):
        uf = UnionFind(["a"])
        with pytest.raises(KeyError):
            uf.find("missing")

    def test_add_is_idempotent(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("a")
        assert len(uf) == 1

    def test_union_returns_root(self):
        uf = UnionFind(["a", "b"])
        root = uf.union("a", "b")
        assert root in {"a", "b"}
        assert uf.union("a", "b") == root


class TestConnectedComponents:
    def test_basic_components(self):
        components = connected_components([1, 2, 3, 4, 5], [(1, 2), (2, 3)])
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 1, 3]

    def test_isolated_nodes_are_singletons(self):
        components = connected_components(["x", "y"], [])
        assert sorted(map(len, components)) == [1, 1]

    def test_edges_may_introduce_new_nodes(self):
        components = connected_components([1], [(2, 3)])
        assert {frozenset(c) for c in components} == {frozenset({1}), frozenset({2, 3})}

    def test_largest_component_first(self):
        components = connected_components(range(10), [(i, i + 1) for i in range(4)])
        assert len(components[0]) == 5
