"""The worked example of the paper: Figure 4, Table 2, and Example 7.

Eight pair representations form one cluster.  Samples s1-s4 are predicted
match, s5-s6 predicted non-match, s7 is labeled match and s8 labeled
non-match.  With q = 2 nearest neighbours and 15% extra edges, the paper
describes exactly which edges are created and computes the spatial confidence
of s1 as 0.51.  This test drives :func:`build_pair_graph` and
:func:`spatial_confidence` with the similarity matrix of Table 2 and checks
those facts.
"""

import numpy as np
import pytest

from repro.graphs.entropy import certainty_score, conditional_entropy, spatial_confidence
from repro.graphs.pair_graph import build_pair_graph

# Table 2 of the paper: symmetric similarity matrix; the diagonal holds the
# matcher's confidence in each sample's prediction (1.0 for labeled samples).
_SIMILARITY = np.array([
    #  s1    s2    s3    s4    s5    s6    s7    s8
    [0.95, 0.90, 0.50, 0.60, 0.85, 0.50, 0.90, 0.82],  # s1
    [0.90, 0.92, 0.55, 0.58, 0.92, 0.45, 0.83, 0.60],  # s2
    [0.50, 0.55, 0.96, 0.75, 0.67, 0.56, 0.40, 0.38],  # s3
    [0.60, 0.58, 0.75, 0.94, 0.88, 0.84, 0.50, 0.55],  # s4
    [0.85, 0.92, 0.67, 0.88, 0.98, 0.57, 0.63, 0.65],  # s5
    [0.50, 0.45, 0.56, 0.84, 0.57, 0.88, 0.41, 0.54],  # s6
    [0.90, 0.83, 0.40, 0.50, 0.63, 0.41, 1.00, 0.64],  # s7
    [0.82, 0.60, 0.38, 0.55, 0.65, 0.54, 0.64, 1.00],  # s8
])

# Node attributes: s1-s4 predicted match, s5-s6 predicted non-match,
# s7 labeled match, s8 labeled non-match.  Node ids are 1-based (s1 → 1).
_PREDICTIONS = [1, 1, 1, 1, 0, 0, 1, 0]
_CONFIDENCES = [0.95, 0.92, 0.96, 0.94, 0.98, 0.88, 1.0, 1.0]
_LABELED = [False, False, False, False, False, False, True, True]


@pytest.fixture(scope="module")
def paper_graph():
    n = 8
    return build_pair_graph(
        representations=np.zeros((n, 2)),  # unused: similarities given explicitly
        node_ids=list(range(1, n + 1)),
        predictions=_PREDICTIONS,
        confidences=_CONFIDENCES,
        match_probabilities=[c if p == 1 else 1 - c
                             for p, c in zip(_PREDICTIONS, _CONFIDENCES)],
        labeled_mask=_LABELED,
        cluster_labels=[0] * n,
        num_neighbors=2,
        extra_edge_ratio=0.15,
        similarity_matrix=_SIMILARITY,
    )


class TestEdgeCreation:
    def test_s1_connected_to_its_described_neighbours(self, paper_graph):
        # Example 4: s1 is connected to s2 and s7 (its two nearest neighbours)
        # and to s8 (s1 is among s8's two nearest neighbours).
        assert paper_graph.has_edge(1, 2)
        assert paper_graph.has_edge(1, 7)
        assert paper_graph.has_edge(1, 8)

    def test_extra_edges_are_s1_s5_and_s5_s7(self, paper_graph):
        # Example 4: the two extra edges are (s1, s5) with weight 0.85 and
        # (s5, s7) with weight 0.63.
        assert paper_graph.has_edge(1, 5)
        assert paper_graph.edge_weight(1, 5) == pytest.approx(0.85)
        assert paper_graph.has_edge(5, 7)
        assert paper_graph.edge_weight(5, 7) == pytest.approx(0.63)

    def test_two_labeled_samples_never_connected(self, paper_graph):
        # s7 and s8 are both labeled; despite their 0.64 similarity the edge
        # is not created (Example 4).
        assert not paper_graph.has_edge(7, 8)

    def test_every_node_has_at_least_q_neighbours(self, paper_graph):
        for node_id in paper_graph.node_ids():
            assert paper_graph.degree(node_id) >= 2

    def test_total_edge_count_close_to_paper(self, paper_graph):
        # The paper reports 12 nearest-neighbour edges plus 2 extra edges.
        # Deduplicating the nearest-neighbour lists of Table 2 yields 11
        # distinct undirected edges, so the reproduction creates 13 in total;
        # we accept the paper's 14 as well to allow for the ambiguity.
        assert paper_graph.num_edges in (13, 14)

    def test_edge_weights_match_table2(self, paper_graph):
        assert paper_graph.edge_weight(1, 2) == pytest.approx(0.90)
        assert paper_graph.edge_weight(2, 5) == pytest.approx(0.92)
        assert paper_graph.edge_weight(4, 6) == pytest.approx(0.84)


class TestExample7SpatialConfidence:
    def test_spatial_confidence_of_s1_matches_paper(self, paper_graph):
        # Example 7 computes phi~(s1) = 0.51: the match-side neighbours are s2
        # and s7, the full neighbourhood additionally contains s5 and s8.
        value = spatial_confidence(paper_graph, 1)
        assert value == pytest.approx(0.51, abs=0.005)

    def test_s1_neighbourhood_is_the_papers(self, paper_graph):
        assert set(paper_graph.neighbors(1)) == {2, 5, 7, 8}

    def test_certainty_score_combines_local_and_spatial(self, paper_graph):
        local_only = certainty_score(paper_graph, 1, beta=1.0)
        spatial_only = certainty_score(paper_graph, 1, beta=0.0)
        fused = certainty_score(paper_graph, 1, beta=0.5)
        assert local_only == pytest.approx(float(conditional_entropy(0.95)))
        assert spatial_only == pytest.approx(float(conditional_entropy(
            spatial_confidence(paper_graph, 1))))
        assert fused == pytest.approx(0.5 * local_only + 0.5 * spatial_only)

    def test_s1_more_uncertain_spatially_than_locally(self, paper_graph):
        # The model is 0.95 confident in s1, but half of its neighbourhood
        # disagrees, so the spatial entropy is much larger than the local one.
        assert (certainty_score(paper_graph, 1, beta=0.0)
                > certainty_score(paper_graph, 1, beta=1.0))
