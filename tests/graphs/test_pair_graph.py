"""Tests for the pair graph data structure and the edge-creation procedure."""

import numpy as np
import pytest

from repro.graphs.pair_graph import (
    PairGraph,
    PairNode,
    build_pair_graph,
    build_pair_graph_reference,
)


def _simple_graph() -> PairGraph:
    graph = PairGraph()
    for node_id, prediction in [(0, 1), (1, 1), (2, 0)]:
        graph.add_node(PairNode(node_id=node_id, prediction=prediction,
                                confidence=0.9, match_probability=float(prediction)))
    graph.add_edge(0, 1, 0.8)
    return graph


class TestPairGraphStructure:
    def test_counts(self):
        graph = _simple_graph()
        assert graph.num_nodes == 3
        assert graph.num_edges == 1

    def test_edge_is_undirected(self):
        graph = _simple_graph()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.edge_weight(1, 0) == pytest.approx(0.8)

    def test_neighbors(self):
        graph = _simple_graph()
        assert graph.neighbors(0) == {1: 0.8}
        assert graph.neighbors(2) == {}
        assert graph.degree(0) == 1

    def test_self_loop_rejected(self):
        graph = _simple_graph()
        with pytest.raises(ValueError):
            graph.add_edge(0, 0, 1.0)

    def test_edge_requires_existing_nodes(self):
        graph = _simple_graph()
        with pytest.raises(KeyError):
            graph.add_edge(0, 99, 0.5)

    def test_connected_components(self):
        graph = _simple_graph()
        components = graph.connected_components()
        assert {frozenset(c) for c in components} == {frozenset({0, 1}), frozenset({2})}

    def test_subgraph(self):
        graph = _simple_graph()
        sub = graph.subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.has_edge(0, 1)
        sub_single = graph.subgraph([0])
        assert sub_single.num_edges == 0

    def test_edges_listing(self):
        graph = _simple_graph()
        assert graph.edges() == [(0, 1, 0.8)]


class TestBuildPairGraph:
    @pytest.fixture()
    def representations(self, rng):
        # Two tight groups of representations: indices 0-4 and 5-9.
        group_a = rng.normal(size=(5, 8)) * 0.01 + np.arange(8)
        group_b = rng.normal(size=(5, 8)) * 0.01 - np.arange(8)
        return np.vstack([group_a, group_b])

    def test_basic_construction(self, representations):
        n = len(representations)
        graph = build_pair_graph(
            representations=representations,
            node_ids=list(range(100, 100 + n)),
            predictions=[1] * 5 + [0] * 5,
            confidences=[0.9] * n,
            match_probabilities=[0.9] * 5 + [0.1] * 5,
            labeled_mask=[False] * n,
            num_neighbors=2,
        )
        assert graph.num_nodes == n
        assert graph.num_edges >= n  # every node has at least q=2 edges (shared)
        assert graph.has_node(100)

    def test_cluster_labels_limit_edges(self, representations):
        n = len(representations)
        clusters = [0] * 5 + [1] * 5
        graph = build_pair_graph(
            representations=representations,
            node_ids=list(range(n)),
            predictions=[1] * n,
            confidences=[0.9] * n,
            match_probabilities=[0.9] * n,
            labeled_mask=[False] * n,
            cluster_labels=clusters,
            num_neighbors=4,
        )
        for u, v, _ in graph.edges():
            assert clusters[u] == clusters[v]

    def test_empty_input(self):
        graph = build_pair_graph(
            representations=np.zeros((0, 4)), node_ids=[], predictions=[],
            confidences=[], match_probabilities=[], labeled_mask=[],
        )
        assert graph.num_nodes == 0

    def test_length_validation(self, representations):
        with pytest.raises(ValueError):
            build_pair_graph(
                representations=representations,
                node_ids=list(range(len(representations))),
                predictions=[1],
                confidences=[0.9] * len(representations),
                match_probabilities=[0.9] * len(representations),
                labeled_mask=[False] * len(representations),
            )

    def test_parameter_validation(self, representations):
        n = len(representations)
        kwargs = dict(
            representations=representations, node_ids=list(range(n)),
            predictions=[1] * n, confidences=[0.9] * n,
            match_probabilities=[0.9] * n, labeled_mask=[False] * n,
        )
        with pytest.raises(ValueError):
            build_pair_graph(num_neighbors=0, **kwargs)
        with pytest.raises(ValueError):
            build_pair_graph(extra_edge_ratio=1.5, **kwargs)

    def test_labeled_pairs_never_directly_connected(self, representations):
        n = len(representations)
        labeled = [True, True] + [False] * (n - 2)
        graph = build_pair_graph(
            representations=representations,
            node_ids=list(range(n)),
            predictions=[1] * n,
            confidences=[1.0, 1.0] + [0.9] * (n - 2),
            match_probabilities=[1.0, 1.0] + [0.9] * (n - 2),
            labeled_mask=labeled,
            num_neighbors=4,
            extra_edge_ratio=0.5,
        )
        assert not graph.has_edge(0, 1)

    def test_extra_edges_increase_connectivity(self, representations):
        n = len(representations)
        base_kwargs = dict(
            representations=representations, node_ids=list(range(n)),
            predictions=[1] * n, confidences=[0.9] * n,
            match_probabilities=[0.9] * n, labeled_mask=[False] * n,
            num_neighbors=1,
        )
        sparse = build_pair_graph(extra_edge_ratio=0.0, **base_kwargs)
        dense = build_pair_graph(extra_edge_ratio=0.5, **base_kwargs)
        assert dense.num_edges > sparse.num_edges

    def test_zero_extra_edge_budget_adds_no_edges(self, representations):
        # A tiny ratio whose floored budget is zero must behave exactly like
        # ratio zero.
        n = len(representations)
        base_kwargs = dict(
            representations=representations, node_ids=list(range(n)),
            predictions=[1] * n, confidences=[0.9] * n,
            match_probabilities=[0.9] * n, labeled_mask=[False] * n,
            num_neighbors=2,
        )
        none = build_pair_graph(extra_edge_ratio=0.0, **base_kwargs)
        tiny = build_pair_graph(extra_edge_ratio=1e-6, **base_kwargs)
        assert sorted(tiny.edges()) == sorted(none.edges())

    def test_q_larger_than_cluster_connects_everything_allowed(self, representations):
        n = len(representations)
        graph = build_pair_graph(
            representations=representations, node_ids=list(range(n)),
            predictions=[1] * n, confidences=[0.9] * n,
            match_probabilities=[0.9] * n,
            labeled_mask=[True, True] + [False] * (n - 2),
            num_neighbors=n + 5, extra_edge_ratio=0.0,
        )
        assert graph.num_edges == n * (n - 1) // 2 - 1
        assert not graph.has_edge(0, 1)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vectorized_builder_matches_reference(self, seed):
        generator = np.random.default_rng(seed)
        n = 40
        kwargs = dict(
            representations=generator.normal(size=(n, 10)),
            node_ids=list(range(n)),
            predictions=generator.integers(0, 2, size=n),
            confidences=generator.uniform(0.5, 1.0, size=n),
            match_probabilities=generator.uniform(0.0, 1.0, size=n),
            labeled_mask=generator.uniform(size=n) < 0.2,
            cluster_labels=generator.integers(0, 2, size=n),
            num_neighbors=3,
            extra_edge_ratio=0.05,
        )
        vectorized = build_pair_graph(**kwargs)
        reference = build_pair_graph_reference(**kwargs)
        assert (sorted((u, v, round(w, 12)) for u, v, w in vectorized.edges())
                == sorted((u, v, round(w, 12)) for u, v, w in reference.edges()))
