"""Tests for conditional entropy, spatial confidence, and PageRank."""

import numpy as np
import pytest

from repro.graphs.entropy import (
    certainty_score,
    certainty_scores,
    conditional_entropy,
    spatial_confidence,
)
from repro.graphs.pagerank import pagerank, pagerank_per_component
from repro.graphs.pair_graph import PairGraph, PairNode


def _chain_graph(weights=(1.0, 1.0, 1.0)) -> PairGraph:
    """A path graph 0 - 1 - 2 - 3 with the given edge weights."""
    graph = PairGraph()
    for node_id in range(4):
        graph.add_node(PairNode(node_id=node_id, prediction=1, confidence=0.9,
                                match_probability=0.9))
    for i, weight in enumerate(weights):
        graph.add_edge(i, i + 1, weight)
    return graph


class TestConditionalEntropy:
    def test_maximum_at_half(self):
        assert conditional_entropy(0.5) == pytest.approx(np.log(2))

    def test_symmetry(self):
        assert conditional_entropy(0.2) == pytest.approx(conditional_entropy(0.8))

    def test_extremes_are_near_zero(self):
        assert conditional_entropy(0.0) < 1e-8
        assert conditional_entropy(1.0) < 1e-8

    def test_vectorized(self):
        values = conditional_entropy(np.array([0.1, 0.5, 0.9]))
        assert values.shape == (3,)
        assert values[1] == pytest.approx(np.log(2))

    def test_monotone_towards_half(self):
        assert conditional_entropy(0.4) > conditional_entropy(0.2)


class TestSpatialConfidence:
    def test_isolated_node_falls_back_to_own_confidence(self):
        graph = PairGraph()
        graph.add_node(PairNode(0, prediction=1, confidence=0.8, match_probability=0.8))
        assert spatial_confidence(graph, 0) == pytest.approx(0.8)

    def test_agreeing_neighbourhood_gives_high_confidence(self):
        graph = _chain_graph()
        assert spatial_confidence(graph, 1) == pytest.approx(1.0)

    def test_disagreeing_neighbourhood_lowers_confidence(self):
        graph = PairGraph()
        graph.add_node(PairNode(0, prediction=1, confidence=0.9, match_probability=0.9))
        graph.add_node(PairNode(1, prediction=0, confidence=0.9, match_probability=0.1))
        graph.add_node(PairNode(2, prediction=0, confidence=0.9, match_probability=0.1))
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 2, 1.0)
        assert spatial_confidence(graph, 0) == pytest.approx(0.0)

    def test_certainty_scores_batch(self):
        graph = _chain_graph()
        scores = certainty_scores(graph, beta=0.5)
        assert set(scores) == {0, 1, 2, 3}
        assert all(value >= 0 for value in scores.values())

    def test_invalid_beta(self):
        graph = _chain_graph()
        with pytest.raises(ValueError):
            certainty_score(graph, 0, beta=1.5)


class TestPageRank:
    def test_scores_sum_to_one(self):
        graph = _chain_graph()
        scores = pagerank(graph)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_central_nodes_rank_higher(self):
        graph = _chain_graph()
        scores = pagerank(graph)
        assert scores[1] > scores[0]
        assert scores[2] > scores[3]

    def test_star_center_dominates(self):
        graph = PairGraph()
        for node_id in range(5):
            graph.add_node(PairNode(node_id, 1, 0.9, 0.9))
        for leaf in range(1, 5):
            graph.add_edge(0, leaf, 1.0)
        scores = pagerank(graph)
        assert scores[0] == max(scores.values())

    def test_edge_weights_steer_the_walk(self):
        graph = PairGraph()
        for node_id in range(3):
            graph.add_node(PairNode(node_id, 1, 0.9, 0.9))
        graph.add_edge(0, 1, 10.0)
        graph.add_edge(0, 2, 0.1)
        scores = pagerank(graph)
        assert scores[1] > scores[2]

    def test_single_node(self):
        graph = PairGraph()
        graph.add_node(PairNode(0, 1, 0.9, 0.9))
        assert pagerank(graph) == {0: 1.0}

    def test_empty_graph(self):
        assert pagerank(PairGraph()) == {}

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            pagerank(_chain_graph(), damping=1.5)

    def test_restricted_node_set(self):
        graph = _chain_graph()
        scores = pagerank(graph, nodes=[0, 1])
        assert set(scores) == {0, 1}
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_per_component_excludes_labeled(self):
        graph = PairGraph()
        graph.add_node(PairNode(0, 1, 1.0, 1.0, labeled=True))
        graph.add_node(PairNode(1, 1, 0.9, 0.9))
        graph.add_node(PairNode(2, 1, 0.9, 0.9))
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        scores = pagerank_per_component(graph, pool_only=True)
        assert 0 not in scores
        assert set(scores) == {1, 2}

    def test_per_component_normalizes_within_components(self):
        graph = _chain_graph()
        # Add an isolated second component.
        graph.add_node(PairNode(10, 0, 0.9, 0.1))
        graph.add_node(PairNode(11, 0, 0.9, 0.1))
        graph.add_edge(10, 11, 1.0)
        scores = pagerank_per_component(graph, pool_only=False)
        first = sum(scores[node] for node in range(4))
        second = scores[10] + scores[11]
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(1.0)
