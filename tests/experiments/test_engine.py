"""Tests for the job engine, artifact store, and result serialization.

The run-executing tests use a deliberately minuscule configuration (one
iteration, tiny budgets, a small matcher) so the engine logic — spec
enumeration, store resume, serial/parallel equivalence — is exercised end to
end in seconds.
"""

import json
from pathlib import Path

import pytest

from repro.active.loop import ActiveLearningResult, IterationRecord
from repro.config import get_scale
from repro.evaluation.metrics import MatchingMetrics
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentSettings
from repro.experiments.engine import (
    ExperimentEngine,
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    settings_fingerprint,
)
from repro.experiments.faults import (
    FailureLedger,
    FaultInjector,
    RetryPolicy,
    ledger_path,
)
from repro.experiments.figures import figure6_runtime
from repro.experiments.runner import MethodRun, enumerate_run_specs, run_method
from repro.experiments.store import ArtifactStore
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig


@pytest.fixture(scope="module")
def fast_settings() -> ExperimentSettings:
    return ExperimentSettings(
        scale=get_scale("tiny"),
        datasets=("amazon_google",),
        iterations=1,
        budget_per_iteration=8,
        seed_size=8,
        num_seeds=2,
        alphas=(0.5,),
        beta=0.5,
        matcher_config=MatcherConfig(hidden_dims=(24,), epochs=2, batch_size=16,
                                     learning_rate=2e-3, random_state=0),
        featurizer_config=FeaturizerConfig(hash_dim=32),
        base_random_seed=7,
    )


def _sample_result() -> ActiveLearningResult:
    metrics = [MatchingMetrics(precision=0.5, recall=0.25, f1=1.0 / 3.0,
                               num_examples=40),
               MatchingMetrics(precision=0.75, recall=0.6, f1=2.0 / 3.0,
                               num_examples=40)]
    return ActiveLearningResult(
        dataset_name="amazon_google",
        selector_name="battleship",
        records=[
            IterationRecord(iteration=i, num_labeled=8 + 8 * i, num_weak=3 * i,
                            num_labeled_positives=4 + i, test_metrics=metric,
                            train_seconds=0.125 * (i + 1),
                            selection_seconds=0.0625 * i)
            for i, metric in enumerate(metrics)
        ],
    )


class TestSerialization:
    def test_result_json_round_trip(self):
        result = _sample_result()
        payload = json.loads(json.dumps(result.to_dict()))
        restored = ActiveLearningResult.from_dict(payload)
        assert restored == result
        assert restored.records[0].test_metrics == result.records[0].test_metrics

    def test_round_trip_preserves_curves_and_runtimes(self):
        result = _sample_result()
        restored = ActiveLearningResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        original_curve = result.learning_curve()
        restored_curve = restored.learning_curve()
        assert restored_curve.labeled_counts == original_curve.labeled_counts
        assert restored_curve.f1_scores == original_curve.f1_scores
        assert restored.selection_runtimes() == result.selection_runtimes()

    def test_metrics_round_trip_is_lossless(self):
        metrics = MatchingMetrics(precision=1.0 / 3.0, recall=2.0 / 7.0,
                                  f1=0.30769230769230776, num_examples=13)
        assert MatchingMetrics.from_dict(
            json.loads(json.dumps(metrics.to_dict()))) == metrics


class TestRunSpec:
    def test_fingerprint_is_stable(self, fast_settings):
        first = RunSpec.create("amazon_google", "battleship", 7, 0.5, 0.5,
                               "selector", fast_settings)
        second = RunSpec.create("amazon_google", "battleship", 7, 0.5, 0.5,
                                "selector", fast_settings)
        assert first == second
        assert first.fingerprint() == second.fingerprint()

    def test_fingerprint_distinguishes_fields(self, fast_settings):
        base = RunSpec.create("amazon_google", "battleship", 7, 0.5, 0.5,
                              "selector", fast_settings)
        variants = [
            RunSpec.create("walmart_amazon", "battleship", 7, 0.5, 0.5,
                           "selector", fast_settings),
            RunSpec.create("amazon_google", "dal", 7, 0.5, 0.5,
                           "selector", fast_settings),
            RunSpec.create("amazon_google", "battleship", 8, 0.5, 0.5,
                           "selector", fast_settings),
            RunSpec.create("amazon_google", "battleship", 7, 0.25, 0.5,
                           "selector", fast_settings),
            RunSpec.create("amazon_google", "battleship", 7, 0.5, 1.0,
                           "selector", fast_settings),
            RunSpec.create("amazon_google", "battleship", 7, 0.5, 0.5,
                           "off", fast_settings),
        ]
        fingerprints = {spec.fingerprint() for spec in variants}
        assert len(fingerprints) == len(variants)
        assert base.fingerprint() not in fingerprints

    def test_settings_hash_tracks_run_relevant_fields(self, fast_settings):
        from dataclasses import replace
        changed = replace(fast_settings, iterations=2)
        assert settings_fingerprint(changed) != settings_fingerprint(fast_settings)
        # Grid-only fields don't invalidate stored runs.
        widened = replace(fast_settings, num_seeds=5,
                          datasets=("amazon_google", "walmart_amazon"))
        assert settings_fingerprint(widened) == settings_fingerprint(fast_settings)

    def test_spec_dict_round_trip(self, fast_settings):
        spec = RunSpec.create("amazon_google", "dal", 7, 0.5, 0.5,
                              "entropy", fast_settings)
        assert RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_enumerate_run_specs_grid(self, fast_settings):
        specs = enumerate_run_specs("amazon_google", "battleship", fast_settings,
                                    alphas=(0.25, 0.75))
        assert len(specs) == 4  # 2 seeds x 2 alphas
        assert len(set(specs)) == 4
        assert {spec.alpha for spec in specs} == {0.25, 0.75}

    def test_enumerate_rejects_unknown_method(self, fast_settings):
        with pytest.raises(ConfigurationError):
            enumerate_run_specs("amazon_google", "mystery", fast_settings)


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path, fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = RunSpec.create("amazon_google", "battleship", 7, 0.5, 0.5,
                              "selector", fast_settings)
        result = _sample_result()
        assert spec not in store
        assert store.get(spec) is None
        path = store.put(spec, result)
        assert path.exists()
        assert spec in store
        assert store.get(spec) == result
        assert len(store) == 1

    def test_incompatible_format_version_rejected(self, tmp_path, fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = RunSpec.create("amazon_google", "battleship", 7, 0.5, 0.5,
                              "selector", fast_settings)
        store.put(spec, _sample_result())
        path = store.path_for(spec)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            store.get(spec)
        with pytest.raises(ConfigurationError):
            list(store.items())

    def test_items_expose_spec_and_result(self, tmp_path, fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = RunSpec.create("amazon_google", "dal", 9, 0.5, 0.5,
                              "selector", fast_settings)
        store.put(spec, _sample_result())
        ((spec_dict, result),) = list(store.items())
        assert spec_dict == spec.to_dict()
        assert result == _sample_result()


class TestEngine:
    def test_engine_rejects_foreign_specs(self, fast_settings):
        from dataclasses import replace
        other = replace(fast_settings, iterations=3)
        specs = enumerate_run_specs("amazon_google", "random", other)
        with pytest.raises(ConfigurationError):
            ExperimentEngine(fast_settings).run(specs)

    def test_run_method_rejects_mismatched_engine(self, fast_settings):
        from dataclasses import replace
        other = replace(fast_settings, iterations=3)
        with pytest.raises(ConfigurationError):
            run_method("amazon_google", "random", other,
                       engine=ExperimentEngine(fast_settings))

    def test_store_resume_executes_zero_jobs(self, tmp_path, fast_settings):
        store = ArtifactStore(tmp_path / "store")
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)

        first_engine = ExperimentEngine(fast_settings, store=store)
        first_results = first_engine.run(specs)
        assert first_engine.last_report.executed == len(specs)
        assert first_engine.last_report.cached == 0

        second_engine = ExperimentEngine(fast_settings,
                                         store=ArtifactStore(tmp_path / "store"))
        second_results = second_engine.run(specs)
        assert second_engine.last_report.executed == 0
        assert second_engine.last_report.cached == len(specs)
        assert second_engine.last_report.from_store == len(specs)
        assert second_engine.last_report.from_memory == 0
        for spec in specs:
            assert second_results[spec] == first_results[spec]

    def test_memory_cache_avoids_reexecution_without_store(self, fast_settings):
        engine = ExperimentEngine(fast_settings)
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        first = engine.run(specs)
        assert engine.last_report.executed == len(specs)
        second = engine.run(specs)
        assert engine.last_report.executed == 0
        assert engine.last_report.cached == len(specs)
        # Without a store these are memory hits, not store loads.
        assert engine.last_report.from_memory == len(specs)
        assert engine.last_report.from_store == 0
        assert second == first

    def test_interrupted_batch_persists_completed_runs(self, tmp_path, fast_settings):
        class ExplodingExecutor(SerialExecutor):
            """Fails after yielding the first result (simulated crash)."""

            def execute(self, specs, settings):
                inner = super().execute(specs, settings)
                yield next(inner)
                raise RuntimeError("crashed mid-sweep")

        store = ArtifactStore(tmp_path / "store")
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        assert len(specs) == 2
        engine = ExperimentEngine(fast_settings, executor=ExplodingExecutor(),
                                  store=store)
        with pytest.raises(RuntimeError):
            engine.run(specs)
        assert engine.last_report.executed == 1
        assert len(store) == 1  # the completed run survived the crash

        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(tmp_path / "store"))
        resumed.run(specs)
        assert resumed.last_report.executed == 1
        assert resumed.last_report.cached == 1

    def test_duplicate_specs_resolved_once(self, tmp_path, fast_settings):
        store = ArtifactStore(tmp_path / "store")
        engine = ExperimentEngine(fast_settings, store=store)
        spec, = enumerate_run_specs("amazon_google", "random", fast_settings,
                                    alphas=(0.5,))[:1]
        engine.run([spec, spec])
        assert engine.last_report.total == 1

    def test_parallel_failure_salvages_completed_runs(self, tmp_path, fast_settings):
        """A failing job must not lose sibling runs that already finished."""
        store = ArtifactStore(tmp_path / "store")
        good = enumerate_run_specs("amazon_google", "random", fast_settings)
        bad = RunSpec.create("amazon_google", "mystery", 7, 0.5, 0.5,
                             "selector", fast_settings)
        engine = ExperimentEngine(fast_settings,
                                  executor=ParallelExecutor(jobs=2), store=store)
        with pytest.raises(ConfigurationError):
            engine.run(good + [bad])
        # Both good runs completed (yielded or salvaged) and were persisted.
        assert engine.last_report.executed == len(good)
        assert len(store) == len(good)
        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(tmp_path / "store"))
        resumed.run(good)
        assert resumed.last_report.executed == 0

    def test_adopt_results_seeds_memory_and_store(self, tmp_path, fast_settings):
        spec = RunSpec.create("amazon_google", "battleship", 7, 0.5, 0.5,
                              "selector", fast_settings)
        store = ArtifactStore(tmp_path / "store")
        engine = ExperimentEngine(fast_settings, store=store)
        engine.adopt_results({spec: _sample_result()})
        assert spec in store
        assert engine.cached_results() == {spec: _sample_result()}
        engine.run([spec])
        assert engine.last_report.executed == 0
        assert engine.last_report.from_memory == 1

    def test_adopt_results_rejects_foreign_settings(self, fast_settings):
        from dataclasses import replace
        other = replace(fast_settings, iterations=3)
        spec = RunSpec.create("amazon_google", "random", 7, 0.5, 0.5,
                              "selector", other)
        with pytest.raises(ConfigurationError):
            ExperimentEngine(fast_settings).adopt_results({spec: _sample_result()})

    def test_parallel_matches_serial_bit_for_bit(self, fast_settings):
        """Acceptance: ParallelExecutor(jobs=2) == SerialExecutor, exactly."""
        specs = (enumerate_run_specs("amazon_google", "random", fast_settings)
                 + enumerate_run_specs("amazon_google", "battleship",
                                       fast_settings)[:1])
        serial = ExperimentEngine(fast_settings, executor=SerialExecutor()).run(specs)
        parallel = ExperimentEngine(
            fast_settings, executor=ParallelExecutor(jobs=2)).run(specs)
        for spec in specs:
            serial_curve = serial[spec].learning_curve()
            parallel_curve = parallel[spec].learning_curve()
            assert parallel_curve.labeled_counts == serial_curve.labeled_counts
            assert parallel_curve.f1_scores == serial_curve.f1_scores
            assert ([r.test_metrics for r in parallel[spec].records]
                    == [r.test_metrics for r in serial[spec].records])


#: Zero-sleep policy for chaos tests: retries must not slow the suite down.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _assert_same_curves(actual, expected, specs):
    """Learning curves and metrics bit-identical (timings legitimately vary)."""
    for spec in specs:
        actual_curve = actual[spec].learning_curve()
        expected_curve = expected[spec].learning_curve()
        assert actual_curve.labeled_counts == expected_curve.labeled_counts
        assert actual_curve.f1_scores == expected_curve.f1_scores
        assert ([r.test_metrics for r in actual[spec].records]
                == [r.test_metrics for r in expected[spec].records])


def _normalized_store_payloads(root) -> dict[str, dict]:
    """Store artifacts keyed by file name, with wall-clock fields zeroed."""
    payloads = {}
    for path in sorted(root.glob("*.json")):
        payload = json.loads(path.read_text())
        for record in payload["result"]["records"]:
            record["train_seconds"] = 0.0
            record["selection_seconds"] = 0.0
        payloads[path.name] = payload
    return payloads


class TestFaultTolerance:
    """The PR's acceptance criteria: injected faults cost retries, not sweeps."""

    def test_serial_transient_fault_retries_to_identical_results(
            self, fast_settings):
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        clean = ExperimentEngine(fast_settings).run(specs)

        injector = FaultInjector.from_spec("raise@0,raise@1").resolve(specs)
        executor = SerialExecutor(retry_policy=FAST_RETRY, injector=injector)
        engine = ExperimentEngine(fast_settings, executor=executor)
        chaotic = engine.run(specs)

        assert engine.last_report.executed == len(specs)
        assert engine.last_report.retried == len(specs)
        assert engine.last_report.failed == 0
        _assert_same_curves(chaotic, clean, specs)

    def test_parallel_kill_and_raise_recover_bit_identically(
            self, tmp_path, fast_settings):
        """Acceptance: worker kill + raised exception under retry == clean run."""
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        assert len(specs) == 2
        clean_store = tmp_path / "clean"
        clean = ExperimentEngine(
            fast_settings, store=ArtifactStore(clean_store)).run(specs)

        injector = FaultInjector.from_spec("kill@0,raise@1").resolve(specs)
        chaos_store = tmp_path / "chaos"
        engine = ExperimentEngine(
            fast_settings,
            executor=ParallelExecutor(jobs=2, retry_policy=FAST_RETRY,
                                      injector=injector),
            store=ArtifactStore(chaos_store))
        chaotic = engine.run(specs)

        assert engine.last_report.executed == len(specs)
        assert engine.last_report.retried == len(specs)
        assert engine.last_report.failed == 0
        _assert_same_curves(chaotic, clean, specs)
        assert (_normalized_store_payloads(chaos_store)
                == _normalized_store_payloads(clean_store))

    def test_parallel_hang_is_cancelled_by_timeout_and_retried(
            self, fast_settings):
        """Acceptance: a hung job is cancelled at the deadline, not waited out."""
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        clean = ExperimentEngine(fast_settings).run(specs)

        # The hang (60 s) dwarfs the timeout (10 s), which itself dwarfs a
        # tiny-scale run; the retried attempt has no directive and completes.
        injector = FaultInjector.from_spec("hang=60@0").resolve(specs)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0,
                             timeout=10.0)
        engine = ExperimentEngine(
            fast_settings,
            executor=ParallelExecutor(jobs=2, retry_policy=policy,
                                      injector=injector))
        chaotic = engine.run(specs)

        assert engine.last_report.executed == len(specs)
        assert engine.last_report.retried >= 1
        assert engine.last_report.failed == 0
        _assert_same_curves(chaotic, clean, specs)

    def test_keep_going_records_ledger_and_resume_retries_exactly_it(
            self, tmp_path, fast_settings):
        """Acceptance: permanent failure → sibling persists + resumable ledger."""
        store_path = tmp_path / "store"
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        injector = FaultInjector.from_spec("permanent@0").resolve(specs)
        engine = ExperimentEngine(
            fast_settings,
            executor=ParallelExecutor(jobs=2, retry_policy=FAST_RETRY,
                                      keep_going=True, injector=injector),
            store=ArtifactStore(store_path))
        results = engine.run(specs)

        # The sibling survived and persisted; the failed job has no result.
        assert engine.last_report.executed == 1
        assert engine.last_report.failed == 1
        assert specs[0] not in results and specs[1] in results
        assert len(ArtifactStore(store_path)) == 1

        ledger = FailureLedger(ledger_path(store_path))
        assert ledger.fingerprints() == (specs[0].fingerprint(),)
        entry = ledger.entries[specs[0].fingerprint()]
        assert entry.error_type == "InjectedPermanentError"
        assert entry.attempts == 1  # permanent errors never retry

        # Resuming with the same store retries exactly the ledgered job.
        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(store_path))
        resumed.run(specs)
        assert resumed.last_report.executed == 1
        assert resumed.last_report.from_store == 1
        # The success cleared the ledger entry (and the now-empty file).
        assert not ledger_path(store_path).exists()

    def test_exhausted_transient_retries_become_permanent_failures(
            self, fast_settings):
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        # Every attempt of job 0 fails: the retry budget runs out.
        injector = FaultInjector.from_spec(
            "raise@0:0,raise@0:1").resolve(specs)
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        executor = SerialExecutor(retry_policy=policy, keep_going=True,
                                  injector=injector)
        engine = ExperimentEngine(fast_settings, executor=executor)
        results = engine.run(specs)

        assert engine.last_report.failed == 1
        assert engine.last_report.retried == 1
        assert specs[0] not in results and specs[1] in results
        failure, = executor.last_failures
        assert failure.attempts == 2
        assert failure.error_type == "InjectedTransientError"
        assert len(failure.tracebacks) == 2

    def test_repeated_pool_kills_quarantine_the_culprit(
            self, fast_settings):
        """A job that keeps killing its worker must not sink the sweep."""
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        injector = FaultInjector.from_spec("kill@0:0,kill@0:1").resolve(specs)
        policy = RetryPolicy(max_attempts=5, backoff_base=0.0, jitter=0.0)
        executor = ParallelExecutor(jobs=2, retry_policy=policy,
                                    keep_going=True, injector=injector)
        engine = ExperimentEngine(fast_settings, executor=executor)
        results = engine.run(specs)

        assert engine.last_report.failed == 1
        assert specs[0] not in results and specs[1] in results
        failure, = executor.last_failures
        assert failure.quarantined
        assert failure.error_type == "WorkerCrashError"
        assert failure.attempts == 2  # quarantined before the budget ran out

    def test_fail_fast_raises_after_retries_exhausted(self, fast_settings):
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        injector = FaultInjector.from_spec("permanent@0").resolve(specs)
        engine = ExperimentEngine(
            fast_settings,
            executor=ParallelExecutor(jobs=2, retry_policy=FAST_RETRY,
                                      injector=injector))
        from repro.experiments.faults import InjectedPermanentError
        with pytest.raises(InjectedPermanentError):
            engine.run(specs)

    def test_serial_executor_warns_it_cannot_enforce_timeouts(self):
        with pytest.warns(UserWarning, match="timeout"):
            SerialExecutor(retry_policy=RetryPolicy(timeout=5.0))


def _square(value: int) -> int:
    return value * value


_MAP_WORKER_BASE = 0


def _init_map_worker(base: int) -> None:
    global _MAP_WORKER_BASE
    _MAP_WORKER_BASE = base


def _add_base(value: int) -> int:
    return value + _MAP_WORKER_BASE


def _touch_unless_three(item: "tuple[int, str]") -> int:
    """Record the call in a scratch dir; item 3 fails (cancellation probe)."""
    index, scratch = item
    if index == 3:
        raise ValueError("three is right out")
    (Path(scratch) / f"{index}.ran").touch()
    return index


class TestMapIndexed:
    def test_results_in_item_order(self):
        executor = ParallelExecutor(jobs=2)
        assert executor.map_indexed(_square, range(10)) == \
            [value * value for value in range(10)]

    def test_empty_items(self):
        assert ParallelExecutor(jobs=2).map_indexed(_square, []) == []

    def test_initializer_state_reaches_workers(self):
        results = ParallelExecutor(jobs=2).map_indexed(
            _add_base, [1, 2, 3],
            initializer=_init_map_worker, initargs=(100,))
        assert results == [101, 102, 103]

    def test_failure_surfaces_first_error_and_cancels_queue(self, tmp_path):
        """A failed shard cancels the queue instead of draining it fully."""
        items = [(index, str(tmp_path)) for index in range(64)]
        with pytest.raises(ValueError, match="three is right out"):
            ParallelExecutor(jobs=2).map_indexed(_touch_unless_three, items)
        # Only the shards already in flight ran; the queued tail was cancelled.
        assert len(list(tmp_path.glob("*.ran"))) < len(items)


class TestFigure6TimingGuard:
    def test_parallel_store_engine_remeasures_and_hands_results_back(
            self, tmp_path, fast_settings):
        """Figure 6 timings must not come from contended workers or a warm store."""
        store = ArtifactStore(tmp_path / "store")
        engine = ExperimentEngine(fast_settings,
                                  executor=ParallelExecutor(jobs=2), store=store)
        with pytest.warns(UserWarning, match="re-measuring selection runtimes"):
            rows = figure6_runtime(fast_settings, engine=engine)
        assert rows and rows[0]["dataset"] == "amazon_google"
        # The fresh serial results were adopted: same grid resolves with zero
        # executions, and the store holds valid artifacts for every spec.
        specs = enumerate_run_specs("amazon_google", "battleship", fast_settings)
        engine.run(specs)
        assert engine.last_report.executed == 0
        assert len(store) == len(specs)

    def test_interrupted_timing_sweep_still_adopts_completed_runs(
            self, tmp_path, fast_settings):
        """A failure mid-sweep must not lose the timing runs that finished."""
        store = ArtifactStore(tmp_path / "store")
        engine = ExperimentEngine(fast_settings,
                                  executor=ParallelExecutor(jobs=2), store=store)
        with pytest.warns(UserWarning, match="re-measuring"):
            with pytest.raises(Exception):
                figure6_runtime(
                    fast_settings,
                    dataset_names=("amazon_google", "no_such_dataset"),
                    engine=engine)
        # The first dataset's completed timing runs reached the store.
        specs = enumerate_run_specs("amazon_google", "battleship", fast_settings)
        assert len(store) == len(specs)

    def test_mismatched_settings_rejected_before_any_run(self, fast_settings):
        from dataclasses import replace
        other = replace(fast_settings, iterations=3)
        engine = ExperimentEngine(other, executor=ParallelExecutor(jobs=2))
        with pytest.raises(ConfigurationError):
            figure6_runtime(fast_settings, engine=engine)

    def test_serial_storeless_engine_is_used_directly(self, fast_settings, recwarn):
        engine = ExperimentEngine(fast_settings)
        rows = figure6_runtime(fast_settings, engine=engine)
        assert rows
        assert not [w for w in recwarn
                    if "re-measuring" in str(w.message)]
        # No dedicated engine: the shared one resolved the timing runs.
        assert engine.total_report.executed > 0


class TestMethodRunAggregation:
    def test_selection_runtimes_average_over_runs_that_reached_iteration(self):
        def result_with_runtimes(runtimes):
            metrics = MatchingMetrics(precision=0.5, recall=0.5, f1=0.5,
                                      num_examples=10)
            return ActiveLearningResult(
                dataset_name="d", selector_name="s",
                records=[IterationRecord(iteration=i, num_labeled=8, num_weak=0,
                                         num_labeled_positives=4,
                                         test_metrics=metrics, train_seconds=0.0,
                                         selection_seconds=seconds)
                         for i, seconds in enumerate(runtimes)])

        run = MethodRun(dataset="d", method="s", results=[
            result_with_runtimes([1.0, 3.0, 5.0]),
            result_with_runtimes([3.0]),  # exhausted its pool early
        ])
        # Regression: the tail used to be truncated to the shortest run.
        assert run.selection_runtimes() == [2.0, 3.0, 5.0]

    def test_selection_runtimes_empty(self):
        assert MethodRun(dataset="d", method="s").selection_runtimes() == []
