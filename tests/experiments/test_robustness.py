"""Scenario grids through the experiment engine (acceptance tests of PR 3).

Uses the same minuscule configuration trick as ``test_engine``: one
iteration, tiny budgets, a small matcher, so full scenario sweeps run end to
end in seconds.
"""

import pytest

from repro.config import get_scale
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentSettings
from repro.experiments.engine import (
    ExperimentEngine,
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    clear_dataset_cache,
    get_dataset,
)
from repro.experiments.robustness import (
    noise_sensitivity_rows,
    robustness_curves,
    robustness_rows,
    scenario_grid_specs,
)
from repro.experiments.runner import enumerate_run_specs
from repro.experiments.store import ArtifactStore
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig
from repro.scenarios import get_scenario, resolve_scenarios

SCENARIO_NAMES = ("perfect", "noisy-0.1", "abstaining")


@pytest.fixture(scope="module")
def fast_settings() -> ExperimentSettings:
    return ExperimentSettings(
        scale=get_scale("tiny"),
        datasets=("amazon_google",),
        iterations=1,
        budget_per_iteration=8,
        seed_size=8,
        num_seeds=1,
        alphas=(0.5,),
        beta=0.5,
        matcher_config=MatcherConfig(hidden_dims=(24,), epochs=2, batch_size=16,
                                     learning_rate=2e-3, random_state=0),
        featurizer_config=FeaturizerConfig(hash_dim=32),
        base_random_seed=7,
    )


class TestScenarioSpecs:
    def test_scenario_distinguishes_fingerprints(self, fast_settings):
        specs = {
            name: RunSpec.create("amazon_google", "random", 7, 0.5, 0.5,
                                 "selector", fast_settings, scenario=name)
            for name in SCENARIO_NAMES
        }
        fingerprints = {spec.fingerprint() for spec in specs.values()}
        assert len(fingerprints) == len(specs)

    def test_unknown_scenario_rejected_at_creation(self, fast_settings):
        with pytest.raises(ConfigurationError):
            RunSpec.create("amazon_google", "random", 7, 0.5, 0.5,
                           "selector", fast_settings, scenario="mystery")

    def test_from_dict_defaults_to_perfect(self, fast_settings):
        spec = RunSpec.create("amazon_google", "random", 7, 0.5, 0.5,
                              "selector", fast_settings)
        payload = spec.to_dict()
        assert payload["scenario"] == "perfect"
        del payload["scenario"]  # a PR-2-era artifact has no scenario field
        assert RunSpec.from_dict(payload) == spec

    def test_fingerprint_tracks_scenario_definition(self, fast_settings):
        from repro.scenarios import Scenario, OracleModel, register_scenario
        register_scenario(Scenario(name="_fingerprint_probe",
                                   oracle=OracleModel(kind="noisy",
                                                      flip_probability=0.1)),
                          replace=True)
        spec = RunSpec.create("amazon_google", "random", 7, 0.5, 0.5,
                              "selector", fast_settings,
                              scenario="_fingerprint_probe")
        first = spec.fingerprint()
        # Redefine the scenario between fingerprint calls.
        register_scenario(Scenario(name="_fingerprint_probe",
                                   oracle=OracleModel(kind="noisy",
                                                      flip_probability=0.2)),
                          replace=True)
        assert spec.fingerprint() != first

    def test_enumerate_passes_scenario_through(self, fast_settings):
        specs = enumerate_run_specs("amazon_google", "random", fast_settings,
                                    scenario="noisy-0.1")
        assert all(spec.scenario == "noisy-0.1" for spec in specs)

    def test_grid_covers_every_cell(self, fast_settings):
        groups = scenario_grid_specs(
            fast_settings, ("amazon_google",),
            resolve_scenarios(SCENARIO_NAMES), ("random", "dal"))
        assert len(groups) == len(SCENARIO_NAMES) * 2
        for (dataset, scenario, method), specs in groups.items():
            assert specs and all(s.scenario == scenario for s in specs)


class TestScenarioDatasetCache:
    def test_oracle_only_scenarios_share_cached_dataset(self, fast_settings):
        clear_dataset_cache()
        plain = get_dataset("amazon_google", fast_settings)
        noisy = get_dataset("amazon_google", fast_settings,
                            get_scenario("noisy-0.1"))
        assert noisy is plain
        dirty = get_dataset("amazon_google", fast_settings,
                            get_scenario("very-dirty"))
        assert dirty is not plain


class TestScenarioSweeps:
    def test_fixture_probe_not_registered(self, fast_settings):
        # _fingerprint_probe above must not leak into name-less sweeps: the
        # sweeps in this class always name their scenarios explicitly.
        assert "perfect" in SCENARIO_NAMES

    def test_serial_parallel_bit_identical_per_scenario(self, fast_settings):
        """Acceptance: scenario grids run identically under both executors."""
        serial = robustness_curves(
            fast_settings, scenarios=SCENARIO_NAMES, methods=("random",),
            engine=ExperimentEngine(fast_settings, executor=SerialExecutor()))
        parallel = robustness_curves(
            fast_settings, scenarios=SCENARIO_NAMES, methods=("random",),
            engine=ExperimentEngine(fast_settings,
                                    executor=ParallelExecutor(jobs=2)))
        assert set(serial) == set(parallel)
        for cell, curve in serial.items():
            assert parallel[cell].labeled_counts == curve.labeled_counts
            assert parallel[cell].f1_scores == curve.f1_scores

    def test_warm_store_resume_executes_zero_jobs(self, tmp_path, fast_settings):
        """Acceptance: a warm ArtifactStore satisfies the whole scenario grid."""
        store_path = tmp_path / "store"
        first = ExperimentEngine(fast_settings, store=ArtifactStore(store_path))
        robustness_curves(fast_settings, scenarios=SCENARIO_NAMES,
                          methods=("random",), engine=first)
        assert first.total_report.executed == len(SCENARIO_NAMES)

        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(store_path))
        robustness_curves(fast_settings, scenarios=SCENARIO_NAMES,
                          methods=("random",), engine=resumed)
        assert resumed.total_report.executed == 0
        assert resumed.total_report.from_store == len(SCENARIO_NAMES)

    def test_abstaining_scenario_averages_across_seeds(self, fast_settings):
        # Regression: abstention makes each run's acquired-label counts
        # seed-dependent; averaging over seeds/alphas must align the curves
        # positionally instead of crashing on mismatched axes.
        from dataclasses import replace
        multi_seed = replace(fast_settings, num_seeds=2)
        curves = robustness_curves(multi_seed, scenarios=("abstaining",),
                                   methods=("random",),
                                   engine=ExperimentEngine(multi_seed))
        (curve,) = curves.values()
        assert len(curve.labeled_counts) == fast_settings.iterations + 1

    def test_parallel_sweep_with_user_registered_scenario(self, fast_settings):
        # Worker processes must receive user-registered scenario definitions
        # (a spawn-started pool re-imports the registry with built-ins only).
        from repro.scenarios import Scenario, OracleModel, register_scenario
        register_scenario(Scenario(name="_custom_parallel",
                                   oracle=OracleModel(kind="noisy",
                                                      flip_probability=0.05)),
                          replace=True)
        engine = ExperimentEngine(fast_settings,
                                  executor=ParallelExecutor(jobs=2))
        specs = (enumerate_run_specs("amazon_google", "random", fast_settings,
                                     scenario="_custom_parallel")
                 + enumerate_run_specs("amazon_google", "random",
                                       fast_settings))
        results = engine.run(specs)
        assert len(results) == len(specs)

    def test_resolve_accepts_scenario_objects_in_lists(self):
        curves_input = [get_scenario("perfect"), "noisy-0.1"]
        resolved = resolve_scenarios(curves_input)
        assert [s.name for s in resolved] == ["perfect", "noisy-0.1"]

    def test_default_scenario_keeps_legacy_fingerprint(self, fast_settings):
        # PR-2-era stores must resume: a perfect-scenario spec hashes the
        # pre-scenario payload shape.
        import hashlib
        import json
        spec = RunSpec.create("amazon_google", "random", 7, 0.5, 0.5,
                              "selector", fast_settings)
        legacy_payload = {key: value for key, value in spec.to_dict().items()
                          if key != "scenario"}
        legacy = hashlib.sha256(
            json.dumps(legacy_payload, sort_keys=True,
                       separators=(",", ":")).encode("utf-8")).hexdigest()[:24]
        assert spec.fingerprint() == legacy

    def test_noise_degrades_relative_to_perfect(self, fast_settings):
        engine = ExperimentEngine(fast_settings)
        curves = robustness_curves(fast_settings,
                                   scenarios=("perfect", "noisy-0.3"),
                                   methods=("random",), engine=engine)
        rows = robustness_rows(curves)
        assert {row["scenario"] for row in rows} == {"perfect", "noisy-0.3"}
        by_scenario = {row["scenario"]: row for row in rows}
        assert by_scenario["noisy-0.3"]["noise_level"] == 0.3
        sensitivity = noise_sensitivity_rows(curves)
        assert len(sensitivity) == 1
        assert sensitivity[0]["scenario"] == "noisy-0.3"
        # The drop equals the difference of the two reported finals.
        expected_drop = round(by_scenario["perfect"]["final_f1"]
                              - by_scenario["noisy-0.3"]["final_f1"], 2)
        assert sensitivity[0]["f1_drop"] == pytest.approx(expected_drop, abs=0.02)
