"""Tests for the experiment harness (configs, runner, tables, figures).

These use the tiny scale and small method subsets so the harness logic is
exercised end to end without the cost of the full benchmark sweep (which lives
in benchmarks/).
"""

import numpy as np
import pytest

from repro.active.weak_supervision import WeakSupervisionMode
from repro.config import get_scale
from repro.evaluation.curves import LearningCurve
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentSettings, default_settings
from repro.experiments.paper_values import TABLE4_F1, TABLE5_AUC
from repro.experiments.runner import (
    ACTIVE_LEARNING_METHODS,
    clear_dataset_cache,
    get_dataset,
    method_factory,
    run_learning_curves,
    run_method,
)
from repro.experiments.tables import table3_dataset_statistics, table4_f1_by_budget, table5_auc
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig


@pytest.fixture(scope="module")
def tiny_settings() -> ExperimentSettings:
    return ExperimentSettings(
        scale=get_scale("tiny"),
        datasets=("amazon_google",),
        iterations=2,
        budget_per_iteration=16,
        seed_size=16,
        num_seeds=1,
        alphas=(0.5,),
        beta=0.5,
        matcher_config=MatcherConfig(hidden_dims=(48, 24), epochs=4, batch_size=16,
                                     learning_rate=2e-3, random_state=0),
        featurizer_config=FeaturizerConfig(hash_dim=64),
        base_random_seed=7,
    )


class TestSettings:
    def test_default_settings_resolve_scale(self):
        settings = default_settings("tiny")
        assert settings.scale.name == "tiny"
        assert settings.datasets == tuple(
            ("walmart_amazon", "amazon_google", "wdc_cameras", "wdc_shoes",
             "abt_buy", "dblp_scholar"))

    def test_paper_scale_restores_published_configuration(self):
        settings = default_settings("paper")
        assert settings.num_seeds == 3
        assert settings.alphas == (0.25, 0.5, 0.75)
        assert settings.budget_per_iteration == 100
        assert settings.labeled_checkpoints[-1] == 900
        assert settings.mid_checkpoint == 500

    def test_checkpoints(self, tiny_settings):
        assert tiny_settings.labeled_checkpoints == (16, 32, 48)
        assert tiny_settings.final_checkpoint == 48

    def test_seeds_are_distinct(self, tiny_settings):
        assert len(set(tiny_settings.seeds())) == tiny_settings.num_seeds


class TestRunner:
    def test_method_factory_known_methods(self):
        for name in ACTIVE_LEARNING_METHODS:
            factory = method_factory(name)
            selector = factory(0.5, 0.5)
            assert selector.name in {"battleship", "dal", "dial", "random"}

    def test_method_factory_unknown(self):
        with pytest.raises(ConfigurationError):
            method_factory("mystery")

    def test_dataset_cache(self, tiny_settings):
        clear_dataset_cache()
        first = get_dataset("amazon_google", tiny_settings)
        second = get_dataset("amazon_google", tiny_settings)
        assert first is second

    def test_run_method_produces_expected_curve_axis(self, tiny_settings):
        run = run_method("amazon_google", "random", tiny_settings)
        curve = run.curve()
        assert curve.labeled_counts == list(tiny_settings.labeled_checkpoints)
        assert all(0.0 <= f1 <= 1.0 for f1 in curve.f1_scores)

    def test_run_method_weak_supervision_override(self, tiny_settings):
        run = run_method("amazon_google", "dal", tiny_settings,
                         weak_supervision=WeakSupervisionMode.OFF)
        assert all(record.num_weak == 0
                   for result in run.results for record in result.records)

    def test_run_learning_curves_structure(self, tiny_settings):
        curves = run_learning_curves(("amazon_google",), ("random", "dal"), tiny_settings)
        assert set(curves) == {"amazon_google"}
        assert set(curves["amazon_google"]) == {"random", "dal"}


class TestTables:
    def test_table3_rows(self, tiny_settings):
        rows = table3_dataset_statistics(tiny_settings)
        assert len(rows) == 1
        row = rows[0]
        assert row["dataset"] == "amazon_google"
        assert row["paper_size"] == 6874
        assert row["atts"] == row["paper_atts"] == 3

    def test_table4_and_table5_from_curves(self, tiny_settings):
        curves = {"amazon_google": {
            "battleship": LearningCurve([16, 32, 48], [0.4, 0.6, 0.7]),
            "dal": LearningCurve([16, 32, 48], [0.4, 0.5, 0.6]),
        }}
        rows4 = table4_f1_by_budget(curves, tiny_settings, include_reference_models=False)
        assert len(rows4) == 2
        battleship_row = next(row for row in rows4 if row["method"] == "battleship")
        assert battleship_row["f1_final"] == pytest.approx(70.0)
        assert battleship_row["paper_f1_900"] == TABLE4_F1["battleship"]["amazon_google"][900]

        rows5 = table5_auc(curves)
        battleship_auc = next(row for row in rows5 if row["method"] == "battleship")
        dal_auc = next(row for row in rows5 if row["method"] == "dal")
        assert battleship_auc["auc"] > dal_auc["auc"]
        assert battleship_auc["paper_auc"] == TABLE5_AUC["battleship"]["amazon_google"]


class TestPaperValues:
    def test_table4_contains_all_methods_and_datasets(self):
        for method in ("random", "dal", "dial", "battleship"):
            assert set(TABLE4_F1[method]) == {
                "walmart_amazon", "amazon_google", "wdc_cameras", "wdc_shoes",
                "abt_buy", "dblp_scholar"}

    def test_battleship_beats_dal_in_paper_auc(self):
        for dataset, value in TABLE5_AUC["battleship"].items():
            dal_value = TABLE5_AUC["dal"][dataset]
            if value is not None and dal_value is not None:
                assert value > dal_value
