"""Engine-level feature-matrix reuse.

A figure grid enumerates many runs over few datasets; the engine must
featurize each dataset exactly once per process (counter-hook regression)
while producing curves bit-identical to per-run featurization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import engine as engine_module
from repro.experiments.configs import default_settings
from repro.experiments.engine import (
    ExperimentEngine,
    RunSpec,
    SerialExecutor,
    clear_dataset_cache,
    clear_feature_cache,
    execute_spec,
    get_dataset,
    get_feature_matrix,
    method_factory,
    run_single,
)
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer
from repro.scenarios import get_scenario


@pytest.fixture()
def tiny_settings():
    return default_settings("tiny", datasets=("amazon_google",))


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


def _strip_timings(result) -> dict:
    payload = result.to_dict()
    for record in payload["records"]:
        record.pop("train_seconds")
        record.pop("selection_seconds")
    return payload


def test_engine_grid_featurizes_each_dataset_exactly_once(tiny_settings, monkeypatch):
    calls: list[str] = []
    original = PairFeaturizer.transform

    def counting_transform(self, dataset, indices=None):
        calls.append(dataset.name)
        return original(self, dataset, indices)

    monkeypatch.setattr(PairFeaturizer, "transform", counting_transform)
    specs = [
        RunSpec.create("amazon_google", method, seed, 0.5, 0.5, "selector",
                       tiny_settings)
        for method in ("random", "dal")
        for seed in (7, 20)
    ]
    engine = ExperimentEngine(tiny_settings, executor=SerialExecutor())
    results = engine.run(specs)
    assert len(results) == 4
    assert engine.last_report.executed == 4
    assert calls == ["amazon_google"]


def test_cached_grid_curves_match_per_run_featurization(tiny_settings):
    spec = RunSpec.create("amazon_google", "battleship", 7, 0.5, 0.5,
                          "selector", tiny_settings)
    cached_result = execute_spec(spec, tiny_settings)

    dataset = get_dataset("amazon_google", tiny_settings)
    scenario = get_scenario("perfect")
    per_run_result = run_single(
        dataset, method_factory("battleship")(0.5, 0.5), tiny_settings, 7,
        "selector", oracle=scenario.build_oracle(dataset, 7))
    assert _strip_timings(cached_result) == _strip_timings(per_run_result)


def test_feature_matrix_cached_and_read_only(tiny_settings):
    first = get_feature_matrix("amazon_google", tiny_settings)
    second = get_feature_matrix("amazon_google", tiny_settings)
    assert first is second
    assert not first.flags.writeable
    with pytest.raises(ValueError):
        first[0, 0] = 1.0


def test_feature_cache_key_includes_featurizer_config(tiny_settings):
    narrow = default_settings("tiny", datasets=("amazon_google",))
    wide_config = FeaturizerConfig(hash_dim=64)
    import dataclasses
    wide = dataclasses.replace(narrow, featurizer_config=wide_config)
    narrow_matrix = get_feature_matrix("amazon_google", narrow)
    wide_matrix = get_feature_matrix("amazon_google", wide)
    assert narrow_matrix.shape[1] != wide_matrix.shape[1]
    assert len(engine_module._FEATURE_CACHE) == 2


def test_feature_cache_is_a_bounded_lru(tiny_settings, monkeypatch):
    monkeypatch.setattr(engine_module, "FEATURE_CACHE_MAX_ENTRIES", 1)
    import dataclasses
    wide = dataclasses.replace(tiny_settings,
                               featurizer_config=FeaturizerConfig(hash_dim=64))
    first = get_feature_matrix("amazon_google", tiny_settings)
    get_feature_matrix("amazon_google", wide)
    assert len(engine_module._FEATURE_CACHE) == 1
    # The narrow matrix was evicted; requesting it again recomputes (same
    # values, different object).
    recomputed = get_feature_matrix("amazon_google", tiny_settings)
    assert recomputed is not first
    assert np.array_equal(recomputed, first)


def test_clear_dataset_cache_drops_feature_matrices(tiny_settings):
    get_feature_matrix("amazon_google", tiny_settings)
    assert engine_module._FEATURE_CACHE
    clear_dataset_cache()
    assert not engine_module._FEATURE_CACHE


def test_clear_feature_cache_keeps_datasets(tiny_settings):
    get_feature_matrix("amazon_google", tiny_settings)
    assert engine_module._DATASET_CACHE
    clear_feature_cache()
    assert not engine_module._FEATURE_CACHE
    assert engine_module._DATASET_CACHE


def test_loop_rejects_mismatched_feature_matrix(tiny_settings):
    from repro.active.loop import ActiveLearningLoop
    from repro.active.selectors import RandomSelector

    dataset = get_dataset("amazon_google", tiny_settings)
    with pytest.raises(ConfigurationError):
        ActiveLearningLoop(
            dataset=dataset,
            selector=RandomSelector(),
            featurizer_config=tiny_settings.featurizer_config,
            features=np.zeros((3, 4)),
        )
