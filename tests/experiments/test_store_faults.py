"""Fault-path tests for the artifact store.

A resumable sweep must survive a damaged store: a truncated or corrupt
artifact (killed process, full disk, manual edit) is worth one warning and
one re-executed run — never a crashed resume.
"""

import json
import os

import pytest

from repro.active.loop import ActiveLearningResult, IterationRecord
from repro.config import get_scale
from repro.evaluation.metrics import MatchingMetrics
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentSettings
from repro.experiments.engine import (
    ExperimentEngine,
    RunSpec,
    SerialExecutor,
)
from repro.experiments.faults import (
    FaultInjector,
    RetryPolicy,
    TornWriteError,
    init_injector,
)
from repro.experiments.runner import enumerate_run_specs
from repro.experiments.store import ArtifactStore
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig


@pytest.fixture(scope="module")
def fast_settings() -> ExperimentSettings:
    return ExperimentSettings(
        scale=get_scale("tiny"),
        datasets=("amazon_google",),
        iterations=1,
        budget_per_iteration=8,
        seed_size=8,
        num_seeds=1,
        alphas=(0.5,),
        beta=0.5,
        matcher_config=MatcherConfig(hidden_dims=(24,), epochs=2, batch_size=16,
                                     learning_rate=2e-3, random_state=0),
        featurizer_config=FeaturizerConfig(hash_dim=32),
        base_random_seed=7,
    )


def _result() -> ActiveLearningResult:
    metrics = MatchingMetrics(precision=0.5, recall=0.5, f1=0.5, num_examples=10)
    return ActiveLearningResult(
        dataset_name="amazon_google", selector_name="random",
        records=[IterationRecord(iteration=0, num_labeled=8, num_weak=0,
                                 num_labeled_positives=4, test_metrics=metrics,
                                 train_seconds=0.1, selection_seconds=0.1)])


def _spec(settings) -> RunSpec:
    return RunSpec.create("amazon_google", "random", 7, 0.5, 0.5,
                          "selector", settings)


class TestCorruptArtifacts:
    def test_truncated_artifact_warns_and_reads_as_absent(self, tmp_path,
                                                          fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = _spec(fast_settings)
        path = store.put(spec, _result())
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.warns(UserWarning, match="corrupt artifact"):
            assert store.get(spec) is None

    def test_missing_result_key_warns(self, tmp_path, fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = _spec(fast_settings)
        path = store.put(spec, _result())
        payload = json.loads(path.read_text())
        del payload["result"]
        path.write_text(json.dumps(payload))
        with pytest.warns(UserWarning, match="corrupt artifact"):
            assert store.get(spec) is None

    def test_items_skips_corrupt_entries(self, tmp_path, fast_settings):
        store = ArtifactStore(tmp_path / "store")
        good_spec = _spec(fast_settings)
        store.put(good_spec, _result())
        bad_spec = RunSpec.create("amazon_google", "dal", 7, 0.5, 0.5,
                                  "selector", fast_settings)
        store.put(bad_spec, _result()).write_text("{not json")
        with pytest.warns(UserWarning, match="corrupt artifact"):
            entries = list(store.items())
        assert len(entries) == 1
        assert entries[0][0] == good_spec.to_dict()

    def test_format_version_mismatch_still_raises(self, tmp_path,
                                                  fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = _spec(fast_settings)
        path = store.put(spec, _result())
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            store.get(spec)

    def test_resume_collapses_corruption_warnings_into_one_summary(
            self, tmp_path, fast_settings):
        """Many damaged artifacts cost one summary warning, not one each."""
        store_path = tmp_path / "store"
        specs = (enumerate_run_specs("amazon_google", "random", fast_settings)
                 + enumerate_run_specs("amazon_google", "dal", fast_settings))
        ExperimentEngine(fast_settings,
                         store=ArtifactStore(store_path)).run(specs)
        store = ArtifactStore(store_path)
        for spec in specs:
            path = store.path_for(spec)
            path.write_text(path.read_text()[:40])

        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(store_path))
        with pytest.warns(UserWarning) as caught:
            resumed.run(specs)
        corruption = [record for record in caught
                      if "corrupt artifact" in str(record.message)]
        assert len(corruption) == 1
        message = str(corruption[0].message)
        assert f"{len(specs)} corrupt artifact(s)" in message
        assert "re-executed" in message
        assert resumed.last_report.executed == len(specs)

    @pytest.mark.parametrize("damage", [
        pytest.param(lambda text: text[: len(text) // 2], id="truncated-json"),
        pytest.param(lambda text: "", id="empty-file"),
        pytest.param(lambda text: json.dumps({"unrelated": True}),
                     id="valid-json-wrong-schema"),
    ])
    def test_each_damage_mode_costs_one_rerun_and_one_warning(
            self, tmp_path, fast_settings, damage):
        """Every torn-write shape reads as absent: one warning, one re-run."""
        store_path = tmp_path / "store"
        specs = (enumerate_run_specs("amazon_google", "random", fast_settings)
                 + enumerate_run_specs("amazon_google", "dal", fast_settings))
        ExperimentEngine(fast_settings,
                         store=ArtifactStore(store_path)).run(specs)
        victim = ArtifactStore(store_path).path_for(specs[0])
        victim.write_text(damage(victim.read_text()))

        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(store_path))
        with pytest.warns(UserWarning) as caught:
            resumed.run(specs)
        corruption = [record for record in caught
                      if "corrupt artifact" in str(record.message)]
        assert len(corruption) == 1
        assert resumed.last_report.executed == 1
        assert resumed.last_report.from_store == len(specs) - 1

    def test_resumed_sweep_reexecutes_only_the_corrupt_run(self, tmp_path,
                                                           fast_settings):
        """Acceptance: a damaged artifact costs one re-execution, not a crash."""
        store_path = tmp_path / "store"
        specs = (enumerate_run_specs("amazon_google", "random", fast_settings)
                 + enumerate_run_specs("amazon_google", "dal", fast_settings))
        first = ExperimentEngine(fast_settings, store=ArtifactStore(store_path))
        first.run(specs)
        assert first.last_report.executed == len(specs)

        # Truncate one artifact mid-file, as a killed process would.
        victim = ArtifactStore(store_path).path_for(specs[0])
        victim.write_text(victim.read_text()[:40])

        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(store_path))
        with pytest.warns(UserWarning, match="corrupt artifact"):
            results = resumed.run(specs)
        assert resumed.last_report.executed == 1
        assert resumed.last_report.from_store == len(specs) - 1
        assert set(results) == set(specs)
        # The re-executed run was persisted again: a second resume is clean.
        second = ExperimentEngine(fast_settings,
                                  store=ArtifactStore(store_path))
        second.run(specs)
        assert second.last_report.executed == 0


class TestCrashSafePut:
    def test_stale_temp_files_cleaned_on_init(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        stale = root / "deadbeef.json.tmp"
        stale.write_text("{half a write")
        ArtifactStore(root)
        assert not stale.exists()

    def test_put_leaves_no_temp_on_mid_write_failure(self, tmp_path,
                                                     fast_settings,
                                                     monkeypatch):
        """A crash between temp-write and rename must not strand debris."""
        store = ArtifactStore(tmp_path / "store")

        def exploding_fsync(fd):
            raise OSError("simulated disk failure")

        monkeypatch.setattr("repro.experiments.store.os.fsync",
                            exploding_fsync)
        with pytest.raises(OSError, match="simulated disk failure"):
            store.put(_spec(fast_settings), _result())
        assert list(store.root.glob("*.tmp")) == []
        assert len(store) == 0

    def test_put_fsyncs_before_replace(self, tmp_path, fast_settings,
                                       monkeypatch):
        """The temp file is durable before the rename publishes it."""
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            "repro.experiments.store.os.fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1])
        monkeypatch.setattr(
            "repro.experiments.store.os.replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1])
        store = ArtifactStore(tmp_path / "store")
        store.put(_spec(fast_settings), _result())
        assert events == ["fsync", "replace"]


class TestTornWriteInjection:
    def test_torn_put_truncates_final_path_and_raises(self, tmp_path,
                                                      fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = _spec(fast_settings)
        injector = FaultInjector.from_spec("torn@0").resolve([spec])
        init_injector(injector)
        try:
            with pytest.raises(TornWriteError):
                store.put(spec, _result())
            # The torn artifact is a genuinely unreadable partial file.
            path = store.path_for(spec)
            assert path.exists()
            with pytest.raises(json.JSONDecodeError):
                json.loads(path.read_text())
            with pytest.warns(UserWarning, match="corrupt artifact"):
                assert store.get(spec) is None
            # The retried write (count 1: no matching directive) lands clean.
            store.put(spec, _result())
            assert store.get(spec) == _result()
        finally:
            init_injector(None)

    def test_engine_self_heals_torn_write_under_retry_policy(
            self, tmp_path, fast_settings):
        """A torn artifact write costs one retried put, not a failed sweep."""
        store_path = tmp_path / "store"
        specs = enumerate_run_specs("amazon_google", "random", fast_settings)
        injector = FaultInjector.from_spec("torn@0").resolve(specs)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
        engine = ExperimentEngine(
            fast_settings,
            executor=SerialExecutor(retry_policy=policy, injector=injector),
            store=ArtifactStore(store_path))
        engine.run(specs)
        assert engine.last_report.executed == len(specs)
        assert engine.last_report.retried == 1  # the re-issued store.put
        assert engine.last_report.failed == 0
        # Every artifact is valid: a fresh resume loads all from the store.
        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(store_path))
        resumed.run(specs)
        assert resumed.last_report.executed == 0
        assert resumed.last_report.from_store == len(specs)
