"""Fault-path tests for the artifact store.

A resumable sweep must survive a damaged store: a truncated or corrupt
artifact (killed process, full disk, manual edit) is worth one warning and
one re-executed run — never a crashed resume.
"""

import json

import pytest

from repro.active.loop import ActiveLearningResult, IterationRecord
from repro.config import get_scale
from repro.evaluation.metrics import MatchingMetrics
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentSettings
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.runner import enumerate_run_specs
from repro.experiments.store import ArtifactStore
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig


@pytest.fixture(scope="module")
def fast_settings() -> ExperimentSettings:
    return ExperimentSettings(
        scale=get_scale("tiny"),
        datasets=("amazon_google",),
        iterations=1,
        budget_per_iteration=8,
        seed_size=8,
        num_seeds=1,
        alphas=(0.5,),
        beta=0.5,
        matcher_config=MatcherConfig(hidden_dims=(24,), epochs=2, batch_size=16,
                                     learning_rate=2e-3, random_state=0),
        featurizer_config=FeaturizerConfig(hash_dim=32),
        base_random_seed=7,
    )


def _result() -> ActiveLearningResult:
    metrics = MatchingMetrics(precision=0.5, recall=0.5, f1=0.5, num_examples=10)
    return ActiveLearningResult(
        dataset_name="amazon_google", selector_name="random",
        records=[IterationRecord(iteration=0, num_labeled=8, num_weak=0,
                                 num_labeled_positives=4, test_metrics=metrics,
                                 train_seconds=0.1, selection_seconds=0.1)])


def _spec(settings) -> RunSpec:
    return RunSpec.create("amazon_google", "random", 7, 0.5, 0.5,
                          "selector", settings)


class TestCorruptArtifacts:
    def test_truncated_artifact_warns_and_reads_as_absent(self, tmp_path,
                                                          fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = _spec(fast_settings)
        path = store.put(spec, _result())
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.warns(UserWarning, match="corrupt artifact"):
            assert store.get(spec) is None

    def test_missing_result_key_warns(self, tmp_path, fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = _spec(fast_settings)
        path = store.put(spec, _result())
        payload = json.loads(path.read_text())
        del payload["result"]
        path.write_text(json.dumps(payload))
        with pytest.warns(UserWarning, match="corrupt artifact"):
            assert store.get(spec) is None

    def test_items_skips_corrupt_entries(self, tmp_path, fast_settings):
        store = ArtifactStore(tmp_path / "store")
        good_spec = _spec(fast_settings)
        store.put(good_spec, _result())
        bad_spec = RunSpec.create("amazon_google", "dal", 7, 0.5, 0.5,
                                  "selector", fast_settings)
        store.put(bad_spec, _result()).write_text("{not json")
        with pytest.warns(UserWarning, match="corrupt artifact"):
            entries = list(store.items())
        assert len(entries) == 1
        assert entries[0][0] == good_spec.to_dict()

    def test_format_version_mismatch_still_raises(self, tmp_path,
                                                  fast_settings):
        store = ArtifactStore(tmp_path / "store")
        spec = _spec(fast_settings)
        path = store.put(spec, _result())
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            store.get(spec)

    def test_resume_collapses_corruption_warnings_into_one_summary(
            self, tmp_path, fast_settings):
        """Many damaged artifacts cost one summary warning, not one each."""
        store_path = tmp_path / "store"
        specs = (enumerate_run_specs("amazon_google", "random", fast_settings)
                 + enumerate_run_specs("amazon_google", "dal", fast_settings))
        ExperimentEngine(fast_settings,
                         store=ArtifactStore(store_path)).run(specs)
        store = ArtifactStore(store_path)
        for spec in specs:
            path = store.path_for(spec)
            path.write_text(path.read_text()[:40])

        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(store_path))
        with pytest.warns(UserWarning) as caught:
            resumed.run(specs)
        corruption = [record for record in caught
                      if "corrupt artifact" in str(record.message)]
        assert len(corruption) == 1
        message = str(corruption[0].message)
        assert f"{len(specs)} corrupt artifact(s)" in message
        assert "re-executed" in message
        assert resumed.last_report.executed == len(specs)

    def test_resumed_sweep_reexecutes_only_the_corrupt_run(self, tmp_path,
                                                           fast_settings):
        """Acceptance: a damaged artifact costs one re-execution, not a crash."""
        store_path = tmp_path / "store"
        specs = (enumerate_run_specs("amazon_google", "random", fast_settings)
                 + enumerate_run_specs("amazon_google", "dal", fast_settings))
        first = ExperimentEngine(fast_settings, store=ArtifactStore(store_path))
        first.run(specs)
        assert first.last_report.executed == len(specs)

        # Truncate one artifact mid-file, as a killed process would.
        victim = ArtifactStore(store_path).path_for(specs[0])
        victim.write_text(victim.read_text()[:40])

        resumed = ExperimentEngine(fast_settings,
                                   store=ArtifactStore(store_path))
        with pytest.warns(UserWarning, match="corrupt artifact"):
            results = resumed.run(specs)
        assert resumed.last_report.executed == 1
        assert resumed.last_report.from_store == len(specs) - 1
        assert set(results) == set(specs)
        # The re-executed run was persisted again: a second resume is clean.
        second = ExperimentEngine(fast_settings,
                                  store=ArtifactStore(store_path))
        second.run(specs)
        assert second.last_report.executed == 0
