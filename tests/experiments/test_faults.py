"""Unit tests for the fault-tolerance primitives.

The retry/backoff math, the chaos directive grammar, and the failure ledger
are the deterministic foundation the engine recovery tests build on, so each
is pinned here in isolation: identical inputs must always produce identical
backoffs, directive resolutions, and ledger bytes.
"""

import json

import pytest

from repro.config import get_scale
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentSettings
from repro.experiments.engine import RunSpec
from repro.experiments.faults import (
    LEDGER_FORMAT_VERSION,
    FailureLedger,
    FailureRecord,
    FaultInjector,
    InjectedPermanentError,
    InjectedTransientError,
    JobTimeoutError,
    RetryPolicy,
    TornWriteError,
    WorkerCrashError,
    _parse_directive,
    active_injector,
    init_injector,
    is_transient,
    ledger_path,
    record_traceback,
)
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig


@pytest.fixture(scope="module")
def fast_settings() -> ExperimentSettings:
    return ExperimentSettings(
        scale=get_scale("tiny"),
        datasets=("amazon_google",),
        iterations=1,
        budget_per_iteration=8,
        seed_size=8,
        num_seeds=2,
        alphas=(0.5,),
        beta=0.5,
        matcher_config=MatcherConfig(hidden_dims=(24,), epochs=2, batch_size=16,
                                     learning_rate=2e-3, random_state=0),
        featurizer_config=FeaturizerConfig(hash_dim=32),
        base_random_seed=7,
    )


def _specs(settings) -> list[RunSpec]:
    return [RunSpec.create("amazon_google", "random", seed, 0.5, 0.5,
                           "selector", settings)
            for seed in settings.seeds()]


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout is None

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"backoff_max": -1.0},
        {"jitter": 1.5},
        {"jitter": -0.1},
        {"timeout": 0.0},
    ])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_is_deterministic_across_instances(self):
        first = RetryPolicy().backoff_seconds("abcd1234", 1)
        second = RetryPolicy().backoff_seconds("abcd1234", 1)
        assert first == second

    def test_backoff_varies_by_fingerprint_and_attempt(self):
        policy = RetryPolicy()
        assert (policy.backoff_seconds("abcd1234", 0)
                != policy.backoff_seconds("ffff0000", 0))
        assert (policy.backoff_seconds("abcd1234", 0)
                != policy.backoff_seconds("abcd1234", 1))

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.0)
        assert policy.backoff_seconds("fp", 0) == pytest.approx(0.1)
        assert policy.backoff_seconds("fp", 1) == pytest.approx(0.2)
        assert policy.backoff_seconds("fp", 3) == pytest.approx(0.8)

    def test_backoff_capped_at_maximum(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_max=5.0, jitter=0.25)
        assert policy.backoff_seconds("fp", 9) <= 5.0

    def test_jitter_stays_within_spread(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                             backoff_max=100.0, jitter=0.25)
        for attempt in range(16):
            backoff = policy.backoff_seconds("fp", attempt)
            assert 0.75 <= backoff <= 1.25

    def test_retryable_classification(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.retryable(InjectedTransientError("x"), 1)
        assert policy.retryable(JobTimeoutError("x"), 1)
        assert policy.retryable(WorkerCrashError("x"), 1)
        assert policy.retryable(TornWriteError("x"), 1)
        # Attempt budget exhausted.
        assert not policy.retryable(InjectedTransientError("x"), 2)
        # Permanent error classes never retry.
        assert not policy.retryable(InjectedPermanentError("x"), 1)
        assert not policy.retryable(ValueError("x"), 1)
        assert not policy.retryable(ConfigurationError("x"), 1)

    def test_is_transient_covers_infrastructure_errors(self):
        assert is_transient(ConnectionError("reset"))
        assert is_transient(TimeoutError("slow"))
        assert is_transient(OSError("disk"))
        assert not is_transient(KeyError("missing"))

    def test_dict_round_trip(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.1, timeout=12.5)
        assert RetryPolicy.from_dict(
            json.loads(json.dumps(policy.to_dict()))) == policy


class TestDirectiveGrammar:
    def test_bare_kind(self):
        directive = _parse_directive("kill")
        assert (directive.kind, directive.rank, directive.attempt) == \
            ("kill", 0, 0)

    def test_rank_and_attempt(self):
        directive = _parse_directive("raise@2:1")
        assert (directive.kind, directive.rank, directive.attempt) == \
            ("raise", 2, 1)

    def test_value_with_rank(self):
        directive = _parse_directive("hang=20@1")
        assert directive.kind == "hang"
        assert directive.value == 20.0
        assert directive.rank == 1

    def test_attempt_without_rank(self):
        directive = _parse_directive("torn:1")
        assert (directive.kind, directive.rank, directive.attempt) == \
            ("torn", 0, 1)

    @pytest.mark.parametrize("text", [
        "explode@0",          # unknown kind
        "raise@x",            # non-integer rank
        "raise@0:y",          # non-integer attempt
        "hang=abc@0",         # non-numeric value
        "kill@-1",            # negative rank
    ])
    def test_malformed_directives_rejected(self, text):
        with pytest.raises(ConfigurationError):
            _parse_directive(text)

    def test_from_spec_blank_means_off(self):
        assert FaultInjector.from_spec(None) is None
        assert FaultInjector.from_spec("") is None
        assert FaultInjector.from_spec("  ,  ") is None

    def test_from_spec_parses_comma_separated_list(self):
        injector = FaultInjector.from_spec("kill@0, raise@1:0, hang=5@2")
        assert injector is not None
        assert [d.kind for d in injector.directives] == \
            ["kill", "raise", "hang"]


class TestFaultInjector:
    def test_resolve_binds_ranks_to_fingerprints(self, fast_settings):
        specs = _specs(fast_settings)
        injector = FaultInjector.from_spec("raise@1").resolve(specs)
        directive, = injector.directives
        assert directive.fingerprint == specs[1].fingerprint()

    def test_resolve_rejects_out_of_range_rank(self, fast_settings):
        specs = _specs(fast_settings)
        with pytest.raises(ConfigurationError):
            FaultInjector.from_spec("raise@9").resolve(specs)

    def test_fire_matches_fingerprint_and_attempt(self, fast_settings):
        specs = _specs(fast_settings)
        injector = FaultInjector.from_spec("raise@0:1").resolve(specs)
        # Wrong attempt and wrong job: no-ops.
        injector.fire(specs[0].fingerprint(), 0)
        injector.fire(specs[1].fingerprint(), 1)
        with pytest.raises(InjectedTransientError):
            injector.fire(specs[0].fingerprint(), 1)

    def test_permanent_directive_raises_permanent_error(self, fast_settings):
        specs = _specs(fast_settings)
        injector = FaultInjector.from_spec("permanent@0").resolve(specs)
        with pytest.raises(InjectedPermanentError):
            injector.fire(specs[0].fingerprint(), 0)

    def test_kills_identifies_the_directed_victim(self, fast_settings):
        specs = _specs(fast_settings)
        injector = FaultInjector.from_spec("kill@0").resolve(specs)
        assert injector.kills(specs[0].fingerprint(), 0)
        assert not injector.kills(specs[0].fingerprint(), 1)
        assert not injector.kills(specs[1].fingerprint(), 0)

    def test_torn_write_counts_per_fingerprint(self, fast_settings):
        specs = _specs(fast_settings)
        injector = FaultInjector.from_spec("torn@0").resolve(specs)
        fingerprint = specs[0].fingerprint()
        # The first write tears; the retried write lands clean.
        assert injector.tear_next_write(fingerprint)
        assert not injector.tear_next_write(fingerprint)
        # Undirected jobs never tear.
        assert not injector.tear_next_write(specs[1].fingerprint())

    def test_torn_attempt_selects_which_write_tears(self, fast_settings):
        specs = _specs(fast_settings)
        injector = FaultInjector.from_spec("torn@0:1").resolve(specs)
        fingerprint = specs[0].fingerprint()
        assert not injector.tear_next_write(fingerprint)
        assert injector.tear_next_write(fingerprint)
        assert not injector.tear_next_write(fingerprint)

    def test_environment_spec_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "raise@0,kill@1")
        injector = FaultInjector.from_environment()
        assert injector is not None
        assert len(injector.directives) == 2
        monkeypatch.delenv("REPRO_CHAOS")
        assert FaultInjector.from_environment() is None

    def test_process_injector_install_and_clear(self, fast_settings):
        specs = _specs(fast_settings)
        injector = FaultInjector.from_spec("raise@0").resolve(specs)
        assert active_injector() is None
        try:
            init_injector(injector)
            assert active_injector() is injector
        finally:
            init_injector(None)
        assert active_injector() is None


class TestFailureLedger:
    def _record(self, spec: RunSpec) -> FailureRecord:
        try:
            raise InjectedPermanentError("chaos: injected permanent failure")
        except InjectedPermanentError as error:
            return FailureRecord.from_failure(
                spec, spec.fingerprint(), error, attempts=2,
                tracebacks=(record_traceback(error),),
                elapsed_seconds=(0.51234567, 0.25),
            )

    def test_ledger_path_is_a_store_sibling(self, tmp_path):
        path = ledger_path(tmp_path / "artifacts")
        assert path == tmp_path / "artifacts.failures.json"

    def test_round_trip(self, tmp_path, fast_settings):
        spec = _specs(fast_settings)[0]
        ledger = FailureLedger(tmp_path / "store.failures.json")
        ledger.record(self._record(spec))
        ledger.save()

        reloaded = FailureLedger(tmp_path / "store.failures.json")
        assert len(reloaded) == 1
        assert spec.fingerprint() in reloaded
        entry = reloaded.entries[spec.fingerprint()]
        assert entry.spec == spec.to_dict()
        assert entry.error_type == "InjectedPermanentError"
        assert entry.attempts == 2
        assert entry.elapsed_seconds == (0.512346, 0.25)  # rounded to 6dp
        assert "InjectedPermanentError" in entry.tracebacks[0]

    def test_format_pin(self, tmp_path, fast_settings):
        """The on-disk layout is part of the public interface: pin it."""
        spec = _specs(fast_settings)[0]
        ledger = FailureLedger(tmp_path / "store.failures.json")
        ledger.record(self._record(spec))
        payload = json.loads(ledger.save().read_text())
        assert payload["format_version"] == LEDGER_FORMAT_VERSION == 1
        assert set(payload) == {"format_version", "failures"}
        entry = payload["failures"][spec.fingerprint()]
        assert set(entry) == {"spec", "error_type", "error", "attempts",
                              "tracebacks", "elapsed_seconds", "quarantined"}
        assert entry["quarantined"] is False

    def test_empty_ledger_removes_the_file(self, tmp_path, fast_settings):
        spec = _specs(fast_settings)[0]
        path = tmp_path / "store.failures.json"
        ledger = FailureLedger(path)
        ledger.record(self._record(spec))
        ledger.save()
        assert path.exists()
        assert ledger.discard(spec.fingerprint())
        assert not ledger.discard(spec.fingerprint())  # already gone
        ledger.save()
        assert not path.exists()

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "store.failures.json"
        path.write_text(json.dumps({"format_version": 999, "failures": {}}))
        with pytest.raises(ConfigurationError):
            FailureLedger(path)

    def test_corrupt_ledger_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "store.failures.json"
        path.write_text("{not json")
        with pytest.warns(UserWarning, match="corrupt failure ledger"):
            ledger = FailureLedger(path)
        assert len(ledger) == 0

    def test_corrupt_entry_skipped_with_warning(self, tmp_path, fast_settings):
        spec = _specs(fast_settings)[0]
        good = self._record(spec)
        payload = {"format_version": LEDGER_FORMAT_VERSION,
                   "failures": {spec.fingerprint(): good.to_dict(),
                                "deadbeef": {"bogus": True}}}
        path = tmp_path / "store.failures.json"
        path.write_text(json.dumps(payload))
        with pytest.warns(UserWarning, match="corrupt ledger entry"):
            ledger = FailureLedger(path)
        assert ledger.fingerprints() == (spec.fingerprint(),)
