"""Tests for repro.data.schema."""

import pytest

from repro.data.schema import (
    Attribute,
    AttributeType,
    Schema,
    bibliographic_schema,
    product_schema,
)
from repro.exceptions import SchemaError


class TestAttribute:
    def test_defaults_to_text(self):
        attribute = Attribute("title")
        assert attribute.kind is AttributeType.TEXT
        assert attribute.weight == 1.0

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_rejects_whitespace_name(self):
        with pytest.raises(SchemaError):
            Attribute("   ")

    def test_rejects_non_positive_weight(self):
        with pytest.raises(SchemaError):
            Attribute("title", weight=0.0)
        with pytest.raises(SchemaError):
            Attribute("title", weight=-1.0)


class TestSchema:
    def test_attribute_names_preserve_order(self):
        schema = Schema.from_names(["b", "a", "c"])
        assert schema.attribute_names == ("b", "a", "c")

    def test_rejects_empty_schema(self):
        with pytest.raises(SchemaError):
            Schema(attributes=())

    def test_rejects_duplicate_attribute_names(self):
        with pytest.raises(SchemaError):
            Schema(attributes=(Attribute("title"), Attribute("title")))

    def test_len_and_iteration(self):
        schema = Schema.from_names(["x", "y"])
        assert len(schema) == 2
        assert [attribute.name for attribute in schema] == ["x", "y"]

    def test_contains(self):
        schema = Schema.from_names(["title", "price"])
        assert "title" in schema
        assert "brand" not in schema

    def test_attribute_lookup(self):
        schema = Schema.from_names(["title", "price"],
                                   kinds={"price": AttributeType.NUMERIC})
        assert schema.attribute("price").kind is AttributeType.NUMERIC

    def test_attribute_lookup_missing_raises(self):
        schema = Schema.from_names(["title"])
        with pytest.raises(SchemaError):
            schema.attribute("brand")

    def test_validate_values_accepts_known_attributes(self):
        schema = Schema.from_names(["title", "price"])
        schema.validate_values({"title": "a", "price": "1"})

    def test_validate_values_rejects_unknown_attributes(self):
        schema = Schema.from_names(["title"])
        with pytest.raises(SchemaError):
            schema.validate_values({"brand": "sony"})

    def test_validate_values_accepts_partial_records(self):
        schema = Schema.from_names(["title", "price"])
        schema.validate_values({"title": "only title"})


class TestConvenienceFactories:
    def test_product_schema_defaults(self):
        schema = product_schema()
        assert schema.attribute_names == ("title", "manufacturer", "price")
        assert schema.attribute("price").kind is AttributeType.NUMERIC

    def test_product_schema_custom_attributes(self):
        schema = product_schema(["title", "brand"])
        assert schema.attribute_names == ("title", "brand")

    def test_bibliographic_schema(self):
        schema = bibliographic_schema()
        assert schema.attribute_names == ("title", "authors", "venue", "year")
        assert schema.attribute("year").kind is AttributeType.NUMERIC
