"""Tests for repro.data.dataset (EMDataset)."""

import numpy as np
import pytest

from repro.data.dataset import EMDataset, build_pairset
from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table
from repro.data.schema import Schema
from repro.data.serialization import SerializationConfig
from repro.exceptions import DatasetError


@pytest.fixture()
def small_dataset() -> EMDataset:
    schema = Schema.from_names(["title"])
    left = Table("left", schema)
    right = Table("right", schema)
    pairs = PairSet()
    for i in range(30):
        left.add(Record(f"l{i}", {"title": f"product {i}"}, entity_id=f"e{i}"))
        right.add(Record(f"r{i}", {"title": f"product {i} deluxe"}, entity_id=f"e{i}"))
        label = 1 if i < 10 else 0
        pairs.add(CandidatePair(f"p{i}", f"l{i}", f"r{i}", label))
    return EMDataset("toy", left, right, pairs, random_state=0)


class TestEMDatasetConstruction:
    def test_requires_pairs(self):
        schema = Schema.from_names(["title"])
        left, right = Table("left", schema), Table("right", schema)
        with pytest.raises(DatasetError):
            EMDataset("empty", left, right, PairSet())

    def test_rejects_dangling_left_reference(self):
        schema = Schema.from_names(["title"])
        left, right = Table("left", schema), Table("right", schema)
        right.add(Record("r0", {"title": "x"}))
        pairs = PairSet([CandidatePair("p0", "missing", "r0", 1)])
        with pytest.raises(DatasetError):
            EMDataset("bad", left, right, pairs)

    def test_rejects_dangling_right_reference(self):
        schema = Schema.from_names(["title"])
        left, right = Table("left", schema), Table("right", schema)
        left.add(Record("l0", {"title": "x"}))
        pairs = PairSet([CandidatePair("p0", "l0", "missing", 1)])
        with pytest.raises(DatasetError):
            EMDataset("bad", left, right, pairs)

    def test_rejects_empty_name(self, small_dataset):
        with pytest.raises(DatasetError):
            EMDataset("", small_dataset.left, small_dataset.right, small_dataset.pairs)


class TestEMDatasetAccess:
    def test_records_for(self, small_dataset):
        pair = small_dataset.pairs[0]
        left, right = small_dataset.records_for(pair)
        assert left.record_id == pair.left_id
        assert right.record_id == pair.right_id

    def test_serialize_contains_both_sides(self, small_dataset):
        text = small_dataset.serialize(small_dataset.pairs[0])
        assert "[SEP]" in text
        assert "product 0" in text

    def test_serialized_pairs_default_all(self, small_dataset):
        assert len(small_dataset.serialized_pairs()) == len(small_dataset.pairs)

    def test_labels_full_and_subset(self, small_dataset):
        labels = small_dataset.labels()
        assert labels.sum() == 10
        subset = small_dataset.labels([0, 1, 29])
        assert list(subset) == [1, 1, 0]

    def test_split_covers_everything(self, small_dataset):
        split = small_dataset.split
        combined = np.concatenate([split.train, split.validation, split.test])
        assert sorted(combined.tolist()) == list(range(30))

    def test_statistics(self, small_dataset):
        stats = small_dataset.statistics()
        assert stats.name == "toy"
        assert stats.num_pairs == 30
        assert stats.num_attributes == 1
        assert 0.0 < stats.positive_rate < 1.0

    def test_statistics_respects_serialization_attributes(self, small_dataset):
        dataset = EMDataset("toy2", small_dataset.left, small_dataset.right,
                            small_dataset.pairs,
                            serialization=SerializationConfig(attributes=("title",)),
                            random_state=0)
        assert dataset.statistics().num_attributes == 1


class TestBuildPairset:
    def test_build_pairset_assigns_ids_and_labels(self):
        pairs = build_pairset([("l0", "r0", 1), ("l1", "r1", 0)])
        assert len(pairs) == 2
        assert pairs[0].label == 1
        assert pairs[1].label == 0
        assert pairs[0].pair_id == "p0"
