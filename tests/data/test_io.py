"""Tests for repro.data.io (CSV / export round trips)."""

import json

import pytest

from repro.data.io import (
    export_dataset,
    read_pairs_csv,
    read_table_csv,
    write_pairs_csv,
    write_serialized_pairs,
    write_table_csv,
)
from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table
from repro.data.schema import Schema
from repro.exceptions import DatasetError


@pytest.fixture()
def schema() -> Schema:
    return Schema.from_names(["title", "price"])


@pytest.fixture()
def table(schema) -> Table:
    table = Table("left", schema)
    table.add(Record("l0", {"title": "sony tv", "price": "100"}, entity_id="e0"))
    table.add(Record("l1", {"title": "lg monitor", "price": ""}))
    return table


class TestTableCSV:
    def test_roundtrip(self, tmp_path, table, schema):
        path = write_table_csv(table, tmp_path / "tableA.csv")
        loaded = read_table_csv(path, schema, name="left")
        assert len(loaded) == 2
        assert loaded["l0"].value("title") == "sony tv"
        assert loaded["l0"].entity_id == "e0"
        assert loaded["l1"].entity_id is None

    def test_missing_file_raises(self, tmp_path, schema):
        with pytest.raises(DatasetError):
            read_table_csv(tmp_path / "nope.csv", schema)

    def test_missing_id_column_raises(self, tmp_path, schema):
        path = tmp_path / "bad.csv"
        path.write_text("title,price\nsony tv,100\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_table_csv(path, schema)


class TestPairsCSV:
    def test_roundtrip_preserves_labels(self, tmp_path):
        pairs = PairSet([
            CandidatePair("p0", "l0", "r0", 1),
            CandidatePair("p1", "l1", "r1", 0),
            CandidatePair("p2", "l2", "r2", None),
        ])
        path = write_pairs_csv(pairs, tmp_path / "pairs.csv")
        loaded = read_pairs_csv(path)
        assert len(loaded) == 3
        assert loaded.by_id("p0").label == 1
        assert loaded.by_id("p1").label == 0
        assert loaded.by_id("p2").label is None

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_pairs_csv(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_pairs_csv(tmp_path / "nope.csv")


class TestDatasetExport:
    def test_export_layout(self, tmp_path, tiny_dataset):
        written = export_dataset(tiny_dataset, tmp_path / "bench")
        assert set(written) == {"tableA", "tableB", "pairs", "split"}
        for path in written.values():
            assert path.exists()
        split = json.loads(written["split"].read_text(encoding="utf-8"))
        assert set(split) == {"train", "validation", "test"}
        assert len(split["train"]) == len(tiny_dataset.train_indices)

    def test_write_serialized_pairs(self, tmp_path, tiny_dataset):
        path = write_serialized_pairs(tiny_dataset, tmp_path / "pairs.txt",
                                      indices=range(5))
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 5
        for line in lines:
            text, label = line.rsplit("\t", 1)
            assert "[SEP]" in text
            assert label in {"0", "1"}
