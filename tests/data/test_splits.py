"""Tests for repro.data.splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import build_pairset
from repro.data.splits import DatasetSplit, SplitRatios, stratified_split
from repro.exceptions import DatasetError


def _make_pairs(num_positive: int, num_negative: int):
    triples = [(f"l{i}", f"r{i}", 1) for i in range(num_positive)]
    triples += [(f"l{i}", f"r{i + num_positive}", 0)
                for i in range(num_positive, num_positive + num_negative)]
    return build_pairset(triples)


class TestSplitRatios:
    def test_fractions_sum_to_one(self):
        ratios = SplitRatios(3, 1, 1)
        assert sum(ratios.fractions()) == pytest.approx(1.0)

    def test_default_is_three_one_one(self):
        ratios = SplitRatios()
        assert ratios.fractions() == pytest.approx((0.6, 0.2, 0.2))

    def test_negative_ratio_rejected(self):
        with pytest.raises(DatasetError):
            SplitRatios(train=-1.0)

    def test_zero_train_rejected(self):
        with pytest.raises(DatasetError):
            SplitRatios(train=0.0)


class TestDatasetSplit:
    def test_overlapping_parts_rejected(self):
        with pytest.raises(DatasetError):
            DatasetSplit(train=np.array([0, 1]), validation=np.array([1]),
                         test=np.array([2]))

    def test_sizes(self):
        split = DatasetSplit(train=np.array([0, 1, 2]), validation=np.array([3]),
                             test=np.array([4, 5]))
        assert split.sizes == (3, 1, 2)


class TestStratifiedSplit:
    def test_partition_is_disjoint_and_complete(self):
        pairs = _make_pairs(20, 80)
        split = stratified_split(pairs, random_state=0)
        everything = np.concatenate([split.train, split.validation, split.test])
        assert sorted(everything.tolist()) == list(range(100))

    def test_ratios_respected(self):
        pairs = _make_pairs(50, 200)
        split = stratified_split(pairs, SplitRatios(3, 1, 1), random_state=0)
        assert split.sizes[0] == pytest.approx(150, abs=3)
        assert split.sizes[1] == pytest.approx(50, abs=3)
        assert split.sizes[2] == pytest.approx(50, abs=3)

    def test_stratification_preserves_positive_rate(self):
        pairs = _make_pairs(30, 270)
        split = stratified_split(pairs, random_state=1)
        labels = pairs.labels()
        overall = labels.mean()
        for part in (split.train, split.validation, split.test):
            assert labels[part].mean() == pytest.approx(overall, abs=0.05)

    def test_unlabeled_pairs_rejected(self):
        pairs = build_pairset([("l0", "r0", 1)])
        pairs.add(type(pairs[0])("pX", "lx", "rx", None))
        with pytest.raises(DatasetError):
            stratified_split(pairs)

    def test_deterministic_given_seed(self):
        pairs = _make_pairs(10, 40)
        split_a = stratified_split(pairs, random_state=42)
        split_b = stratified_split(pairs, random_state=42)
        assert np.array_equal(split_a.train, split_b.train)
        assert np.array_equal(split_a.test, split_b.test)

    def test_different_seeds_differ(self):
        pairs = _make_pairs(10, 90)
        split_a = stratified_split(pairs, random_state=1)
        split_b = stratified_split(pairs, random_state=2)
        assert not np.array_equal(split_a.train, split_b.train)

    @settings(max_examples=25, deadline=None)
    @given(num_positive=st.integers(min_value=5, max_value=40),
           num_negative=st.integers(min_value=5, max_value=120))
    def test_property_partition_always_complete(self, num_positive, num_negative):
        pairs = _make_pairs(num_positive, num_negative)
        split = stratified_split(pairs, random_state=3)
        total = num_positive + num_negative
        everything = np.concatenate([split.train, split.validation, split.test])
        assert len(everything) == total
        assert len(np.unique(everything)) == total
