"""Tests for repro.data.record."""

import pytest

from repro.data.record import Record, Table
from repro.data.schema import Schema
from repro.exceptions import DatasetError


@pytest.fixture()
def schema() -> Schema:
    return Schema.from_names(["title", "brand", "price"])


class TestRecord:
    def test_value_returns_default_for_missing(self):
        record = Record("r1", {"title": "sony tv"})
        assert record.value("brand") == ""
        assert record.value("brand", default="unknown") == "unknown"

    def test_value_stringifies(self):
        record = Record("r1", {"price": 19.99})
        assert record.value("price") == "19.99"

    def test_rejects_empty_id(self):
        with pytest.raises(DatasetError):
            Record("", {"title": "x"})

    def test_non_empty_attributes(self):
        record = Record("r1", {"title": "tv", "brand": "  ", "price": "10"})
        assert set(record.non_empty_attributes()) == {"title", "price"}

    def test_text_concatenation(self):
        record = Record("r1", {"title": "sony tv", "brand": "sony"})
        assert record.text(["title", "brand"]) == "sony tv sony"

    def test_text_skips_empty_values(self):
        record = Record("r1", {"title": "sony tv", "brand": ""})
        assert record.text(["title", "brand"]) == "sony tv"

    def test_values_are_copied(self):
        source = {"title": "tv"}
        record = Record("r1", source)
        source["title"] = "changed"
        assert record.value("title") == "tv"


class TestTable:
    def test_add_and_lookup(self, schema):
        table = Table("left", schema)
        table.add(Record("r1", {"title": "sony tv"}))
        assert len(table) == 1
        assert table["r1"].value("title") == "sony tv"
        assert "r1" in table

    def test_duplicate_id_rejected(self, schema):
        table = Table("left", schema)
        table.add(Record("r1", {"title": "a"}))
        with pytest.raises(DatasetError):
            table.add(Record("r1", {"title": "b"}))

    def test_unknown_attribute_rejected(self, schema):
        table = Table("left", schema)
        with pytest.raises(DatasetError):
            table.add(Record("r1", {"color": "red"}))

    def test_missing_record_raises(self, schema):
        table = Table("left", schema)
        with pytest.raises(DatasetError):
            table["missing"]

    def test_get_returns_default(self, schema):
        table = Table("left", schema)
        assert table.get("missing") is None

    def test_empty_name_rejected(self, schema):
        with pytest.raises(DatasetError):
            Table("", schema)

    def test_record_ids_preserve_insertion_order(self, schema):
        table = Table("left", schema)
        for i in (3, 1, 2):
            table.add(Record(f"r{i}", {"title": str(i)}))
        assert table.record_ids == ("r3", "r1", "r2")

    def test_filter(self, schema):
        table = Table("left", schema)
        table.add(Record("r1", {"title": "tv"}, entity_id="e1"))
        table.add(Record("r2", {"title": "radio"}, entity_id="e2"))
        filtered = table.filter(lambda r: r.value("title") == "tv")
        assert filtered.record_ids == ("r1",)

    def test_entity_ids(self, schema):
        table = Table("left", schema)
        table.add(Record("r1", {"title": "a"}, entity_id="e1"))
        table.add(Record("r2", {"title": "b"}, entity_id="e1"))
        table.add(Record("r3", {"title": "c"}))
        assert table.entity_ids() == {"e1"}

    def test_records_returns_copy(self, schema):
        table = Table("left", schema)
        table.add(Record("r1", {"title": "a"}))
        records = table.records()
        records.clear()
        assert len(table) == 1
