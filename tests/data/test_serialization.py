"""Tests for repro.data.serialization (DITTO-style serialization, Example 3)."""

import pytest

from repro.data.record import Record
from repro.data.schema import Schema
from repro.data.serialization import (
    CLS_TOKEN,
    COL_TOKEN,
    SEP_TOKEN,
    VAL_TOKEN,
    SerializationConfig,
    deserialize_record,
    serialize_pair,
    serialize_record,
    split_pair_serialization,
    truncate_tokens,
)


@pytest.fixture()
def schema() -> Schema:
    return Schema.from_names(["title", "manufacturer", "price"])


@pytest.fixture()
def amazon_record() -> Record:
    return Record("a1", {
        "title": "sims 2 glamour life stuff pack",
        "manufacturer": "aspyr media",
        "price": "24.99",
    })


@pytest.fixture()
def google_record() -> Record:
    return Record("g1", {
        "title": "aspyr media inc sims 2 glamour life stuff pack",
        "manufacturer": "",
        "price": "23.44",
    })


class TestSerializeRecord:
    def test_paper_example_structure(self, schema, amazon_record):
        text = serialize_record(amazon_record, schema)
        assert text.startswith(f"{COL_TOKEN} title {VAL_TOKEN} sims 2 glamour life stuff pack")
        assert f"{COL_TOKEN} manufacturer {VAL_TOKEN} aspyr media" in text
        assert f"{COL_TOKEN} price {VAL_TOKEN} 24.99" in text

    def test_missing_value_serialized_empty(self, schema, google_record):
        text = serialize_record(google_record, schema)
        assert f"{COL_TOKEN} manufacturer {VAL_TOKEN} {COL_TOKEN}" in text

    def test_lowercasing(self, schema):
        record = Record("r", {"title": "SONY Bravia"})
        text = serialize_record(record, schema)
        assert "sony bravia" in text
        assert "SONY" not in text

    def test_lowercasing_can_be_disabled(self, schema):
        record = Record("r", {"title": "SONY"})
        config = SerializationConfig(lowercase=False)
        assert "SONY" in serialize_record(record, schema, config)

    def test_attribute_restriction(self, schema, amazon_record):
        config = SerializationConfig(attributes=("title",))
        text = serialize_record(amazon_record, schema, config)
        assert "manufacturer" not in text
        assert "price" not in text


class TestSerializePair:
    def test_paper_example_full_pair(self, schema, amazon_record, google_record):
        text = serialize_pair(amazon_record, google_record, schema)
        expected = (
            "[CLS] [COL] title [VAL] sims 2 glamour life stuff pack "
            "[COL] manufacturer [VAL] aspyr media [COL] price [VAL] 24.99 "
            "[SEP] [COL] title [VAL] aspyr media inc sims 2 glamour life stuff pack "
            "[COL] manufacturer [VAL] [COL] price [VAL] 23.44"
        )
        assert text == expected

    def test_cls_token_optional(self, schema, amazon_record, google_record):
        config = SerializationConfig(include_cls=False)
        text = serialize_pair(amazon_record, google_record, schema, config=config)
        assert not text.startswith(CLS_TOKEN)
        assert SEP_TOKEN in text

    def test_truncation_to_max_tokens(self, schema):
        long_record = Record("r", {"title": " ".join(["word"] * 600)})
        config = SerializationConfig(max_tokens=50)
        text = serialize_pair(long_record, long_record, schema, config=config)
        assert len(text.split()) == 50

    def test_roundtrip_split(self, schema, amazon_record, google_record):
        text = serialize_pair(amazon_record, google_record, schema)
        left, right = split_pair_serialization(text)
        assert "sims 2 glamour" in left
        assert "aspyr media inc" in right


class TestHelpers:
    def test_truncate_tokens_noop_when_short(self):
        assert truncate_tokens("a b c", 10) == "a b c"

    def test_truncate_tokens_zero(self):
        assert truncate_tokens("a b c", 0) == ""

    def test_deserialize_record_roundtrip(self, schema, amazon_record):
        text = serialize_record(amazon_record, schema)
        values = deserialize_record(text)
        assert values["title"] == "sims 2 glamour life stuff pack"
        assert values["manufacturer"] == "aspyr media"
        assert values["price"] == "24.99"

    def test_deserialize_ignores_garbage(self):
        assert deserialize_record("no tokens here") == {}
