"""Tests for repro.data.pair."""

import numpy as np
import pytest

from repro.data.pair import MATCH, NON_MATCH, CandidatePair, PairSet
from repro.exceptions import DatasetError


class TestCandidatePair:
    def test_key(self):
        pair = CandidatePair("p1", "l1", "r1", MATCH)
        assert pair.key == ("l1", "r1")

    def test_with_label(self):
        pair = CandidatePair("p1", "l1", "r1")
        labeled = pair.with_label(NON_MATCH)
        assert labeled.label == NON_MATCH
        assert pair.label is None

    def test_rejects_invalid_label(self):
        with pytest.raises(DatasetError):
            CandidatePair("p1", "l1", "r1", label=2)

    def test_rejects_empty_pair_id(self):
        with pytest.raises(DatasetError):
            CandidatePair("", "l1", "r1")


@pytest.fixture()
def pairs() -> PairSet:
    return PairSet([
        CandidatePair("p0", "l0", "r0", MATCH),
        CandidatePair("p1", "l1", "r1", NON_MATCH),
        CandidatePair("p2", "l2", "r2", NON_MATCH),
        CandidatePair("p3", "l3", "r3"),
    ])


class TestPairSet:
    def test_len_and_iteration(self, pairs):
        assert len(pairs) == 4
        assert [p.pair_id for p in pairs] == ["p0", "p1", "p2", "p3"]

    def test_positional_and_id_access(self, pairs):
        assert pairs[1].pair_id == "p1"
        assert pairs.by_id("p2").left_id == "l2"
        assert pairs.index_of("p3") == 3

    def test_by_key(self, pairs):
        assert pairs.by_key("l1", "r1").pair_id == "p1"
        with pytest.raises(DatasetError):
            pairs.by_key("l9", "r9")

    def test_duplicate_id_rejected(self, pairs):
        with pytest.raises(DatasetError):
            pairs.add(CandidatePair("p0", "x", "y"))

    def test_duplicate_key_rejected(self, pairs):
        with pytest.raises(DatasetError):
            pairs.add(CandidatePair("p9", "l0", "r0"))

    def test_unknown_id_raises(self, pairs):
        with pytest.raises(DatasetError):
            pairs.by_id("missing")
        with pytest.raises(DatasetError):
            pairs.index_of("missing")

    def test_labels_array(self, pairs):
        labels = pairs.labels()
        assert labels.dtype == np.int64
        assert list(labels) == [1, 0, 0, -1]

    def test_labels_custom_missing(self, pairs):
        assert list(pairs.labels(missing=9)) == [1, 0, 0, 9]

    def test_labeled_fraction(self, pairs):
        assert pairs.labeled_fraction() == pytest.approx(0.75)

    def test_labeled_fraction_empty(self):
        assert PairSet().labeled_fraction() == 0.0

    def test_positive_rate(self, pairs):
        assert pairs.positive_rate() == pytest.approx(1.0 / 3.0)

    def test_positive_rate_no_labels(self):
        unlabeled = PairSet([CandidatePair("p0", "a", "b")])
        assert unlabeled.positive_rate() == 0.0

    def test_subset_preserves_order(self, pairs):
        subset = pairs.subset([2, 0])
        assert [p.pair_id for p in subset] == ["p2", "p0"]

    def test_split_by_label(self, pairs):
        matches, non_matches, unlabeled = pairs.split_by_label()
        assert [p.pair_id for p in matches] == ["p0"]
        assert [p.pair_id for p in non_matches] == ["p1", "p2"]
        assert [p.pair_id for p in unlabeled] == ["p3"]

    def test_pair_ids(self, pairs):
        assert pairs.pair_ids() == ("p0", "p1", "p2", "p3")
