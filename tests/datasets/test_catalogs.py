"""Tests for the catalog generators (products and bibliographic)."""

import numpy as np
import pytest

from repro.datasets.bibliographic import dblp_scholar_catalog
from repro.datasets.products import (
    abt_buy_catalog,
    amazon_google_catalog,
    walmart_amazon_catalog,
    wdc_cameras_catalog,
    wdc_shoes_catalog,
)

ALL_CATALOGS = [
    ("walmart_amazon", walmart_amazon_catalog,
     {"title", "category", "brand", "modelno", "price"}),
    ("amazon_google", amazon_google_catalog, {"title", "manufacturer", "price"}),
    ("abt_buy", abt_buy_catalog, {"name", "description", "price"}),
    ("wdc_cameras", wdc_cameras_catalog, {"title"}),
    ("wdc_shoes", wdc_shoes_catalog, {"title"}),
    ("dblp_scholar", dblp_scholar_catalog, {"title", "authors", "venue", "year"}),
]


@pytest.mark.parametrize("name,catalog,expected_attributes", ALL_CATALOGS)
class TestCatalogContracts:
    def test_produces_requested_count(self, name, catalog, expected_attributes):
        entities = catalog(50, np.random.default_rng(0))
        assert len(entities) == 50

    def test_attributes_match_schema(self, name, catalog, expected_attributes):
        entities = catalog(10, np.random.default_rng(1))
        for entity in entities:
            assert set(entity.values) == expected_attributes

    def test_entity_ids_unique(self, name, catalog, expected_attributes):
        entities = catalog(80, np.random.default_rng(2))
        ids = [entity.entity_id for entity in entities]
        assert len(set(ids)) == len(ids)

    def test_values_non_empty(self, name, catalog, expected_attributes):
        entities = catalog(30, np.random.default_rng(3))
        for entity in entities:
            for value in entity.values.values():
                assert value.strip()

    def test_families_shared_across_entities(self, name, catalog, expected_attributes):
        # Hard negatives require several entities per family.
        entities = catalog(200, np.random.default_rng(4))
        families = {}
        for entity in entities:
            families.setdefault(entity.family, 0)
            families[entity.family] += 1
        assert max(families.values()) >= 2

    def test_deterministic_given_seed(self, name, catalog, expected_attributes):
        first = catalog(20, np.random.default_rng(9))
        second = catalog(20, np.random.default_rng(9))
        assert [e.values for e in first] == [e.values for e in second]


class TestDomainSpecifics:
    def test_abt_buy_descriptions_are_long(self):
        entities = abt_buy_catalog(40, np.random.default_rng(5))
        lengths = [len(entity.values["description"].split()) for entity in entities]
        assert np.mean(lengths) > 15

    def test_wdc_catalogs_are_title_only(self):
        cameras = wdc_cameras_catalog(10, np.random.default_rng(6))
        assert all(set(entity.values) == {"title"} for entity in cameras)

    def test_dblp_years_are_plausible(self):
        entities = dblp_scholar_catalog(60, np.random.default_rng(7))
        years = [int(entity.values["year"]) for entity in entities]
        assert all(1990 <= year <= 2020 for year in years)

    def test_prices_parse_as_floats(self):
        entities = walmart_amazon_catalog(30, np.random.default_rng(8))
        for entity in entities:
            assert float(entity.values["price"]) > 0
