"""Tests for the benchmark registry and the benchmark builder."""

import numpy as np
import pytest

from repro.config import get_scale
from repro.data.pair import MATCH
from repro.datasets.base import BenchmarkSpec, build_benchmark
from repro.datasets.registry import (
    PAPER_STATISTICS,
    available_benchmarks,
    benchmark_spec,
    load_benchmark,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_all_six_paper_benchmarks_available(self):
        assert set(available_benchmarks()) == set(PAPER_STATISTICS)
        assert len(available_benchmarks()) == 6

    def test_spec_lookup_normalizes_names(self):
        assert benchmark_spec("Amazon-Google").name == "amazon_google"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(DatasetError):
            benchmark_spec("imaginary")
        with pytest.raises(DatasetError):
            load_benchmark("imaginary")

    def test_paper_statistics_match_table3(self):
        assert PAPER_STATISTICS["walmart_amazon"].train_size == 6144
        assert PAPER_STATISTICS["amazon_google"].positive_rate == pytest.approx(0.102)
        assert PAPER_STATISTICS["dblp_scholar"].num_attributes == 4
        assert PAPER_STATISTICS["wdc_cameras"].train_size == 4081


class TestBuildBenchmark:
    def test_positive_rate_close_to_paper(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        paper = PAPER_STATISTICS["amazon_google"]
        assert stats.positive_rate == pytest.approx(paper.positive_rate, abs=0.03)

    def test_train_size_scales_with_profile(self):
        scale = get_scale("tiny")
        dataset = load_benchmark("wdc_shoes", scale=scale, random_state=3)
        expected = PAPER_STATISTICS["wdc_shoes"].train_size * scale.size_factor
        assert dataset.statistics().num_train_pairs == pytest.approx(expected, rel=0.4)

    def test_match_pairs_share_entity_ids(self, tiny_dataset):
        for pair in tiny_dataset.pairs:
            left, right = tiny_dataset.records_for(pair)
            if pair.label == MATCH:
                assert left.entity_id == right.entity_id
            else:
                assert left.entity_id != right.entity_id

    def test_deterministic_given_seed(self):
        first = load_benchmark("wdc_cameras", scale="tiny", random_state=21)
        second = load_benchmark("wdc_cameras", scale="tiny", random_state=21)
        assert first.pairs.pair_ids() == second.pairs.pair_ids()
        assert list(first.labels()) == list(second.labels())
        assert first.serialize(first.pairs[0]) == second.serialize(second.pairs[0])

    def test_different_seeds_produce_different_data(self):
        first = load_benchmark("wdc_cameras", scale="tiny", random_state=1)
        second = load_benchmark("wdc_cameras", scale="tiny", random_state=2)
        assert first.serialize(first.pairs[0]) != second.serialize(second.pairs[0])

    def test_wdc_serialization_restricted_to_title(self):
        dataset = load_benchmark("wdc_cameras", scale="tiny", random_state=5)
        text = dataset.serialize(dataset.pairs[0])
        assert "[COL] title" in text
        assert text.count("[COL]") == 2  # one per record side

    def test_invalid_positive_rate_rejected(self):
        spec = benchmark_spec("amazon_google")
        with pytest.raises(DatasetError):
            BenchmarkSpec(
                name=spec.name, schema=spec.schema, catalog=spec.catalog,
                paper_train_size=spec.paper_train_size, positive_rate=1.5,
                left_corruption=spec.left_corruption,
                right_corruption=spec.right_corruption,
            )

    def test_build_benchmark_accepts_scale_name(self):
        spec = benchmark_spec("wdc_shoes")
        dataset = build_benchmark(spec, scale="tiny", random_state=0)
        assert len(dataset.pairs) > 0

    def test_dblp_scholar_has_four_attributes(self):
        dataset = load_benchmark("dblp_scholar", scale="tiny", random_state=1)
        assert dataset.statistics().num_attributes == 4

    def test_hard_negatives_share_vocabulary(self):
        """Non-match pairs drawn within families should overlap lexically."""
        dataset = load_benchmark("wdc_cameras", scale="tiny", random_state=13)
        overlaps = []
        for pair in dataset.pairs:
            if pair.label == MATCH:
                continue
            left, right = dataset.records_for(pair)
            left_tokens = set(left.value("title").split())
            right_tokens = set(right.value("title").split())
            if left_tokens and right_tokens:
                overlaps.append(len(left_tokens & right_tokens) > 0)
        assert np.mean(overlaps) > 0.3
