"""Tests for the pool-skew transforms."""

import numpy as np
import pytest

from repro.datasets.transforms import (
    apply_pool_transform,
    available_pool_transforms,
    positive_starved_pool,
    skewed_cluster_pool,
)
from repro.exceptions import DatasetError


class TestPositiveStarvedPool:
    def test_starves_positives_keeps_negatives(self, tiny_dataset, rng):
        skewed = positive_starved_pool(tiny_dataset, rng,
                                       keep_positive_fraction=0.25)
        original_labels = tiny_dataset.labels(tiny_dataset.train_indices)
        skewed_labels = skewed.labels(skewed.train_indices)
        assert int((skewed_labels == 0).sum()) == int((original_labels == 0).sum())
        assert 2 <= int((skewed_labels == 1).sum()) < int((original_labels == 1).sum())

    def test_validation_and_test_untouched(self, tiny_dataset, rng):
        skewed = positive_starved_pool(tiny_dataset, rng)
        np.testing.assert_array_equal(skewed.validation_indices,
                                      tiny_dataset.validation_indices)
        np.testing.assert_array_equal(skewed.test_indices,
                                      tiny_dataset.test_indices)

    def test_original_dataset_not_mutated(self, tiny_dataset, rng):
        before = tiny_dataset.train_indices.copy()
        positive_starved_pool(tiny_dataset, rng)
        np.testing.assert_array_equal(tiny_dataset.train_indices, before)

    def test_invalid_fraction_rejected(self, tiny_dataset, rng):
        with pytest.raises(DatasetError):
            positive_starved_pool(tiny_dataset, rng, keep_positive_fraction=1.5)


class TestSkewedClusterPool:
    def test_shrinks_pool_to_train_subset(self, tiny_dataset, rng):
        skewed = skewed_cluster_pool(tiny_dataset, rng)
        original = set(int(i) for i in tiny_dataset.train_indices)
        kept = set(int(i) for i in skewed.train_indices)
        assert kept <= original
        assert len(kept) < len(original)

    def test_both_classes_survive(self, tiny_dataset, rng):
        skewed = skewed_cluster_pool(tiny_dataset, rng,
                                     dominant_fraction=0.1,
                                     minority_keep_rate=0.0)
        labels = skewed.labels(skewed.train_indices)
        assert (labels == 1).any() and (labels == 0).any()

    def test_deterministic_under_seed(self, tiny_dataset):
        first = skewed_cluster_pool(tiny_dataset, np.random.default_rng(9))
        second = skewed_cluster_pool(tiny_dataset, np.random.default_rng(9))
        np.testing.assert_array_equal(first.train_indices, second.train_indices)

    def test_invalid_parameters_rejected(self, tiny_dataset, rng):
        with pytest.raises(DatasetError):
            skewed_cluster_pool(tiny_dataset, rng, dominant_fraction=0.0)
        with pytest.raises(DatasetError):
            skewed_cluster_pool(tiny_dataset, rng, minority_keep_rate=2.0)


class TestRegistry:
    def test_available_transforms(self):
        assert set(available_pool_transforms()) == {
            "skewed-cluster", "positive-starved"}

    def test_apply_by_name(self, tiny_dataset, rng):
        skewed = apply_pool_transform("positive-starved", tiny_dataset, rng)
        assert len(skewed.train_indices) < len(tiny_dataset.train_indices)

    def test_unknown_name_rejected(self, tiny_dataset, rng):
        with pytest.raises(DatasetError):
            apply_pool_transform("mystery", tiny_dataset, rng)
