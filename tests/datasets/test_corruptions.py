"""Tests for the corruption pipeline (repro.datasets.corruptions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.corruptions import (
    CLEAN_SOURCE,
    DIRTY_SOURCE,
    CorruptionConfig,
    corrupt_numeric,
    corrupt_text,
    corrupt_values,
    introduce_typo,
)


class TestCorruptionConfig:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            CorruptionConfig(typo_rate=1.5)
        with pytest.raises(ValueError):
            CorruptionConfig(missing_rate=-0.1)
        with pytest.raises(ValueError):
            CorruptionConfig(numeric_noise=-1.0)

    def test_scaled_caps_at_one(self):
        config = CorruptionConfig(typo_rate=0.6).scaled(3.0)
        assert config.typo_rate == 1.0

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            CorruptionConfig().scaled(-1.0)

    def test_profiles_ordered_by_noise(self):
        assert DIRTY_SOURCE.typo_rate > CLEAN_SOURCE.typo_rate
        assert DIRTY_SOURCE.missing_rate > CLEAN_SOURCE.missing_rate


class TestIntroduceTypo:
    def test_empty_token_unchanged(self, rng):
        assert introduce_typo("", rng) == ""

    def test_typo_changes_or_keeps_length_close(self, rng):
        token = "photography"
        for _ in range(50):
            mutated = introduce_typo(token, rng)
            assert abs(len(mutated) - len(token)) <= 1


class TestCorruptText:
    def test_no_noise_keeps_text(self, rng):
        config = CorruptionConfig(typo_rate=0, token_drop_rate=0, token_swap_rate=0,
                                  abbreviation_rate=0, missing_rate=0,
                                  injection_rate=0)
        assert corrupt_text("canon eos rebel", config, rng) == "canon eos rebel"

    def test_missing_rate_one_blanks_value(self, rng):
        config = CorruptionConfig(missing_rate=1.0)
        assert corrupt_text("anything", config, rng) == ""

    def test_abbreviations_applied(self, rng):
        config = CorruptionConfig(abbreviation_rate=1.0, typo_rate=0, token_drop_rate=0,
                                  token_swap_rate=0, missing_rate=0, injection_rate=0)
        assert corrupt_text("acme corporation", config, rng) == "acme corp"

    def test_empty_input_stays_empty(self, rng):
        assert corrupt_text("", DIRTY_SOURCE, rng) == ""

    def test_heavy_drops_keep_at_least_one_token(self, rng):
        config = CorruptionConfig(token_drop_rate=1.0, missing_rate=0.0)
        result = corrupt_text("alpha beta gamma", config, rng)
        assert result != ""

    @settings(max_examples=30, deadline=None)
    @given(text=st.text(alphabet="abcdefgh ", min_size=1, max_size=40),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_property_deterministic_given_seed(self, text, seed):
        config = DIRTY_SOURCE
        first = corrupt_text(text, config, np.random.default_rng(seed))
        second = corrupt_text(text, config, np.random.default_rng(seed))
        assert first == second


class TestCorruptNumeric:
    def test_noise_within_bounds(self, rng):
        config = CorruptionConfig(numeric_noise=0.1, missing_rate=0.0)
        for _ in range(20):
            value = float(corrupt_numeric("100.0", config, rng))
            assert 85.0 <= value <= 115.0

    def test_zero_noise_keeps_value(self, rng):
        config = CorruptionConfig(numeric_noise=0.0, missing_rate=0.0)
        assert corrupt_numeric("42.50", config, rng) == "42.50"

    def test_non_numeric_falls_back_to_text(self, rng):
        config = CorruptionConfig(numeric_noise=0.1, missing_rate=0.0, typo_rate=0.0,
                                  token_drop_rate=0.0, token_swap_rate=0.0,
                                  abbreviation_rate=0.0, injection_rate=0.0)
        assert corrupt_numeric("n/a", config, rng) == "n/a"

    def test_empty_value_unchanged(self, rng):
        assert corrupt_numeric("", DIRTY_SOURCE, rng) == ""


class TestCorruptValues:
    def test_all_attributes_processed(self, rng):
        values = {"title": "canon camera", "price": "250.00"}
        result = corrupt_values(values, CLEAN_SOURCE, rng, numeric_attributes=("price",))
        assert set(result) == {"title", "price"}

    def test_accepts_seed_instead_of_generator(self):
        values = {"title": "canon camera"}
        first = corrupt_values(values, DIRTY_SOURCE, 5)
        second = corrupt_values(values, DIRTY_SOURCE, 5)
        assert first == second
