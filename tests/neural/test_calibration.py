"""Tests for repro.neural.calibration."""

import numpy as np
import pytest

from repro.neural.calibration import (
    TemperatureScaler,
    expected_calibration_error,
    logit,
    sharpen_probabilities,
)


class TestLogitAndSharpen:
    def test_logit_inverts_sigmoid(self):
        probabilities = np.array([0.1, 0.5, 0.9])
        recovered = 1.0 / (1.0 + np.exp(-logit(probabilities)))
        assert np.allclose(recovered, probabilities, atol=1e-9)

    def test_sharpen_pushes_to_extremes(self):
        probabilities = np.array([0.3, 0.7])
        sharpened = sharpen_probabilities(probabilities, temperature=0.25)
        assert sharpened[0] < 0.3
        assert sharpened[1] > 0.7

    def test_sharpen_identity_at_temperature_one(self):
        probabilities = np.array([0.2, 0.8])
        assert np.allclose(sharpen_probabilities(probabilities, 1.0), probabilities)

    def test_sharpen_preserves_half(self):
        assert sharpen_probabilities(np.array([0.5]), 0.1)[0] == pytest.approx(0.5)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            sharpen_probabilities(np.array([0.5]), 0.0)

    def test_dichotomous_confidence_emerges(self):
        """Sharpening produces the near-0/1 confidences Section 3.5.1 describes."""
        rng = np.random.default_rng(0)
        probabilities = rng.uniform(0.2, 0.8, size=500)
        sharpened = sharpen_probabilities(probabilities, temperature=0.2)
        extreme_fraction = np.mean((sharpened < 0.05) | (sharpened > 0.95))
        assert extreme_fraction > 0.5


class TestExpectedCalibrationError:
    def test_perfectly_calibrated_predictions(self):
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        probabilities = np.array([0.99, 0.01, 0.98, 0.02])
        assert expected_calibration_error(probabilities, labels) < 0.05

    def test_overconfident_predictions_have_high_ece(self):
        rng = np.random.default_rng(1)
        labels = (rng.random(400) < 0.5).astype(float)
        probabilities = np.where(labels > 0.5, 0.99, 0.99)  # always confident "match"
        assert expected_calibration_error(probabilities, labels) > 0.3

    def test_empty_input(self):
        assert expected_calibration_error(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.zeros(3), np.zeros(2))


class TestTemperatureScaler:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            TemperatureScaler().transform(np.array([0.5]))

    def test_recovers_sharpening_temperature(self):
        rng = np.random.default_rng(2)
        true_probabilities = rng.uniform(0.05, 0.95, size=2000)
        labels = (rng.random(2000) < true_probabilities).astype(float)
        overconfident = sharpen_probabilities(true_probabilities, temperature=0.5)
        scaler = TemperatureScaler().fit(overconfident, labels)
        # Recalibrating should require a temperature > 1 (softening).
        assert scaler.temperature_ is not None
        assert scaler.temperature_ > 1.0
        recalibrated = scaler.transform(overconfident)
        assert (expected_calibration_error(recalibrated, labels)
                <= expected_calibration_error(overconfident, labels) + 1e-9)

    def test_transform_bounds(self):
        scaler = TemperatureScaler().fit(np.array([0.2, 0.8]), np.array([0.0, 1.0]))
        transformed = scaler.transform(np.array([0.1, 0.9]))
        assert np.all(transformed >= 0.0)
        assert np.all(transformed <= 1.0)
