"""Tests for repro.neural.layers: forward shapes and gradient correctness."""

import numpy as np
import pytest

from repro.neural.activations import relu, sigmoid, softmax, tanh
from repro.neural.layers import Activation, Dropout, LayerNorm, Linear


def numerical_gradient(function, x, epsilon=1e-6):
    """Central-difference numerical gradient of a scalar function."""
    grad = np.zeros_like(x)
    iterator = np.nditer(x, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = x[index]
        x[index] = original + epsilon
        plus = function()
        x[index] = original - epsilon
        minus = function()
        x[index] = original
        grad[index] = (plus - minus) / (2 * epsilon)
        iterator.iternext()
    return grad


class TestActivationFunctions:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), np.array([0.0, 0.0, 2.0]))

    def test_sigmoid_bounds_and_stability(self):
        values = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0, abs=1e-12)

    def test_tanh(self):
        assert tanh(np.array([0.0]))[0] == 0.0

    def test_softmax_sums_to_one(self):
        probabilities = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probabilities.sum() == pytest.approx(1.0)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, random_state=0)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_backward_requires_training_forward(self):
        layer = Linear(4, 3, random_state=0)
        layer.forward(np.ones((2, 4)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 3)))

    def test_gradient_against_numerical(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, random_state=1)
        x = rng.normal(size=(6, 4))
        target_grad = rng.normal(size=(6, 3))

        def loss():
            return float(np.sum(layer.forward(x, training=True) * target_grad))

        layer.forward(x, training=True)
        layer.zero_gradients()
        grad_input = layer.backward(target_grad)

        numerical_weight = numerical_gradient(loss, layer.parameters["weight"])
        numerical_bias = numerical_gradient(loss, layer.parameters["bias"])
        assert np.allclose(layer.gradients["weight"], numerical_weight, atol=1e-5)
        assert np.allclose(layer.gradients["bias"], numerical_bias, atol=1e-5)

        numerical_input = numerical_gradient(loss, x)
        assert np.allclose(grad_input, numerical_input, atol=1e-5)

    def test_num_parameters(self):
        layer = Linear(4, 3)
        assert layer.num_parameters == 4 * 3 + 3


class TestActivationLayer:
    def test_relu_forward_backward(self):
        layer = Activation("relu")
        x = np.array([[-1.0, 2.0]])
        out = layer.forward(x, training=True)
        assert np.array_equal(out, np.array([[0.0, 2.0]]))
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad, np.array([[0.0, 1.0]]))

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            Activation("swish")

    def test_backward_requires_training(self):
        layer = Activation("relu")
        layer.forward(np.ones((1, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))


class TestDropout:
    def test_inference_is_identity(self):
        layer = Dropout(0.5, random_state=0)
        x = np.ones((4, 8))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_training_scales_kept_units(self):
        layer = Dropout(0.5, random_state=0)
        x = np.ones((200, 50))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        # Roughly half the units survive.
        assert 0.35 < (out > 0).mean() < 0.65

    def test_backward_applies_same_mask(self):
        layer = Dropout(0.5, random_state=0)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad > 0, out > 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_zero_rate_is_identity_in_training(self):
        layer = Dropout(0.0)
        x = np.ones((2, 3))
        assert np.array_equal(layer.forward(x, training=True), x)


class TestLayerNorm:
    def test_output_is_normalized(self):
        layer = LayerNorm(8)
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8))
        out = layer.forward(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradient_against_numerical(self):
        rng = np.random.default_rng(1)
        layer = LayerNorm(5)
        x = rng.normal(size=(3, 5))
        target = rng.normal(size=(3, 5))

        def loss():
            return float(np.sum(layer.forward(x, training=True) * target))

        layer.forward(x, training=True)
        layer.zero_gradients()
        grad_input = layer.backward(target)
        numerical_input = numerical_gradient(loss, x)
        assert np.allclose(grad_input, numerical_input, atol=1e-5)
        numerical_gamma = numerical_gradient(loss, layer.parameters["gamma"])
        assert np.allclose(layer.gradients["gamma"], numerical_gamma, atol=1e-5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LayerNorm(0)
