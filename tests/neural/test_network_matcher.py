"""Tests for the feed-forward network, the pair featurizer, and the matcher."""

import numpy as np
import pytest

from repro.data.pair import MATCH
from repro.exceptions import NotFittedError
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer
from repro.neural.matcher import MatcherConfig, NeuralMatcher
from repro.neural.network import FeedForwardNetwork, NetworkConfig


class TestNetworkConfig:
    def test_representation_dim_is_last_hidden(self):
        config = NetworkConfig(input_dim=10, hidden_dims=(32, 16))
        assert config.representation_dim == 16

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            NetworkConfig(input_dim=0)
        with pytest.raises(ValueError):
            NetworkConfig(input_dim=4, hidden_dims=())
        with pytest.raises(ValueError):
            NetworkConfig(input_dim=4, hidden_dims=(8, 0))


class TestFeedForwardNetwork:
    def test_forward_shapes(self):
        network = FeedForwardNetwork(NetworkConfig(input_dim=12, hidden_dims=(16, 8)),
                                     random_state=0)
        logits, representations = network.forward(np.ones((5, 12)))
        assert logits.shape == (5,)
        assert representations.shape == (5, 8)

    def test_num_parameters_positive(self):
        network = FeedForwardNetwork(NetworkConfig(input_dim=12, hidden_dims=(16,)),
                                     random_state=0)
        assert network.num_parameters > 12 * 16

    def test_backward_runs_after_training_forward(self):
        network = FeedForwardNetwork(NetworkConfig(input_dim=6, hidden_dims=(8,)),
                                     random_state=0)
        logits, _ = network.forward(np.ones((4, 6)), training=True)
        network.zero_gradients()
        network.backward(np.ones_like(logits))
        assert any(np.any(layer.gradients.get("weight", 0) != 0)
                   for layer in network.layers if layer.parameters)


class TestPairFeaturizer:
    def test_feature_dim_matches_transform(self, tiny_dataset, small_featurizer_config):
        featurizer = PairFeaturizer(small_featurizer_config)
        features = featurizer.transform(tiny_dataset, indices=range(10))
        assert features.shape == (10, featurizer.feature_dim(tiny_dataset))

    def test_empty_indices(self, tiny_dataset, small_featurizer_config):
        featurizer = PairFeaturizer(small_featurizer_config)
        features = featurizer.transform(tiny_dataset, indices=[])
        assert features.shape[0] == 0

    def test_similarity_only_configuration(self, tiny_dataset):
        featurizer = PairFeaturizer(FeaturizerConfig(include_raw=False,
                                                     include_interactions=False))
        features = featurizer.transform(tiny_dataset, indices=range(5))
        attributes = 3  # amazon_google has 3 attributes
        assert features.shape[1] == featurizer.SIMILARITIES_PER_ATTRIBUTE * attributes
        assert np.all(features >= 0.0)
        assert np.all(features <= 1.0)

    def test_match_pairs_have_higher_similarity_features(self, tiny_dataset):
        featurizer = PairFeaturizer(FeaturizerConfig(include_raw=False,
                                                     include_interactions=False))
        labels = tiny_dataset.labels()
        features = featurizer.transform(tiny_dataset)
        match_mean = features[labels == MATCH].mean()
        non_match_mean = features[labels != MATCH].mean()
        assert match_mean > non_match_mean

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FeaturizerConfig(hash_dim=0)
        with pytest.raises(ValueError):
            FeaturizerConfig(include_raw=False, include_interactions=False,
                             include_similarities=False)

    def test_deterministic(self, tiny_dataset, small_featurizer_config):
        featurizer = PairFeaturizer(small_featurizer_config)
        a = featurizer.transform(tiny_dataset, indices=range(5))
        b = featurizer.transform(tiny_dataset, indices=range(5))
        assert np.array_equal(a, b)


class TestMatcherConfig:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            MatcherConfig(epochs=0)
        with pytest.raises(ValueError):
            MatcherConfig(batch_size=0)
        with pytest.raises(ValueError):
            MatcherConfig(positive_weight=0.0)
        with pytest.raises(ValueError):
            MatcherConfig(confidence_temperature=0.0)


class TestNeuralMatcher:
    def test_requires_fit_before_inference(self):
        matcher = NeuralMatcher(input_dim=8)
        with pytest.raises(NotFittedError):
            matcher.predict_proba(np.ones((2, 8)))
        with pytest.raises(NotFittedError):
            matcher.embed(np.ones((2, 8)))
        assert not matcher.is_fitted

    def test_input_validation(self):
        matcher = NeuralMatcher(input_dim=8, config=MatcherConfig(epochs=1))
        with pytest.raises(ValueError):
            matcher.fit(np.ones((4, 5)), np.ones(4))
        with pytest.raises(ValueError):
            matcher.fit(np.ones((4, 8)), np.ones(3))
        with pytest.raises(ValueError):
            matcher.fit(np.ones((0, 8)), np.ones(0))
        with pytest.raises(ValueError):
            NeuralMatcher(input_dim=0)

    def test_learns_separable_problem(self):
        rng = np.random.default_rng(0)
        n = 200
        x = rng.normal(size=(n, 10))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        config = MatcherConfig(hidden_dims=(16, 8), epochs=20, batch_size=16,
                               learning_rate=5e-3, dropout=0.0, random_state=1)
        matcher = NeuralMatcher(input_dim=10, config=config)
        matcher.fit(x, y)
        accuracy = float(np.mean(matcher.predict(x) == y))
        assert accuracy > 0.9

    def test_fit_on_benchmark_beats_majority_baseline(self, fitted_matcher, tiny_dataset,
                                                      tiny_features):
        test = tiny_dataset.test_indices
        predictions = fitted_matcher.predict(tiny_features[test])
        labels = tiny_dataset.labels(test)
        true_positive = np.sum((predictions == 1) & (labels == 1))
        assert true_positive > 0

    def test_embeddings_have_representation_dim(self, fitted_matcher, tiny_features,
                                                fast_matcher_config):
        representations = fitted_matcher.embed(tiny_features[:7])
        assert representations.shape == (7, fast_matcher_config.hidden_dims[-1])

    def test_predict_with_representations_consistent(self, fitted_matcher, tiny_features):
        probabilities, representations = fitted_matcher.predict_with_representations(
            tiny_features[:9])
        assert probabilities.shape == (9,)
        assert np.allclose(probabilities, fitted_matcher.predict_proba(tiny_features[:9]))
        assert np.allclose(representations, fitted_matcher.embed(tiny_features[:9]))

    def test_probabilities_in_unit_interval(self, fitted_matcher, tiny_features):
        probabilities = fitted_matcher.predict_proba(tiny_features[:20])
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_history_records_validation_f1(self, fitted_matcher, fast_matcher_config):
        history = fitted_matcher.history
        assert history is not None
        assert history.num_epochs == fast_matcher_config.epochs
        assert 0 <= history.best_epoch < fast_matcher_config.epochs

    def test_representations_separate_classes(self, fitted_matcher, tiny_dataset,
                                               tiny_features):
        """The Figure 1 phenomenon: match pairs sit closer to the match centroid."""
        train = tiny_dataset.train_indices
        labels = tiny_dataset.labels(train)
        representations = fitted_matcher.embed(tiny_features[train])
        match_centroid = representations[labels == 1].mean(axis=0)
        non_match_centroid = representations[labels == 0].mean(axis=0)
        match_rows = representations[labels == 1]
        to_match = np.linalg.norm(match_rows - match_centroid, axis=1).mean()
        to_non_match = np.linalg.norm(match_rows - non_match_centroid, axis=1).mean()
        assert to_match < to_non_match

    def test_retraining_is_deterministic_given_seed(self, tiny_dataset, tiny_features,
                                                    fast_matcher_config):
        train = tiny_dataset.train_indices[:60]
        labels = tiny_dataset.labels(train)
        first = NeuralMatcher(tiny_features.shape[1], fast_matcher_config)
        second = NeuralMatcher(tiny_features.shape[1], fast_matcher_config)
        first.fit(tiny_features[train], labels)
        second.fit(tiny_features[train], labels)
        probe = tiny_features[tiny_dataset.test_indices[:10]]
        assert np.allclose(first.predict_proba(probe), second.predict_proba(probe))
