"""Tests for the loss functions and optimizers."""

import numpy as np
import pytest

from repro.neural.layers import Linear
from repro.neural.losses import binary_cross_entropy, binary_cross_entropy_with_logits
from repro.neural.optimizers import SGD, Adam, AdamW


class TestBinaryCrossEntropy:
    def test_perfect_predictions_have_low_loss(self):
        logits = np.array([10.0, -10.0])
        targets = np.array([1.0, 0.0])
        loss, _ = binary_cross_entropy_with_logits(logits, targets)
        assert loss < 1e-3

    def test_wrong_predictions_have_high_loss(self):
        logits = np.array([-10.0, 10.0])
        targets = np.array([1.0, 0.0])
        loss, _ = binary_cross_entropy_with_logits(logits, targets)
        assert loss > 5.0

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=8)
        targets = (rng.random(8) > 0.5).astype(float)
        _, grad = binary_cross_entropy_with_logits(logits, targets)
        epsilon = 1e-6
        for i in range(len(logits)):
            perturbed = logits.copy()
            perturbed[i] += epsilon
            loss_plus, _ = binary_cross_entropy_with_logits(perturbed, targets)
            perturbed[i] -= 2 * epsilon
            loss_minus, _ = binary_cross_entropy_with_logits(perturbed, targets)
            numerical = (loss_plus - loss_minus) / (2 * epsilon)
            assert grad[i] == pytest.approx(numerical, abs=1e-5)

    def test_positive_weight_upweights_positive_errors(self):
        logits = np.array([-2.0])
        targets = np.array([1.0])
        loss_plain, _ = binary_cross_entropy_with_logits(logits, targets, 1.0)
        loss_weighted, _ = binary_cross_entropy_with_logits(logits, targets, 5.0)
        assert loss_weighted == pytest.approx(5.0 * loss_plain)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            binary_cross_entropy_with_logits(np.zeros(3), np.zeros(2))

    def test_probability_version_bounded(self):
        loss = binary_cross_entropy(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        assert loss >= 0.0
        assert np.isfinite(loss)


def _quadratic_problem(optimizer_factory, steps=300):
    """Minimize ||Wx - y||^2 through the Layer/Optimizer interface."""
    rng = np.random.default_rng(0)
    layer = Linear(3, 1, random_state=0)
    x = rng.normal(size=(32, 3))
    true_weights = np.array([[1.0], [-2.0], [0.5]])
    y = x @ true_weights
    optimizer = optimizer_factory([layer])
    for _ in range(steps):
        prediction = layer.forward(x, training=True)
        error = prediction - y
        layer.zero_gradients()
        layer.backward(2.0 * error / len(x))
        optimizer.step()
    final_error = float(np.mean((layer.forward(x) - y) ** 2))
    return final_error, layer


class TestOptimizers:
    def test_sgd_reduces_loss(self):
        error, _ = _quadratic_problem(lambda layers: SGD(layers, learning_rate=0.05))
        assert error < 0.01

    def test_sgd_with_momentum_reduces_loss(self):
        error, _ = _quadratic_problem(
            lambda layers: SGD(layers, learning_rate=0.02, momentum=0.9))
        assert error < 0.01

    def test_adam_reduces_loss(self):
        error, _ = _quadratic_problem(lambda layers: Adam(layers, learning_rate=0.05))
        assert error < 0.01

    def test_adamw_reduces_loss(self):
        error, _ = _quadratic_problem(
            lambda layers: AdamW(layers, learning_rate=0.05, weight_decay=0.001))
        assert error < 0.05

    def test_adamw_weight_decay_shrinks_weights(self):
        _, decayed = _quadratic_problem(
            lambda layers: AdamW(layers, learning_rate=0.05, weight_decay=0.2), steps=100)
        _, plain = _quadratic_problem(
            lambda layers: AdamW(layers, learning_rate=0.05, weight_decay=0.0), steps=100)
        assert (np.linalg.norm(decayed.parameters["weight"])
                < np.linalg.norm(plain.parameters["weight"]))

    def test_invalid_hyperparameters(self):
        layer = Linear(2, 1)
        with pytest.raises(ValueError):
            SGD([layer], learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD([layer], momentum=1.5)
        with pytest.raises(ValueError):
            Adam([layer], beta1=1.0)
        with pytest.raises(ValueError):
            AdamW([layer], weight_decay=-0.1)

    def test_zero_gradients_resets(self):
        layer = Linear(2, 1, random_state=0)
        optimizer = SGD([layer], learning_rate=0.1)
        layer.forward(np.ones((1, 2)), training=True)
        layer.backward(np.ones((1, 1)))
        optimizer.zero_gradients()
        assert np.allclose(layer.gradients["weight"], 0.0)
