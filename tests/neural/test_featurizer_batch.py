"""Batch featurization must be bit-identical to the per-pair reference path.

The batched :meth:`PairFeaturizer.transform` deduplicates records, hashes
each unique feature string once, and caches similarity features per unique
value pair — none of which may change a single bit of the output relative to
:meth:`PairFeaturizer.transform_reference`.  The hypothesis suite drives the
comparison across the edge cases that exercise every cache level: empty
values, missing attributes, numeric attributes (including non-numeric
strings hitting the levenshtein fallback), duplicated records, and values
longer than the edit-distance cutoff.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import EMDataset
from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table
from repro.data.schema import Attribute, AttributeType, Schema
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer

_SCHEMA = Schema(
    attributes=(
        Attribute("title", AttributeType.TEXT),
        Attribute("brand", AttributeType.CATEGORICAL),
        Attribute("price", AttributeType.NUMERIC),
    ),
    name="batch_test",
)

# A small pool of deliberately nasty values: empty, whitespace-only,
# punctuation-only (tokenizes to nothing), numeric with separators,
# non-numeric in a numeric slot, and a value past the 48-char edit cutoff.
_VALUES = (
    "", "   ", "##!!", "canon eos rebel", "canon  eos\trebel", "CANON eos",
    "12,399.50", "12399.5", "0", "-3.5", "n/a", "unknown",
    "a very long product title that certainly exceeds the "
    "forty-eight character edit distance cutoff by a lot",
)

_value = st.sampled_from(_VALUES)
_maybe_missing_record = st.fixed_dictionaries(
    {},
    optional={"title": _value, "brand": _value, "price": _value},
)


def _build_dataset(left_values: list[dict], right_values: list[dict],
                   pair_indices: list[tuple[int, int]]) -> EMDataset:
    left = Table("left", _SCHEMA, (
        Record(f"l{i}", values) for i, values in enumerate(left_values)))
    right = Table("right", _SCHEMA, (
        Record(f"r{i}", values) for i, values in enumerate(right_values)))
    pairs = PairSet()
    for serial, (li, ri) in enumerate(pair_indices):
        pairs.add(CandidatePair(f"p{serial}", f"l{li}", f"r{ri}",
                                label=serial % 2))
    return EMDataset("batch_test", left, right, pairs, random_state=0)


@st.composite
def _datasets(draw):
    # Few records + more pairs than records ⇒ heavy record reuse; drawing
    # records from a small value pool ⇒ duplicated records across ids.
    left_values = draw(st.lists(_maybe_missing_record, min_size=2, max_size=5))
    right_values = draw(st.lists(_maybe_missing_record, min_size=2, max_size=5))
    max_pairs = len(left_values) * len(right_values)
    keys = draw(st.lists(
        st.tuples(st.integers(0, len(left_values) - 1),
                  st.integers(0, len(right_values) - 1)),
        min_size=2, max_size=min(8, max_pairs), unique=True))
    return _build_dataset(left_values, right_values, keys)


@settings(max_examples=40, deadline=None)
@given(dataset=_datasets())
def test_property_batch_equals_reference(dataset):
    featurizer = PairFeaturizer(FeaturizerConfig(hash_dim=32))
    reference = featurizer.transform_reference(dataset)
    batch = featurizer.transform(dataset)
    assert reference.dtype == batch.dtype
    assert np.array_equal(reference, batch)


@settings(max_examples=15, deadline=None)
@given(dataset=_datasets(), data=st.data())
def test_property_batch_equals_reference_on_subsets(dataset, data):
    indices = data.draw(st.lists(
        st.integers(0, len(dataset.pairs) - 1), min_size=0, max_size=10))
    featurizer = PairFeaturizer(FeaturizerConfig(hash_dim=16))
    assert np.array_equal(featurizer.transform_reference(dataset, indices),
                          featurizer.transform(dataset, indices))


@pytest.mark.parametrize("config", [
    FeaturizerConfig(hash_dim=24),
    FeaturizerConfig(hash_dim=24, include_raw=False),
    FeaturizerConfig(hash_dim=24, include_interactions=False),
    FeaturizerConfig(hash_dim=24, include_similarities=False),
    FeaturizerConfig(hash_dim=24, include_raw=False, include_interactions=False),
    FeaturizerConfig(hash_dim=24, include_raw=False, include_similarities=False),
    FeaturizerConfig(hash_dim=24, qgram_size=2),
])
def test_every_feature_family_combination_is_identical(config):
    dataset = _build_dataset(
        [{"title": "canon eos", "brand": "canon", "price": "100"},
         {"title": "", "price": "not a number"},
         {"title": "canon eos", "brand": "canon", "price": "100"}],
        [{"title": "canon eos rebel", "brand": "canon", "price": "99.9"},
         {"brand": "  ", "price": ""}],
        [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)])
    featurizer = PairFeaturizer(config)
    reference = featurizer.transform_reference(dataset)
    batch = featurizer.transform(dataset)
    assert np.array_equal(reference, batch)
    assert batch.shape == (6, featurizer.feature_dim(dataset))


def test_duplicated_records_collapse_to_one_hashing_row(tiny_dataset):
    """Batch output is identical no matter how indices repeat or reorder."""
    featurizer = PairFeaturizer(FeaturizerConfig(hash_dim=48))
    indices = [3, 1, 1, 3, 0]
    assert np.array_equal(featurizer.transform(tiny_dataset, indices),
                          featurizer.transform_reference(tiny_dataset, indices))


def test_empty_index_list_keeps_feature_dim(tiny_dataset):
    featurizer = PairFeaturizer(FeaturizerConfig(hash_dim=48))
    batch = featurizer.transform(tiny_dataset, [])
    assert batch.shape == (0, featurizer.feature_dim(tiny_dataset))


def test_serialization_attribute_subset_respected(tiny_dataset):
    """The batch path honours dataset.serialization.attributes like the reference."""
    featurizer = PairFeaturizer(FeaturizerConfig(hash_dim=32))
    assert np.array_equal(featurizer.transform_reference(tiny_dataset),
                          featurizer.transform(tiny_dataset))
