"""Tests for PCA and t-SNE."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.visualization.projection import PCA
from repro.visualization.tsne import TSNE, TSNEConfig, kl_divergence


class TestPCA:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            PCA(2).transform(np.ones((3, 4)))

    def test_output_shape(self, rng):
        data = rng.normal(size=(50, 10))
        projected = PCA(3).fit_transform(data)
        assert projected.shape == (50, 3)

    def test_first_component_captures_dominant_direction(self, rng):
        # Variance concentrated along one axis.
        data = np.zeros((100, 5))
        data[:, 2] = rng.normal(scale=10.0, size=100)
        data += rng.normal(scale=0.1, size=(100, 5))
        pca = PCA(2).fit(data)
        dominant = np.abs(pca.components_[0])
        assert np.argmax(dominant) == 2
        assert pca.explained_variance_ratio_[0] > 0.9

    def test_invalid_num_components(self):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(ValueError):
            PCA(10).fit(np.ones((3, 4)))

    def test_transform_centers_data(self, rng):
        data = rng.normal(loc=100.0, size=(30, 4))
        projected = PCA(2).fit_transform(data)
        assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-8)


class TestTSNE:
    def test_embeds_to_requested_dimensions(self, rng):
        data = rng.normal(size=(40, 10))
        config = TSNEConfig(num_iterations=50, perplexity=10.0)
        embedding = TSNE(config, random_state=0).fit_transform(data)
        assert embedding.shape == (40, 2)
        assert np.all(np.isfinite(embedding))

    def test_separates_two_clusters(self, rng):
        cluster_a = rng.normal(size=(25, 8)) + 8.0
        cluster_b = rng.normal(size=(25, 8)) - 8.0
        data = np.vstack([cluster_a, cluster_b])
        config = TSNEConfig(num_iterations=120, perplexity=10.0)
        embedding = TSNE(config, random_state=0).fit_transform(data)
        centroid_a = embedding[:25].mean(axis=0)
        centroid_b = embedding[25:].mean(axis=0)
        spread_a = np.linalg.norm(embedding[:25] - centroid_a, axis=1).mean()
        between = np.linalg.norm(centroid_a - centroid_b)
        assert between > spread_a

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.ones((3, 4)))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TSNEConfig(perplexity=0.5)
        with pytest.raises(ValueError):
            TSNEConfig(num_iterations=0)
        with pytest.raises(ValueError):
            TSNEConfig(num_components=0)

    def test_kl_divergence_non_negative(self, rng):
        data = rng.normal(size=(20, 6))
        config = TSNEConfig(num_iterations=50, perplexity=5.0)
        embedding = TSNE(config, random_state=1).fit_transform(data)
        assert kl_divergence(data, embedding, perplexity=5.0) >= 0.0
