"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.exceptions import ConfigurationError


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "amazon_google"])
        assert args.selector == "battleship"
        assert args.scale == "tiny"
        assert args.budget == 20

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "not_a_benchmark"])

    def test_unknown_selector_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "amazon_google",
                                       "--selector", "oracle"])

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.jobs == 1
        assert args.store is None
        assert args.figure is None and args.table is None

    def test_experiments_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--figure", "2"])

    def test_experiments_zero_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            main(["experiments", "--jobs", "0", "--datasets", "amazon_google",
                  "--methods", "random"])

    def test_scenarios_defaults(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.jobs == 1
        assert args.store is None
        assert args.scenarios is None
        assert not args.list_scenarios

    def test_scenarios_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            main(["scenarios", "--datasets", "amazon_google",
                  "--scenarios", "mystery", "--methods", "random"])


class TestCommands:
    def test_datasets_command_lists_all_benchmarks(self, capsys):
        exit_code = main(["datasets", "--scale", "tiny"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("walmart_amazon", "amazon_google", "dblp_scholar"):
            assert name in output

    def test_run_command_prints_curve(self, capsys):
        exit_code = main([
            "run", "--dataset", "amazon_google", "--selector", "dal",
            "--scale", "tiny", "--iterations", "1", "--budget", "12",
            "--epochs", "3", "--seed", "3",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "final F1" in output
        assert "amazon_google" in output

    def test_run_command_battleship_without_ws(self, capsys):
        exit_code = main([
            "run", "--dataset", "amazon_google", "--selector", "battleship",
            "--scale", "tiny", "--iterations", "1", "--budget", "12",
            "--epochs", "3", "--no-weak-supervision", "--seed", "4",
        ])
        assert exit_code == 0
        assert "battleship" in capsys.readouterr().out

    def test_full_command(self, capsys):
        exit_code = main(["full", "--dataset", "amazon_google", "--scale", "tiny",
                          "--epochs", "3", "--seed", "5"])
        assert exit_code == 0
        assert "Full D" in capsys.readouterr().out

    def test_experiments_command_resumes_from_store(self, tmp_path, capsys):
        argv = ["experiments", "--scale", "tiny", "--jobs", "1",
                "--store", str(tmp_path / "artifacts"), "--table", "5",
                "--datasets", "amazon_google", "--methods", "random"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Table 5" in first
        assert "1 runs executed, 0 loaded from store" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 runs executed, 1 loaded from store" in second
        # The aggregated table is identical whether computed or resumed.
        assert (first[:first.index("\nengine:")]
                == second[:second.index("\nengine:")])

    def test_experiments_dry_run_plans_without_executing(self, tmp_path,
                                                         capsys):
        store = tmp_path / "artifacts"
        argv = ["experiments", "--scale", "tiny", "--dry-run",
                "--store", str(store), "--table", "5",
                "--datasets", "amazon_google", "--methods", "random"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "dry-run: 1 runs would execute" in out
        # No figures/tables are rendered and nothing is persisted.
        assert "Table 5" not in out
        assert not (store.exists() and list(store.glob("*.json")))

    def test_scenarios_list_command(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        output = capsys.readouterr().out
        for name in ("perfect", "noisy-0.1", "abstaining", "very-dirty",
                     "positive-starved"):
            assert name in output

    def test_scenarios_command_resumes_from_store(self, tmp_path, capsys):
        argv = ["scenarios", "--scale", "tiny", "--jobs", "1",
                "--store", str(tmp_path / "artifacts"),
                "--datasets", "amazon_google",
                "--scenarios", "perfect,noisy-0.1", "--methods", "random"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Robustness" in first
        assert "2 runs executed, 0 loaded from store" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 runs executed, 2 loaded from store" in second
        # The aggregated tables are identical whether computed or resumed.
        assert (first[:first.index("\nengine:")]
                == second[:second.index("\nengine:")])

    def test_export_command(self, tmp_path, capsys):
        exit_code = main(["export", "--dataset", "wdc_cameras", "--scale", "tiny",
                          "--output", str(tmp_path / "out")])
        assert exit_code == 0
        assert (tmp_path / "out" / "tableA.csv").exists()
        assert (tmp_path / "out" / "pairs.csv").exists()
