"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "amazon_google"])
        assert args.selector == "battleship"
        assert args.scale == "tiny"
        assert args.budget == 20

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "not_a_benchmark"])

    def test_unknown_selector_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "amazon_google",
                                       "--selector", "oracle"])


class TestCommands:
    def test_datasets_command_lists_all_benchmarks(self, capsys):
        exit_code = main(["datasets", "--scale", "tiny"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("walmart_amazon", "amazon_google", "dblp_scholar"):
            assert name in output

    def test_run_command_prints_curve(self, capsys):
        exit_code = main([
            "run", "--dataset", "amazon_google", "--selector", "dal",
            "--scale", "tiny", "--iterations", "1", "--budget", "12",
            "--epochs", "3", "--seed", "3",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "final F1" in output
        assert "amazon_google" in output

    def test_run_command_battleship_without_ws(self, capsys):
        exit_code = main([
            "run", "--dataset", "amazon_google", "--selector", "battleship",
            "--scale", "tiny", "--iterations", "1", "--budget", "12",
            "--epochs", "3", "--no-weak-supervision", "--seed", "4",
        ])
        assert exit_code == 0
        assert "battleship" in capsys.readouterr().out

    def test_full_command(self, capsys):
        exit_code = main(["full", "--dataset", "amazon_google", "--scale", "tiny",
                          "--epochs", "3", "--seed", "5"])
        assert exit_code == 0
        assert "Full D" in capsys.readouterr().out

    def test_export_command(self, tmp_path, capsys):
        exit_code = main(["export", "--dataset", "wdc_cameras", "--scale", "tiny",
                          "--output", str(tmp_path / "out")])
        assert exit_code == 0
        assert (tmp_path / "out" / "tableA.csv").exists()
        assert (tmp_path / "out" / "pairs.csv").exists()
