"""Tests for the scenario subsystem (definitions, registry, dataset/oracle building)."""

import numpy as np
import pytest

from repro.active.oracle import (
    AbstainingOracle,
    ClassConditionalNoisyOracle,
    NoisyOracle,
)
from repro.datasets.registry import load_benchmark
from repro.exceptions import ConfigurationError
from repro.scenarios import (
    CorruptionRegime,
    OracleModel,
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
    resolve_scenarios,
)


class TestRegistry:
    def test_builtins_cover_all_three_axes(self):
        names = available_scenarios()
        assert len(names) >= 8
        for expected in ("perfect", "noisy-0.1", "abstaining", "clean",
                         "dirty", "very-dirty", "skewed-cluster",
                         "positive-starved"):
            assert expected in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("mystery")

    def test_resolve_accepts_comma_separated_string(self):
        scenarios = resolve_scenarios("perfect,noisy-0.1, abstaining")
        assert [s.name for s in scenarios] == ["perfect", "noisy-0.1",
                                               "abstaining"]

    def test_resolve_deduplicates_preserving_order(self):
        scenarios = resolve_scenarios(["noisy-0.1", "perfect", "noisy-0.1"])
        assert [s.name for s in scenarios] == ["noisy-0.1", "perfect"]

    def test_resolve_none_returns_everything(self):
        assert len(resolve_scenarios(None)) == len(available_scenarios())

    def test_reregistering_same_definition_is_idempotent(self):
        scenario = get_scenario("perfect")
        assert register_scenario(scenario) is scenario

    def test_conflicting_registration_rejected(self):
        conflicting = Scenario(
            name="perfect",
            oracle=OracleModel(kind="noisy", flip_probability=0.5))
        with pytest.raises(ConfigurationError):
            register_scenario(conflicting)


class TestDefinitions:
    def test_unknown_oracle_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            OracleModel(kind="psychic")

    def test_unknown_pool_skew_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="bad", pool_skew="mystery")

    def test_fingerprint_tracks_behavioural_fields_only(self):
        base = Scenario(name="s", oracle=OracleModel(kind="noisy",
                                                     flip_probability=0.1))
        reworded = Scenario(name="s",
                            oracle=OracleModel(kind="noisy",
                                               flip_probability=0.1),
                            description="different words")
        retuned = Scenario(name="s", oracle=OracleModel(kind="noisy",
                                                        flip_probability=0.2))
        assert base.fingerprint() == reworded.fingerprint()
        assert base.fingerprint() != retuned.fingerprint()

    def test_dataset_fingerprint_ignores_oracle(self):
        noisy = get_scenario("noisy-0.1")
        noisier = get_scenario("noisy-0.3")
        assert noisy.dataset_fingerprint() == noisier.dataset_fingerprint() == ""
        assert get_scenario("very-dirty").dataset_fingerprint() != ""

    def test_dataset_fingerprint_scopes_pool_skew_by_name(self):
        first = Scenario(name="skew-a", pool_skew="positive-starved")
        second = Scenario(name="skew-b", pool_skew="positive-starved")
        assert first.dataset_fingerprint() != second.dataset_fingerprint()

    def test_corruption_regime_apply_overrides(self):
        from repro.datasets.corruptions import CLEAN_SOURCE
        from repro.datasets.registry import benchmark_spec
        spec = benchmark_spec("amazon_google")
        regime = CorruptionRegime(name="clean", left=CLEAN_SOURCE,
                                  right=CLEAN_SOURCE)
        applied = regime.apply_to(spec)
        assert applied.left_corruption == CLEAN_SOURCE
        assert applied.right_corruption == CLEAN_SOURCE
        assert applied.name == spec.name


class TestBuildDataset:
    def test_default_scenario_matches_plain_benchmark(self):
        scenario = get_scenario("perfect")
        built = scenario.build_dataset("amazon_google", scale="tiny",
                                       random_state=7)
        plain = load_benchmark("amazon_google", scale="tiny", random_state=7)
        np.testing.assert_array_equal(built.labels(), plain.labels())
        np.testing.assert_array_equal(built.train_indices, plain.train_indices)
        assert (built.serialized_pairs([0, 1, 2])
                == plain.serialized_pairs([0, 1, 2]))

    def test_corruption_regime_changes_records(self):
        dirty = get_scenario("very-dirty").build_dataset(
            "amazon_google", scale="tiny", random_state=7)
        plain = load_benchmark("amazon_google", scale="tiny", random_state=7)
        assert (dirty.serialized_pairs(range(20))
                != plain.serialized_pairs(range(20)))

    def test_pool_skew_shrinks_train_pool(self):
        skewed = get_scenario("positive-starved").build_dataset(
            "amazon_google", scale="tiny", random_state=7)
        plain = load_benchmark("amazon_google", scale="tiny", random_state=7)
        assert len(skewed.train_indices) < len(plain.train_indices)
        np.testing.assert_array_equal(skewed.test_indices, plain.test_indices)

    def test_build_is_deterministic(self):
        scenario = get_scenario("hostile")
        first = scenario.build_dataset("amazon_google", scale="tiny",
                                       random_state=7)
        second = scenario.build_dataset("amazon_google", scale="tiny",
                                        random_state=7)
        np.testing.assert_array_equal(first.train_indices, second.train_indices)
        assert (first.serialized_pairs(range(10))
                == second.serialized_pairs(range(10)))


class TestBuildOracle:
    def test_perfect_scenario_builds_none(self, tiny_dataset):
        assert get_scenario("perfect").build_oracle(tiny_dataset, 7) is None

    def test_oracle_kinds(self, tiny_dataset):
        assert isinstance(get_scenario("noisy-0.1").build_oracle(tiny_dataset, 7),
                          NoisyOracle)
        assert isinstance(
            get_scenario("over-merging").build_oracle(tiny_dataset, 7),
            ClassConditionalNoisyOracle)
        assert isinstance(
            get_scenario("abstaining").build_oracle(tiny_dataset, 7),
            AbstainingOracle)

    def test_oracle_streams_differ_per_seed_and_scenario(self, tiny_dataset):
        scenario = get_scenario("noisy-0.3")

        def answers(run_seed: int) -> list[int]:
            oracle = scenario.build_oracle(tiny_dataset, run_seed)
            return [oracle.query(i) for i in range(60)]

        assert answers(7) != answers(20)
        assert answers(7) == answers(7)

    def test_noise_level_scalar(self):
        assert get_scenario("perfect").oracle.noise_level == 0.0
        assert get_scenario("noisy-0.3").oracle.noise_level == 0.3
        assert get_scenario("abstaining").oracle.noise_level == 0.2
        assert get_scenario("over-merging").oracle.noise_level == 0.25
