"""Lockfiles: deterministic pins, loud and complete drift reporting."""

from repro.manifests import (
    build_manifest,
    compute_lockfile,
    lockfile_drift,
    lockfile_path,
    parse_manifest_text,
    read_lockfile,
    render_lockfile,
    write_lockfile,
)

MANIFEST = """
[manifest]
name = "locked"

[settings]
scale = "tiny"

[[grid]]
datasets = ["amazon_google"]
methods = ["random"]
scenarios = ["perfect", "noisy-0.1"]
"""


def _lockfile(text=MANIFEST):
    document, settings, specs = build_manifest(parse_manifest_text(text))
    return compute_lockfile(document, settings, specs)


def test_lockfile_render_is_bit_identical_across_runs():
    assert render_lockfile(_lockfile()) == render_lockfile(_lockfile())


def test_lockfile_pins_every_referenced_definition():
    data = _lockfile()
    assert set(data["datasets"]) == {"amazon_google"}
    assert set(data["scenarios"]) == {"perfect", "noisy-0.1"}
    assert data["grid"]["runs"] == 2
    assert set(data["configs"]) == {"featurizer", "matcher"}
    assert data["settings_fingerprint"]


def test_no_drift_against_itself():
    assert lockfile_drift(_lockfile(), _lockfile()) == []


def test_drift_lists_every_changed_component():
    pinned = _lockfile()
    current = _lockfile(MANIFEST.replace(
        'scenarios = ["perfect", "noisy-0.1"]',
        'scenarios = ["perfect", "noisy-0.3"]'))
    drift = lockfile_drift(pinned, current)
    rendered = "\n".join(drift)
    # the removed scenario, the added scenario, the grid, and the manifest
    assert "scenarios.noisy-0.1" in rendered
    assert "scenarios.noisy-0.3" in rendered
    assert "grid.fingerprint" in rendered
    assert "manifest.fingerprint" in rendered
    assert len(drift) >= 4


def test_write_and_read_round_trip(tmp_path):
    manifest_path = tmp_path / "campaign.toml"
    lock = lockfile_path(manifest_path)
    assert lock == tmp_path / "campaign.lock.json"
    data = _lockfile()
    write_lockfile(lock, data)
    assert read_lockfile(lock) == data
    assert lock.read_text(encoding="utf-8") == render_lockfile(data)
