"""The three staged manifest commands, end to end through the CLI."""

import json

import pytest

from repro.cli import main
from repro.manifests import lockfile_path

FAST_MANIFEST = """
[manifest]
name = "cli-smoke"

[settings]
scale = "tiny"
iterations = 1
budget_per_iteration = 8
seed_size = 8

[settings.matcher]
hidden_dims = [24]
epochs = 2
batch_size = 16

[settings.featurizer]
hash_dim = 32

[[grid]]
datasets = ["amazon_google"]
methods = ["random", "dal"]
"""

BAD_MANIFEST = """
[manifest]
name = "broken"

[settings]
scale = "mediun"

[[grid]]
datasets = ["amazon_googel"]
methods = ["battleshp"]
"""


@pytest.fixture()
def manifest_path(tmp_path):
    path = tmp_path / "campaign.toml"
    path.write_text(FAST_MANIFEST, encoding="utf-8")
    return path


def test_lint_ok(manifest_path, capsys):
    assert main(["manifest", "lint", str(manifest_path)]) == 0
    out = capsys.readouterr().out
    assert "OK — 2 runs" in out


def test_lint_reports_every_error_and_exits_nonzero(tmp_path, capsys):
    path = tmp_path / "broken.toml"
    path.write_text(BAD_MANIFEST, encoding="utf-8")
    assert main(["manifest", "lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert "settings.scale" in out
    assert "grid[0].datasets[0]" in out
    assert "grid[0].methods[0]" in out
    assert "3 error(s)" in out
    # lint must not create any dataset/store artifacts next to the manifest
    assert sorted(p.name for p in tmp_path.iterdir()) == ["broken.toml"]


def test_build_dry_run_prints_grid_without_executing(manifest_path, tmp_path,
                                                     capsys):
    store = tmp_path / "store"
    assert main(["manifest", "build", str(manifest_path), "--dry-run",
                 "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "dry-run: 2 runs would execute" in out
    assert out.count("amazon_google") == 2
    # planning must not execute or persist anything
    assert not list(store.glob("*.json"))


def test_build_then_warm_rebuild_executes_zero_runs(manifest_path, tmp_path,
                                                    capsys):
    store = tmp_path / "store"
    assert main(["manifest", "build", str(manifest_path),
                 "--store", str(store)]) == 0
    cold = capsys.readouterr().out
    assert "2 runs executed, 0 loaded from store" in cold
    artifacts = list(store.glob("*.json"))
    assert len(artifacts) == 2
    # every artifact carries the manifest identity
    for artifact in artifacts:
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["manifest"].startswith("cli-smoke@")

    assert main(["manifest", "build", str(manifest_path),
                 "--store", str(store)]) == 0
    warm = capsys.readouterr().out
    assert "0 runs executed, 2 loaded from store" in warm


def test_versions_writes_stable_lockfile_and_detects_drift(manifest_path,
                                                           capsys):
    lock = lockfile_path(manifest_path)
    assert main(["manifest", "versions", str(manifest_path)]) == 0
    first = lock.read_text(encoding="utf-8")
    lock.unlink()
    assert main(["manifest", "versions", str(manifest_path)]) == 0
    assert lock.read_text(encoding="utf-8") == first
    assert main(["manifest", "versions", str(manifest_path)]) == 0
    assert "up to date" in capsys.readouterr().out

    # Drift: the manifest now means something else.
    manifest_path.write_text(FAST_MANIFEST.replace("epochs = 2", "epochs = 3"),
                             encoding="utf-8")
    assert main(["manifest", "versions", str(manifest_path)]) == 1
    out = capsys.readouterr().out
    assert "drift detected" in out
    assert "configs.matcher" in out
    assert "settings_fingerprint" in out
    # --update re-pins
    assert main(["manifest", "versions", str(manifest_path), "--update"]) == 0
    assert main(["manifest", "versions", str(manifest_path)]) == 0


def test_build_refuses_on_lockfile_drift(manifest_path, tmp_path, capsys):
    assert main(["manifest", "versions", str(manifest_path)]) == 0
    capsys.readouterr()
    manifest_path.write_text(FAST_MANIFEST.replace("epochs = 2", "epochs = 3"),
                             encoding="utf-8")
    assert main(["manifest", "build", str(manifest_path), "--dry-run"]) == 1
    out = capsys.readouterr().out
    assert "lockfile drift" in out
    assert "configs.matcher" in out
    # the escape hatch still plans
    assert main(["manifest", "build", str(manifest_path), "--dry-run",
                 "--ignore-lockfile"]) == 0
    assert "dry-run: 2 runs would execute" in capsys.readouterr().out


def test_build_fails_loudly_on_lint_errors(tmp_path, capsys):
    path = tmp_path / "broken.toml"
    path.write_text(BAD_MANIFEST, encoding="utf-8")
    assert main(["manifest", "build", str(path), "--dry-run"]) == 1
    err = capsys.readouterr().err
    assert "failed lint with 3 error(s)" in err
