"""Linting: every error at once, each anchored to a field and a line."""

import pytest

from repro.exceptions import ManifestError
from repro.manifests import lint_manifest, load_manifest, parse_manifest_text

GOOD_MANIFEST = """
[manifest]
name = "good"
description = "a valid manifest"

[settings]
scale = "tiny"
iterations = 1

[settings.matcher]
hidden_dims = [24]
epochs = 2

[[grid]]
datasets = ["amazon_google"]
methods = ["random", "battleship"]
scenarios = ["perfect", "noisy-0.1"]
alphas = [0.25, 0.75]

[[run]]
dataset = "abt_buy"
method = "dal"
seed = 11
"""

# Five distinct, independently locatable mistakes.
BAD_MANIFEST = """
[manifest]
name = "bad"

[settings]
scale = "mediun"

[[grid]]
datasets = ["amazon_googel"]
methods = ["battleshp"]
beta = 2.0

[[run]]
dataset = "abt_buy"
method = "dal"
scenario = "noisy-01"
"""


def test_good_manifest_lints_clean():
    report = lint_manifest(parse_manifest_text(GOOD_MANIFEST))
    assert report.ok
    assert report.document is not None
    assert report.document.name == "good"
    assert report.document.referenced_datasets() == ("amazon_google", "abt_buy")
    assert "noisy-0.1" in report.document.referenced_scenarios()
    # battleship + random share the grid: alphas trigger only a warning
    assert [issue.severity for issue in report.issues] in ([], ["warning"])


def test_all_errors_reported_in_one_pass():
    report = lint_manifest(parse_manifest_text(BAD_MANIFEST))
    assert not report.ok
    fields = [issue.field for issue in report.errors]
    assert "settings.scale" in fields
    assert "grid[0].datasets[0]" in fields
    assert "grid[0].methods[0]" in fields
    assert "grid[0].beta" in fields
    assert "run[0].scenario" in fields
    assert len(report.errors) >= 5


def test_errors_carry_line_numbers_and_suggestions():
    report = lint_manifest(parse_manifest_text(BAD_MANIFEST))
    by_field = {issue.field: issue for issue in report.errors}
    scale = by_field["settings.scale"]
    assert scale.line == 6
    assert "did you mean 'medium'" in scale.message
    dataset = by_field["grid[0].datasets[0]"]
    assert dataset.line == 9
    assert "amazon_google" in dataset.message
    rendered = dataset.render()
    assert rendered.startswith("error: grid[0].datasets[0]:")
    assert "(line 9)" in rendered


def test_alphas_without_battleship_is_an_error():
    text = GOOD_MANIFEST.replace('methods = ["random", "battleship"]',
                                 'methods = ["random"]')
    report = lint_manifest(parse_manifest_text(text))
    assert any(issue.field == "grid[0].alphas" for issue in report.errors)


def test_unknown_config_override_field_is_an_error():
    text = GOOD_MANIFEST.replace("epochs = 2", "epoch = 2")
    report = lint_manifest(parse_manifest_text(text))
    issue = next(i for i in report.errors
                 if i.field == "settings.matcher.epoch")
    assert "did you mean 'epochs'" in issue.message


def test_config_invariants_are_checked():
    text = GOOD_MANIFEST.replace("epochs = 2", "epochs = -1")
    report = lint_manifest(parse_manifest_text(text))
    assert any("epochs" in issue.message for issue in report.errors)


def test_seed_range_requires_start_and_count():
    text = GOOD_MANIFEST + "\n[[grid]]\ndatasets = [\"abt_buy\"]\n" \
                           "methods = [\"random\"]\nseeds = { stride = 5 }\n"
    report = lint_manifest(parse_manifest_text(text))
    messages = [issue.message for issue in report.errors]
    assert any("'start'" in message for message in messages)
    assert any("'count'" in message for message in messages)


def test_blocker_setting_accepted_and_fingerprinted():
    text = GOOD_MANIFEST.replace('scale = "tiny"',
                                 'scale = "tiny"\nblocker = "minhash"')
    report = lint_manifest(parse_manifest_text(text))
    assert report.ok, report.render()
    assert report.document.settings.blocker == "minhash"
    # The blocker participates in the manifest identity...
    baseline = lint_manifest(parse_manifest_text(GOOD_MANIFEST)).document
    assert report.document.fingerprint() != baseline.fingerprint()
    # ...but its absence keeps pre-blocker fingerprints unchanged.
    assert "blocker" not in baseline.settings.to_dict()


def test_unknown_blocker_is_an_error_with_suggestion():
    text = GOOD_MANIFEST.replace('scale = "tiny"',
                                 'scale = "tiny"\nblocker = "minhsh"')
    report = lint_manifest(parse_manifest_text(text))
    issue = next(i for i in report.errors if i.field == "settings.blocker")
    assert "did you mean 'minhash'" in issue.message


def test_empty_manifest_needs_a_grid_or_run():
    report = lint_manifest(parse_manifest_text(
        '[manifest]\nname = "empty"\n'))
    assert any("at least one" in issue.message for issue in report.errors)


def test_missing_manifest_section_is_an_error():
    report = lint_manifest(parse_manifest_text(
        '[[run]]\ndataset = "abt_buy"\nmethod = "dal"\n'))
    assert any(issue.field == "manifest" for issue in report.errors)


def test_unknown_top_level_section_is_an_error():
    report = lint_manifest(parse_manifest_text(
        GOOD_MANIFEST + "\n[grids]\nx = 1\n"))
    assert any(issue.field == "grids" for issue in report.errors)


def test_json_manifests_lint_without_line_numbers():
    report = lint_manifest(parse_manifest_text(
        '{"manifest": {"name": "j"}, '
        '"run": [{"dataset": "nope", "method": "dal"}]}',
        format="json"))
    issue = next(i for i in report.errors if i.field == "run[0].dataset")
    assert issue.line is None


def test_toml_syntax_error_raises_manifest_error(tmp_path):
    path = tmp_path / "broken.toml"
    path.write_text("[manifest\nname =", encoding="utf-8")
    with pytest.raises(ManifestError, match="invalid TOML"):
        load_manifest(path)


def test_missing_file_raises_manifest_error(tmp_path):
    with pytest.raises(ManifestError, match="not found"):
        load_manifest(tmp_path / "absent.toml")


EXECUTION_MANIFEST = """
[manifest]
name = "resilient"

[settings]
scale = "tiny"

[execution]
max_attempts = 4
backoff_base = 0.1
backoff_factor = 2.0
backoff_max = 10.0
jitter = 0.5
timeout = 120.0
keep_going = true

[[run]]
dataset = "amazon_google"
method = "random"
"""


def test_execution_section_lints_clean():
    report = lint_manifest(parse_manifest_text(EXECUTION_MANIFEST))
    assert report.ok
    execution = report.document.execution
    assert execution is not None
    assert execution.max_attempts == 4
    assert execution.timeout == 120.0
    assert execution.keep_going is True


def test_execution_section_is_optional():
    report = lint_manifest(parse_manifest_text(GOOD_MANIFEST))
    assert report.ok
    assert report.document.execution is None


def test_execution_errors_reported_with_locations():
    text = """
[manifest]
name = "broken-execution"

[settings]
scale = "tiny"

[execution]
max_attempts = 0
jitter = 1.5
timeout = 0.0
backoff_factor = 0.5
keep_going = "yes"
bogus = 1

[[run]]
dataset = "amazon_google"
method = "random"
"""
    report = lint_manifest(parse_manifest_text(text))
    assert not report.ok
    fields = {issue.field for issue in report.errors}
    assert {"execution.max_attempts", "execution.jitter",
            "execution.timeout", "execution.backoff_factor",
            "execution.keep_going", "execution.bogus"} <= fields
    located = [issue for issue in report.errors
               if issue.field == "execution.max_attempts"]
    assert located and located[0].line is not None
