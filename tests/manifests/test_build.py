"""Expansion: pure, order-deterministic, fingerprint-deduplicated."""

import pytest

from repro.exceptions import ManifestError
from repro.manifests import (
    build_manifest,
    build_settings,
    expand_run_specs,
    grid_fingerprint,
    lint_manifest,
    parse_manifest_text,
)

MANIFEST = """
[manifest]
name = "build-me"

[settings]
scale = "tiny"
iterations = 1
budget_per_iteration = 8
seed_size = 8

[settings.matcher]
hidden_dims = [24]
epochs = 2

[settings.featurizer]
hash_dim = 32

[[grid]]
datasets = ["amazon_google"]
methods = ["random", "dal"]
scenarios = ["perfect", "noisy-0.1"]

[[grid]]
datasets = ["amazon_google"]
methods = ["battleship"]
alphas = [0.25, 0.75]
seeds = { start = 7, count = 2 }

[[run]]
dataset = "amazon_google"
method = "dal"
scenario = "abstaining"
seed = 11
"""


def _expand(text=MANIFEST):
    report = lint_manifest(parse_manifest_text(text))
    assert report.ok, report.render()
    settings = build_settings(report.document)
    return report.document, settings, expand_run_specs(report.document,
                                                       settings)


def test_expansion_is_deterministic():
    _, _, first = _expand()
    _, _, second = _expand()
    assert [spec.fingerprint() for spec in first] == \
           [spec.fingerprint() for spec in second]
    assert grid_fingerprint(first) == grid_fingerprint(second)


def test_expansion_order_and_count():
    _, _, specs = _expand()
    # grid 1: 1 dataset × 2 methods × 2 scenarios = 4; grid 2: 2 seeds × 2 α
    # = 4; plus one explicit run.
    assert len(specs) == 9
    assert [(s.method, s.scenario, s.seed, s.alpha) for s in specs[:4]] == [
        ("random", "perfect", 7, 0.5), ("random", "noisy-0.1", 7, 0.5),
        ("dal", "perfect", 7, 0.5), ("dal", "noisy-0.1", 7, 0.5)]
    assert [(s.seed, s.alpha) for s in specs[4:8]] == [
        (7, 0.25), (7, 0.75), (20, 0.25), (20, 0.75)]
    assert specs[8].scenario == "abstaining" and specs[8].seed == 11


def test_duplicate_jobs_are_dropped_keeping_first():
    text = MANIFEST + """
[[run]]
dataset = "amazon_google"
method = "random"
scenario = "perfect"
seed = 7
"""
    _, _, specs = _expand(text)
    assert len(specs) == 9  # the explicit duplicate of grid 1's first job


def test_seed_range_matches_harness_stride():
    _, settings, specs = _expand()
    battleship_seeds = sorted({s.seed for s in specs if s.method == "battleship"})
    assert battleship_seeds == [7, 7 + 13]


def test_settings_mapping():
    document, settings, _ = _expand()
    assert settings.scale.name == "tiny"
    assert settings.iterations == 1
    assert settings.budget_per_iteration == 8
    assert settings.seed_size == 8
    assert settings.matcher_config.hidden_dims == (24,)
    assert settings.matcher_config.epochs == 2
    assert settings.featurizer_config.hash_dim == 32
    assert settings.datasets == ("amazon_google",)


def test_settings_defaults_come_from_scale():
    text = MANIFEST.replace("iterations = 1\n", "") \
                   .replace("budget_per_iteration = 8\n", "") \
                   .replace("seed_size = 8\n", "")
    _, settings, _ = _expand(text)
    assert settings.iterations == settings.scale.iterations
    assert settings.budget_per_iteration == settings.scale.budget_per_iteration
    assert settings.seed_size == settings.scale.seed_size


def test_build_manifest_raises_with_every_lint_error():
    bad = MANIFEST.replace('"amazon_google"', '"amazon_googel"') \
                  .replace('scale = "tiny"', 'scale = "tinny"')
    with pytest.raises(ManifestError) as excinfo:
        build_manifest(parse_manifest_text(bad))
    message = str(excinfo.value)
    assert "amazon_googel" in message
    assert "tinny" in message


def test_manifest_id_is_content_addressed():
    document, _, _ = _expand()
    renamed, _, _ = _expand(MANIFEST.replace('"build-me"', '"renamed"'))
    assert document.manifest_id().startswith("build-me@")
    assert document.fingerprint() != renamed.fingerprint()
    same, _, _ = _expand()
    assert document.manifest_id() == same.manifest_id()


EXECUTION_MANIFEST = MANIFEST + """
[execution]
max_attempts = 2
backoff_base = 0.01
keep_going = true
"""


def test_execution_section_builds_a_retry_policy():
    from repro.manifests import build_retry_policy
    report = lint_manifest(parse_manifest_text(EXECUTION_MANIFEST))
    assert report.ok
    policy, keep_going = build_retry_policy(report.document)
    assert policy is not None
    assert policy.max_attempts == 2
    assert policy.backoff_base == 0.01
    # Undeclared fields inherit the policy defaults.
    assert policy.backoff_factor == 2.0
    assert policy.timeout is None
    assert keep_going is True


def test_manifest_without_execution_builds_no_policy():
    from repro.manifests import build_retry_policy
    report = lint_manifest(parse_manifest_text(MANIFEST))
    policy, keep_going = build_retry_policy(report.document)
    assert policy is None
    assert keep_going is False


def test_execution_section_does_not_change_the_grid_fingerprint():
    """How a campaign retries must not invalidate its lockfile pins."""
    plain = lint_manifest(parse_manifest_text(MANIFEST)).document
    resilient = lint_manifest(
        parse_manifest_text(EXECUTION_MANIFEST)).document
    assert grid_fingerprint(expand_run_specs(plain)) == \
        grid_fingerprint(expand_run_specs(resilient))
