"""Tests for the blocking substrate."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.blocking.evaluation import evaluate_blocking
from repro.blocking.minhash_lsh import MinHashLSHBlocker, MinHashSignature
from repro.blocking.qgram_blocking import QGramBlocker
from repro.blocking.sharding import shard_ranges
from repro.blocking.token_blocking import TokenBlocker
from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table
from repro.data.schema import Schema


@pytest.fixture()
def tables():
    schema = Schema.from_names(["title"])
    left = Table("left", schema)
    right = Table("right", schema)
    titles = [
        ("l0", "canon eos rebel t7i camera"),
        ("l1", "nikon coolpix p900 camera"),
        ("l2", "nike air max running shoe"),
    ]
    for record_id, title in titles:
        left.add(Record(record_id, {"title": title}, entity_id=record_id))
    matches = [
        ("r0", "canon eos rebel t7i dslr"),
        ("r1", "nikon coolpix p900 zoom"),
        ("r2", "nike air max 270 shoe"),
    ]
    for record_id, title in matches:
        right.add(Record(record_id, {"title": title}, entity_id=record_id))
    gold = PairSet([
        CandidatePair("p0", "l0", "r0", 1),
        CandidatePair("p1", "l1", "r1", 1),
        CandidatePair("p2", "l2", "r2", 1),
        CandidatePair("p3", "l0", "r1", 0),
    ])
    return left, right, gold


class TestTokenBlocker:
    def test_recalls_all_matches(self, tables):
        left, right, gold = tables
        candidates = TokenBlocker().block(left, right)
        report = evaluate_blocking(candidates, gold, left, right)
        assert report.pair_completeness == 1.0

    def test_does_not_pair_unrelated_records(self, tables):
        left, right, _ = tables
        candidates = TokenBlocker().block(left, right)
        assert ("l2", "r0") not in candidates

    def test_stop_tokens_pruned(self, tables):
        left, right, _ = tables
        # With max_block_size=1, the shared token "camera" (2 left records)
        # no longer produces candidates.
        small = TokenBlocker(max_block_size=1).block(left, right)
        large = TokenBlocker(max_block_size=100).block(left, right)
        assert len(small) <= len(large)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBlocker(max_block_size=0)
        with pytest.raises(ValueError):
            TokenBlocker(min_token_length=0)

    def test_candidate_pairs_materialization(self, tables):
        left, right, gold = tables
        labels = {pair.key: pair.label for pair in gold}
        pairs = TokenBlocker().candidate_pairs(left, right, labels=labels)
        assert len(pairs) > 0
        labeled = [pair for pair in pairs if pair.label is not None]
        assert labeled


class TestQGramBlocker:
    def test_tolerates_typos(self):
        schema = Schema.from_names(["title"])
        left, right = Table("left", schema), Table("right", schema)
        left.add(Record("l0", {"title": "panasonic lumix"}))
        right.add(Record("r0", {"title": "panasonik lumix"}))
        candidates = QGramBlocker(min_shared_qgrams=3).block(left, right)
        assert ("l0", "r0") in candidates

    def test_threshold_filters_weak_overlap(self):
        schema = Schema.from_names(["title"])
        left, right = Table("left", schema), Table("right", schema)
        left.add(Record("l0", {"title": "aaaa"}))
        right.add(Record("r0", {"title": "zzzz"}))
        assert QGramBlocker().block(left, right) == set()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QGramBlocker(q=0)
        with pytest.raises(ValueError):
            QGramBlocker(min_shared_qgrams=0)


class TestMinHash:
    def test_signature_estimates_jaccard(self):
        minhash = MinHashSignature(num_permutations=256, random_state=0)
        set_a = {f"token{i}" for i in range(100)}
        set_b = {f"token{i}" for i in range(50, 150)}
        estimate = MinHashSignature.estimated_jaccard(
            minhash.signature(set_a), minhash.signature(set_b))
        true_jaccard = 50 / 150
        assert estimate == pytest.approx(true_jaccard, abs=0.12)

    def test_empty_set_signature(self):
        minhash = MinHashSignature(num_permutations=16, random_state=0)
        signature = minhash.signature(set())
        assert len(signature) == 16

    def test_mismatched_shapes_raise(self):
        minhash = MinHashSignature(num_permutations=16, random_state=0)
        with pytest.raises(ValueError):
            MinHashSignature.estimated_jaccard(
                minhash.signature({"a"}),
                MinHashSignature(num_permutations=8, random_state=0).signature({"a"}))

    def test_permutation_hash_matches_bigint_arithmetic(self):
        """Regression: coefficients drawn from [0, 2^61) overflowed int64 in
        the outer product, silently computing something other than
        (a*x + b) mod p.  The signature must match exact big-int arithmetic."""
        import zlib

        minhash = MinHashSignature(num_permutations=8, random_state=0)
        x = zlib.crc32("alpha".encode("utf-8")) & ((1 << 32) - 1)
        prime = (1 << 61) - 1
        expected = [((int(a) * x + int(b)) % prime) & ((1 << 32) - 1)
                    for a, b in zip(minhash._a, minhash._b)]
        assert minhash.signature(["alpha"]).tolist() == expected

    def test_signature_values_stay_in_32bit_range(self):
        minhash = MinHashSignature(num_permutations=64, random_state=3)
        signature = minhash.signature({"alpha", "beta", "gamma"})
        assert signature.min() >= 0
        assert signature.max() <= (1 << 32) - 1

    def test_signature_stable_across_hash_randomization(self):
        """Regression: builtin hash() is salted per process (PYTHONHASHSEED),
        which made LSH candidate sets differ between runs; the crc32-based
        feature hash must produce identical signatures regardless of the
        salt."""
        repo_root = Path(__file__).resolve().parents[2]
        code = (
            "from repro.blocking.minhash_lsh import MinHashSignature; "
            "sig = MinHashSignature(16, random_state=0)"
            ".signature(['alpha', 'beta', 'gamma']); "
            "print(','.join(map(str, sig.tolist())))"
        )
        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = (str(repo_root / "src")
                                 + os.pathsep + env.get("PYTHONPATH", ""))
            result = subprocess.run([sys.executable, "-c", code], env=env,
                                    capture_output=True, text=True, check=True)
            outputs.append(result.stdout.strip())
        assert outputs[0] == outputs[1]


class TestSignatureMatrix:
    def test_matches_per_record_signatures(self):
        minhash = MinHashSignature(num_permutations=32, random_state=4)
        feature_sets = [{"alpha", "beta"}, set(), {"gamma"},
                        {"alpha", "beta", "gamma", "delta"}, set()]
        matrix = minhash.signature_matrix(feature_sets)
        expected = np.vstack([minhash.signature(features)
                              for features in feature_sets])
        assert np.array_equal(matrix, expected)

    def test_empty_input(self):
        minhash = MinHashSignature(num_permutations=8, random_state=0)
        assert minhash.signature_matrix([]).shape == (0, 8)

    def test_blocked_pass_matches_single_pass(self, monkeypatch):
        # Force a tiny permutation-block budget so the blocked loop actually
        # splits; results must not depend on the block size.
        import repro.blocking.minhash_lsh as module
        minhash = MinHashSignature(num_permutations=16, random_state=9)
        feature_sets = [{f"tok{i}{j}" for j in range(5)} for i in range(20)]
        full = minhash.signature_matrix(feature_sets)
        monkeypatch.setattr(module, "_BLOCK_CELL_BUDGET", 1)
        blocked = minhash.signature_matrix(feature_sets)
        assert np.array_equal(full, blocked)


class TestMinHashLSHBlocker:
    def test_recalls_near_duplicates(self, tables):
        left, right, gold = tables
        blocker = MinHashLSHBlocker(num_permutations=64, num_bands=32, random_state=0)
        candidates = blocker.block(left, right)
        report = evaluate_blocking(candidates, gold, left, right)
        assert report.pair_completeness >= 2 / 3

    def test_invalid_band_configuration(self):
        with pytest.raises(ValueError):
            MinHashLSHBlocker(num_permutations=10, num_bands=3)
        with pytest.raises(ValueError):
            MinHashLSHBlocker(num_shards=0)
        with pytest.raises(ValueError):
            MinHashLSHBlocker(num_workers=0)

    def test_batched_matches_reference(self, tables):
        left, right, _ = tables
        blocker = MinHashLSHBlocker(num_permutations=32, num_bands=16,
                                    random_state=0)
        assert blocker.block(left, right) == blocker.block_reference(left, right)

    def test_blank_records_are_not_candidates(self):
        """Regression: empty-feature records all carry the sentinel signature
        and used to collide with every other blank record in every band."""
        schema = Schema.from_names(["title"])
        left, right = Table("left", schema), Table("right", schema)
        left.add(Record("l0", {"title": ""}))
        left.add(Record("l1", {"title": "nikon coolpix"}))
        right.add(Record("r0", {"title": ""}))
        right.add(Record("r1", {"title": "   "}))
        blocker = MinHashLSHBlocker(num_permutations=16, num_bands=8,
                                    random_state=0)
        for candidates in (blocker.block(left, right),
                           blocker.block_reference(left, right)):
            assert ("l0", "r0") not in candidates
            assert ("l0", "r1") not in candidates

    def test_sharded_build_is_identical(self, tables):
        left, right, _ = tables
        baseline = MinHashLSHBlocker(num_permutations=32, num_bands=8,
                                     random_state=1).block(left, right)
        for num_shards in (2, 3, 7):
            sharded = MinHashLSHBlocker(num_permutations=32, num_bands=8,
                                        random_state=1,
                                        num_shards=num_shards)
            assert sharded.block(left, right) == baseline

    def test_worker_sharded_build_is_identical(self, tables):
        left, right, _ = tables
        serial = MinHashLSHBlocker(num_permutations=32, num_bands=8,
                                   random_state=1)
        parallel = MinHashLSHBlocker(num_permutations=32, num_bands=8,
                                     random_state=1, num_shards=2,
                                     num_workers=2)
        assert parallel.block(left, right) == serial.block(left, right)


class TestShardRanges:
    def test_covers_range_without_overlap(self):
        for total in (0, 1, 5, 17):
            for num_shards in (1, 2, 3, 17, 40):
                ranges = shard_ranges(total, num_shards)
                covered = [i for start, stop in ranges
                           for i in range(start, stop)]
                assert covered == list(range(total))

    def test_deterministic_and_validated(self):
        assert shard_ranges(10, 3) == shard_ranges(10, 3)
        with pytest.raises(ValueError):
            shard_ranges(10, 0)


class TestBatchedEquivalence:
    def test_token_blocker_matches_reference(self, tables):
        left, right, _ = tables
        for max_block_size in (1, 2, 100):
            blocker = TokenBlocker(max_block_size=max_block_size)
            assert blocker.block(left, right) == \
                blocker.block_reference(left, right)

    def test_qgram_blocker_matches_reference(self, tables):
        left, right, _ = tables
        for threshold in (1, 3, 8):
            blocker = QGramBlocker(min_shared_qgrams=threshold)
            assert blocker.block(left, right) == \
                blocker.block_reference(left, right)

    def test_qgram_sharded_build_is_identical(self, tables):
        left, right, _ = tables
        baseline = QGramBlocker().block(left, right)
        assert QGramBlocker(num_shards=3).block(left, right) == baseline


class TestBlockingReport:
    def test_reduction_ratio(self, tables):
        left, right, gold = tables
        report = evaluate_blocking({("l0", "r0")}, gold, left, right)
        assert report.reduction_ratio == pytest.approx(1.0 - 1.0 / 9.0)
        assert report.num_candidates == 1
        assert report.num_true_matches == 3
        assert report.num_recalled_matches == 1
