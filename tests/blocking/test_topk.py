"""Tests for the top-k candidate router."""

from collections import Counter

import pytest

from repro.blocking.topk import TopKCandidateBlocker
from repro.data.record import Record, Table
from repro.data.schema import Schema

_SCHEMA = Schema.from_names(["title"])


def _table(name, titles):
    table = Table(name, _SCHEMA)
    for i, title in enumerate(titles):
        table.add(Record(f"{name}{i}", {"title": title}))
    return table


@pytest.fixture()
def duplicate_heavy_tables():
    """A hostile pool: most records share near-identical text, so plain
    banding produces a near-quadratic candidate set."""
    titles = ["universal usb c charging cable black 1m"] * 30
    titles += [f"universal usb c charging cable black {i}m" for i in range(5)]
    return _table("l", titles), _table("r", titles)


class TestTopKCandidateBlocker:
    def test_bounds_duplicate_heavy_pools(self, duplicate_heavy_tables):
        left, right = duplicate_heavy_tables
        k = 3
        blocker = TopKCandidateBlocker(k=k, num_permutations=32, num_bands=8,
                                       random_state=0)
        pool = blocker.block(left, right)
        per_left = Counter(left_id for left_id, _ in pool)
        assert max(per_left.values()) <= k
        assert len(pool) <= k * len(left)
        # Plain banding on this pool would be near-quadratic.
        unbounded = blocker._blocker.block(left, right)
        assert len(unbounded) > len(pool)

    def test_deterministic_across_calls(self, duplicate_heavy_tables):
        left, right = duplicate_heavy_tables
        blocker = TopKCandidateBlocker(k=2, num_permutations=32, num_bands=8,
                                       random_state=7)
        assert blocker.block(left, right) == blocker.block(left, right)
        rebuilt = TopKCandidateBlocker(k=2, num_permutations=32, num_bands=8,
                                       random_state=7)
        assert rebuilt.block(left, right) == blocker.block(left, right)

    def test_ann_fallback_covers_bandless_records(self):
        """A left record whose tokens collide with nothing in any band must
        still get candidates through the ANN route."""
        left = _table("l", ["zzyzx qwfp arst"])
        right = _table("r", ["nikon coolpix p900", "canon eos rebel"])
        with_fallback = TopKCandidateBlocker(
            k=2, num_permutations=16, num_bands=8, random_state=0)
        without = TopKCandidateBlocker(
            k=2, num_permutations=16, num_bands=8, random_state=0,
            ann_fallback=False)
        assert len(with_fallback.block(left, right)) > 0
        assert without.block(left, right) == set()

    def test_blank_records_stay_out(self):
        left = _table("l", ["", "nikon coolpix"])
        right = _table("r", ["", "nikon coolpix zoom"])
        pool = TopKCandidateBlocker(k=2, num_permutations=16, num_bands=8,
                                    random_state=0).block(left, right)
        assert not any(left_id == "l0" or right_id == "r0"
                       for left_id, right_id in pool)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKCandidateBlocker(k=0)

    def test_block_iter_inherited_contract(self, duplicate_heavy_tables):
        left, right = duplicate_heavy_tables
        blocker = TopKCandidateBlocker(k=2, num_permutations=32, num_bands=8,
                                       random_state=0)
        chunks = list(blocker.block_iter(left, right, chunk_size=5))
        pairs = [pair for chunk in chunks for pair in chunk]
        assert set(pairs) == blocker.block(left, right)
        assert len(pairs) == len(set(pairs))
        assert all(len(chunk) <= 5 for chunk in chunks)
