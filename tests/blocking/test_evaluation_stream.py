"""Stream-vs-set round-trip of the blocking quality metrics."""

import pytest

from repro.blocking import (
    MinHashLSHBlocker,
    TokenBlocker,
    evaluate_blocking,
    evaluate_blocking_stream,
)


@pytest.mark.parametrize("make_blocker", [
    lambda: TokenBlocker(),
    lambda: MinHashLSHBlocker(num_permutations=64, num_bands=32,
                              random_state=0),
], ids=["token", "minhash"])
def test_stream_report_matches_set_report(make_blocker, tiny_dataset):
    """On a corrupted benchmark pool the streamed evaluation must reproduce
    the materialized report exactly — same recall, same reduction ratio."""
    left, right = tiny_dataset.left, tiny_dataset.right
    gold = tiny_dataset.pairs
    blocker = make_blocker()
    full = evaluate_blocking(blocker.block(left, right), gold, left, right)
    streamed = evaluate_blocking_stream(
        blocker.block_iter(left, right, chunk_size=17), gold, left, right)
    assert streamed == full
    assert 0.0 <= streamed.pair_completeness <= 1.0
    assert streamed.reduction_ratio > 0.0


def test_stream_report_on_empty_stream(tiny_dataset):
    left, right = tiny_dataset.left, tiny_dataset.right
    report = evaluate_blocking_stream(iter(()), tiny_dataset.pairs, left, right)
    assert report.num_candidates == 0
    assert report.num_recalled_matches == 0
    assert report.reduction_ratio == 1.0
