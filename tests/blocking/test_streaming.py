"""Tests for the streaming candidate generation contract (block_iter)."""

import pytest

from repro.blocking.minhash_lsh import MinHashLSHBlocker
from repro.blocking.qgram_blocking import QGramBlocker
from repro.blocking.token_blocking import TokenBlocker
from repro.data.record import Record, Table
from repro.data.schema import Schema


def _catalog(name: str, num_records: int, suffix: str) -> Table:
    """A table of templated product titles; record ``i`` of both sides
    shares the distinctive ``model{i}``/``edition{i}`` tokens, so candidate
    sets are large in total but small per left record."""
    schema = Schema.from_names(["title"])
    table = Table(name, schema)
    for i in range(num_records):
        table.add(Record(f"{name}{i}",
                         {"title": f"widget model{i} edition{i} {suffix}"}))
    return table


@pytest.fixture(scope="module")
def stream_tables():
    return (_catalog("l", 300, "pro"), _catalog("r", 300, "plus"))


def _collect(blocker, left, right, chunk_size):
    chunks = list(blocker.block_iter(left, right, chunk_size=chunk_size))
    pairs = [pair for chunk in chunks for pair in chunk]
    return chunks, pairs


@pytest.mark.parametrize("make_blocker", [
    lambda: MinHashLSHBlocker(num_permutations=32, num_bands=8, random_state=0),
    lambda: TokenBlocker(max_block_size=5),
    lambda: QGramBlocker(max_block_size=10),
], ids=["minhash", "token", "qgram"])
class TestBlockIterContract:
    def test_union_equals_block(self, make_blocker, stream_tables):
        left, right = stream_tables
        blocker = make_blocker()
        for chunk_size in (1, 7, 64, 10**6):
            chunks, pairs = _collect(blocker, left, right, chunk_size)
            assert set(pairs) == blocker.block(left, right)
            # No pair repeats across the stream.
            assert len(pairs) == len(set(pairs))
            assert all(len(chunk) <= chunk_size for chunk in chunks)

    def test_peak_buffer_bounded_by_chunk_size(self, make_blocker,
                                               stream_tables):
        """The acceptance bound: streaming must never buffer more than
        ~chunk_size candidates even when the full pair set is much larger."""
        left, right = stream_tables
        blocker = make_blocker()
        chunk_size = 25
        chunks, pairs = _collect(blocker, left, right, chunk_size)
        assert len(pairs) > 4 * chunk_size, "pool too small to exercise bound"
        assert blocker.last_stream_peak <= 2 * chunk_size

    def test_chunk_size_validation(self, make_blocker, stream_tables):
        left, right = stream_tables
        with pytest.raises(ValueError):
            next(make_blocker().block_iter(left, right, chunk_size=0))


class TestDefaultBlockIter:
    def test_materializing_default_still_honors_chunking(self, stream_tables):
        """Blockers without a streaming override (the base-class default)
        chunk the sorted block() output and report an honest peak."""

        class WholeTableBlocker(TokenBlocker):
            block_iter = None  # force the base default

        del WholeTableBlocker.block_iter
        blocker = WholeTableBlocker(max_block_size=5)
        left, right = stream_tables
        # Resolve through the base class explicitly.
        from repro.blocking.base import Blocker
        chunks = list(Blocker.block_iter(blocker, left, right, chunk_size=10))
        pairs = {pair for chunk in chunks for pair in chunk}
        assert pairs == blocker.block(left, right)
        assert all(len(chunk) <= 10 for chunk in chunks)
        assert blocker.last_stream_peak == len(pairs)
