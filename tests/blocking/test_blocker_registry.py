"""Tests for the blocker registry."""

import pytest

from repro.blocking import (
    MinHashLSHBlocker,
    QGramBlocker,
    TokenBlocker,
    TopKCandidateBlocker,
    available_blockers,
    create_blocker,
    register_blocker,
)
from repro.blocking.registry import _BLOCKER_FACTORIES, get_blocker_factory
from repro.exceptions import ConfigurationError


class TestBlockerRegistry:
    def test_builtins_registered(self):
        names = available_blockers()
        for name in ("token", "qgram", "minhash", "minhash-qgram",
                     "topk-minhash"):
            assert name in names

    def test_create_blocker_types(self):
        assert isinstance(create_blocker("token"), TokenBlocker)
        assert isinstance(create_blocker("qgram"), QGramBlocker)
        assert isinstance(create_blocker("minhash"), MinHashLSHBlocker)
        assert isinstance(create_blocker("topk-minhash", k=3),
                          TopKCandidateBlocker)

    def test_minhash_qgram_preset(self):
        blocker = create_blocker("minhash-qgram", random_state=0)
        assert blocker.use_qgrams

    def test_kwargs_forwarded(self):
        blocker = create_blocker("token", max_block_size=7)
        assert blocker.max_block_size == 7

    def test_unknown_name_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            get_blocker_factory("minhsh")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_blocker("token", TokenBlocker)

    def test_replace_registration(self):
        original = _BLOCKER_FACTORIES["token"]
        try:
            register_blocker("token", QGramBlocker, replace=True)
            assert isinstance(create_blocker("token"), QGramBlocker)
        finally:
            register_blocker("token", original, replace=True)
