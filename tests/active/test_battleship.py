"""Tests for the battleship selector (the paper's primary contribution)."""

import numpy as np
import pytest

from repro.active.selectors.base import SelectionContext
from repro.active.selectors.battleship import BattleshipConfig, BattleshipSelector


def make_context(num_pairs=120, num_labeled=20, budget=20, seed=0,
                 iteration=0) -> SelectionContext:
    """Synthetic context: a minority 'match' cluster and a majority cluster.

    Mirrors the entity-matching geometry the selector is designed for: match
    pairs concentrate in one region (~20% of the pool) and are predicted with
    high confidence, non-matches fill the rest.
    """
    rng = np.random.default_rng(seed)
    num_match = num_pairs // 5
    universe = np.arange(num_pairs)
    representations = np.vstack([
        rng.normal(scale=0.5, size=(num_match, 16)) + 4.0,
        rng.normal(scale=0.5, size=(num_pairs - num_match, 16)) - 4.0,
    ])
    probabilities = np.concatenate([
        rng.uniform(0.7, 0.99, size=num_match),
        rng.uniform(0.01, 0.3, size=num_pairs - num_match),
    ])
    labeled_mask = np.zeros(num_pairs, dtype=bool)
    labeled_positions = rng.choice(num_pairs, size=num_labeled, replace=False)
    labeled_mask[labeled_positions] = True
    labels = np.full(num_pairs, -1, dtype=np.int64)
    labels[labeled_mask] = (np.arange(num_pairs) < num_match)[labeled_mask].astype(int)
    return SelectionContext(
        iteration=iteration, budget=budget, universe=universe,
        probabilities=probabilities, representations=representations,
        labeled_mask=labeled_mask, labels=labels, rng=np.random.default_rng(seed + 1),
    )


class TestBattleshipConfig:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BattleshipConfig(alpha=1.5)
        with pytest.raises(ValueError):
            BattleshipConfig(beta=-0.1)
        with pytest.raises(ValueError):
            BattleshipConfig(num_neighbors=0)
        with pytest.raises(ValueError):
            BattleshipConfig(extra_edge_ratio=2.0)

    def test_keyword_construction(self):
        selector = BattleshipSelector(alpha=0.25, beta=0.75)
        assert selector.config.alpha == 0.25
        assert selector.config.beta == 0.75

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(ValueError):
            BattleshipSelector(BattleshipConfig(), alpha=0.3)


class TestBattleshipSelection:
    def test_respects_budget(self):
        context = make_context(budget=15)
        selected = BattleshipSelector(num_neighbors=5).select(context)
        assert len(selected) == 15

    def test_selects_only_pool_pairs(self):
        context = make_context()
        selected = BattleshipSelector(num_neighbors=5).select(context)
        labeled = set(context.universe[context.labeled_positions].tolist())
        assert not set(selected) & labeled

    def test_no_duplicates(self):
        context = make_context(budget=30)
        selected = BattleshipSelector(num_neighbors=5).select(context)
        assert len(set(selected)) == len(selected)

    def test_correspondence_selects_from_both_predicted_classes(self):
        context = make_context(budget=20, num_labeled=0)
        selected = BattleshipSelector(num_neighbors=5).select(context)
        predictions = context.predictions
        chosen_predictions = {int(predictions[context.position_of(i)]) for i in selected}
        assert chosen_predictions == {0, 1}

    def test_early_iterations_favour_predicted_matches(self):
        """The B+ schedule front-loads match-predicted pairs (correspondence)."""
        context = make_context(budget=20, num_labeled=0, iteration=0)
        selected = BattleshipSelector(num_neighbors=5).select(context)
        predictions = context.predictions
        positives = sum(predictions[context.position_of(i)] for i in selected)
        # B+ = 0.8 * 20 = 16 at iteration 0 (the match cluster has 24 members).
        assert positives >= 12

    def test_zero_budget(self):
        context = make_context(budget=0)
        assert BattleshipSelector().select(context) == []

    def test_empty_pool(self):
        context = make_context(num_pairs=20, num_labeled=20)
        assert BattleshipSelector(num_neighbors=3).select(context) == []

    def test_artifacts_cached_per_iteration(self):
        context = make_context()
        selector = BattleshipSelector(num_neighbors=5)
        selector.select(context)
        first = selector._artifacts
        selector.select_weak(context, 10)
        assert selector._artifacts is first

    def test_artifacts_not_reused_across_contexts_with_same_iteration(self):
        """Regression: the cache used to be keyed only on ``context.iteration``,
        so a selector reused across two runs (or datasets) silently served the
        first run's graphs whenever the iteration numbers coincided."""
        selector = BattleshipSelector(num_neighbors=5, random_state=9)
        first_selection = selector.select(make_context(seed=5, iteration=0))
        first_artifacts = selector._artifacts
        second_selection = selector.select(make_context(seed=6, iteration=0))
        assert selector._artifacts is not first_artifacts
        fresh = BattleshipSelector(num_neighbors=5, random_state=9)
        assert second_selection == fresh.select(make_context(seed=6, iteration=0))
        assert first_selection != second_selection

    def test_reset_drops_cached_artifacts(self):
        selector = BattleshipSelector(num_neighbors=5)
        selector.select(make_context())
        assert selector._artifacts is not None
        selector.reset()
        assert selector._artifacts is None
        assert selector._artifacts_context is None

    def test_alpha_changes_selection(self):
        context_a = make_context(seed=2)
        context_b = make_context(seed=2)
        certainty_only = BattleshipSelector(alpha=1.0, num_neighbors=5).select(context_a)
        centrality_only = BattleshipSelector(alpha=0.0, num_neighbors=5).select(context_b)
        assert set(certainty_only) != set(centrality_only)

    def test_correspondence_can_be_disabled(self):
        context = make_context(seed=4)
        selector = BattleshipSelector(BattleshipConfig(use_correspondence=False,
                                                       num_neighbors=5))
        selected = selector.select(context)
        assert len(selected) == context.budget

    def test_deterministic_given_seed(self):
        selector_a = BattleshipSelector(num_neighbors=5, random_state=9)
        selector_b = BattleshipSelector(num_neighbors=5, random_state=9)
        assert (selector_a.select(make_context(seed=5))
                == selector_b.select(make_context(seed=5)))


class TestBattleshipWeakSupervision:
    def test_weak_labels_follow_predictions(self):
        context = make_context(num_labeled=0)
        selector = BattleshipSelector(num_neighbors=5)
        weak = selector.select_weak(context, budget=20)
        assert weak
        predictions = context.predictions
        for index, label in weak.items():
            assert label == int(predictions[context.position_of(index)])

    def test_weak_budget_respected(self):
        context = make_context(num_labeled=0)
        selector = BattleshipSelector(num_neighbors=5)
        weak = selector.select_weak(context, budget=16)
        assert len(weak) <= 16

    def test_weak_selection_prefers_confident_pairs(self):
        context = make_context(num_labeled=0)
        selector = BattleshipSelector(num_neighbors=5)
        selector.select(context)
        artifacts = selector._artifacts
        weak = selector.select_weak(context, budget=10)
        selected_certainty = np.mean([artifacts.certainty[i] for i in weak])
        all_certainty = np.mean(list(artifacts.certainty.values()))
        # Weak labels minimize Eq. 4: their certainty scores are below average.
        assert selected_certainty < all_certainty

    def test_zero_weak_budget(self):
        context = make_context()
        assert BattleshipSelector(num_neighbors=5).select_weak(context, 0) == {}

    def test_weak_and_oracle_selection_overlap_is_allowed_but_distinct_sets_exist(self):
        context = make_context(num_labeled=0, budget=10)
        selector = BattleshipSelector(num_neighbors=5)
        selected = set(selector.select(context))
        weak = set(selector.select_weak(context, budget=10))
        # The strategies target opposite ends of the certainty ranking, so the
        # overlap should be small.
        assert len(selected & weak) <= 3
