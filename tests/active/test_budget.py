"""Tests for budget splitting and distribution (Eq. 2 and the B+ schedule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.active.budget import (
    cap_budgets_by_size,
    distribute_budget,
    positive_budget,
    split_budget,
)
from repro.exceptions import BudgetError


class TestPositiveBudgetSchedule:
    def test_paper_schedule_values(self):
        # B+ = B * max(0.8 - i/20, 0.5) with B = 100 (Section 4.2).
        assert positive_budget(100, 0) == 80
        assert positive_budget(100, 1) == 75
        assert positive_budget(100, 2) == 70
        assert positive_budget(100, 6) == 50
        assert positive_budget(100, 7) == 50  # floor reached
        assert positive_budget(100, 20) == 50

    def test_split_budget_sums_to_total(self):
        for iteration in range(10):
            positive, negative = split_budget(100, iteration)
            assert positive + negative == 100

    def test_schedule_is_non_increasing(self):
        values = [positive_budget(100, i) for i in range(12)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_invalid_arguments(self):
        with pytest.raises(BudgetError):
            positive_budget(-1, 0)
        with pytest.raises(BudgetError):
            positive_budget(100, -1)


class TestDistributeBudget:
    def test_paper_example6(self):
        """Example 6: 3,000 predicted matches in 10 components, B+ = 50."""
        sizes = {}
        for index in range(2):
            sizes[index] = 500
        for index in range(2, 6):
            sizes[index] = 300
        for index in range(6, 10):
            sizes[index] = 200
        shares = distribute_budget(sizes, 50, random_state=0)
        # Base shares before the residue: 8 for the 500s, 5 for the 300s, 3
        # for the 200s; the residue of 2 goes to random components.
        for index in range(2):
            assert shares[index] >= 8
        for index in range(2, 6):
            assert shares[index] >= 5
        for index in range(6, 10):
            assert shares[index] >= 3
        assert sum(shares.values()) == 50

    def test_total_equals_budget(self):
        sizes = {0: 10, 1: 25, 2: 65}
        shares = distribute_budget(sizes, 17, random_state=1)
        assert sum(shares.values()) == 17

    def test_zero_budget(self):
        assert distribute_budget({0: 5, 1: 5}, 0) == {0: 0, 1: 0}

    def test_empty_components(self):
        assert distribute_budget({}, 10) == {}

    def test_all_zero_sizes(self):
        assert distribute_budget({0: 0, 1: 0}, 5) == {0: 0, 1: 0}

    def test_negative_budget_rejected(self):
        with pytest.raises(BudgetError):
            distribute_budget({0: 5}, -1)

    def test_negative_size_rejected(self):
        with pytest.raises(BudgetError):
            distribute_budget({0: -5}, 1)

    def test_proportionality(self):
        sizes = {0: 900, 1: 100}
        shares = distribute_budget(sizes, 100, random_state=3)
        assert shares[0] >= 85
        assert shares[1] >= 10

    @settings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=12),
        budget=st.integers(min_value=0, max_value=200),
    )
    def test_property_total_preserved(self, sizes, budget):
        component_sizes = dict(enumerate(sizes))
        shares = distribute_budget(component_sizes, budget, random_state=0)
        assert sum(shares.values()) == budget
        assert all(share >= 0 for share in shares.values())


class TestCapBudgets:
    def test_caps_at_component_size(self):
        shares = cap_budgets_by_size({0: 10, 1: 2}, {0: 4, 1: 5})
        assert shares == {0: 4, 1: 2}

    def test_missing_component_capped_to_zero(self):
        assert cap_budgets_by_size({0: 3}, {}) == {0: 0}
