"""Tests for the active-learning loop and weak-supervision dispatch."""

import numpy as np
import pytest

from repro.active.loop import ActiveLearningLoop
from repro.active.oracle import PerfectOracle
from repro.active.selectors import BattleshipSelector, EntropySelector, RandomSelector
from repro.active.weak_supervision import WeakSupervisionMode, resolve_mode, select_weak_labels
from repro.exceptions import BudgetError, ConfigurationError
from repro.neural.matcher import MatcherConfig


@pytest.fixture(scope="module")
def loop_matcher_config() -> MatcherConfig:
    return MatcherConfig(hidden_dims=(48, 24), epochs=4, batch_size=16,
                         learning_rate=2e-3, random_state=1)


@pytest.fixture(scope="module")
def quick_loop_result(tiny_dataset, loop_matcher_config, small_featurizer_config):
    loop = ActiveLearningLoop(
        dataset=tiny_dataset,
        selector=EntropySelector(),
        matcher_config=loop_matcher_config,
        featurizer_config=small_featurizer_config,
        iterations=2,
        budget_per_iteration=16,
        seed_size=16,
        random_state=5,
    )
    return loop.run()


class TestWeakSupervisionDispatch:
    def test_resolve_mode(self):
        assert resolve_mode(None) is WeakSupervisionMode.SELECTOR
        assert resolve_mode("off") is WeakSupervisionMode.OFF
        assert resolve_mode("Entropy") is WeakSupervisionMode.ENTROPY
        assert resolve_mode(WeakSupervisionMode.SELECTOR) is WeakSupervisionMode.SELECTOR

    def test_resolve_mode_invalid(self):
        with pytest.raises(ConfigurationError):
            resolve_mode("bogus")

    def test_off_mode_returns_nothing(self):
        result = select_weak_labels(WeakSupervisionMode.OFF, RandomSelector(), None, 10)
        assert result == {}


class TestActiveLearningLoopValidation:
    def test_invalid_iterations(self, tiny_dataset):
        with pytest.raises(BudgetError):
            ActiveLearningLoop(tiny_dataset, RandomSelector(), iterations=-1)

    def test_invalid_budget(self, tiny_dataset):
        with pytest.raises(BudgetError):
            ActiveLearningLoop(tiny_dataset, RandomSelector(), budget_per_iteration=0)


class TestActiveLearningLoopRun:
    def test_records_one_per_training(self, quick_loop_result):
        # iterations + 1 matchers are trained (seed, +B, +2B).
        assert len(quick_loop_result.records) == 3

    def test_labeled_counts_progress_by_budget(self, quick_loop_result):
        counts = [record.num_labeled for record in quick_loop_result.records]
        assert counts == [16, 32, 48]

    def test_f1_recorded_and_bounded(self, quick_loop_result):
        for record in quick_loop_result.records:
            assert 0.0 <= record.f1 <= 1.0
            assert record.test_metrics.num_examples > 0

    def test_weak_labels_recorded_after_first_selection(self, quick_loop_result):
        assert quick_loop_result.records[0].num_weak == 0
        assert quick_loop_result.records[1].num_weak > 0

    def test_learning_curve_matches_records(self, quick_loop_result):
        curve = quick_loop_result.learning_curve()
        assert curve.labeled_counts == [16, 32, 48]
        assert curve.final_f1 == quick_loop_result.records[-1].f1

    def test_as_rows_structure(self, quick_loop_result):
        rows = quick_loop_result.as_rows()
        assert len(rows) == 3
        assert {"dataset", "selector", "iteration", "labeled", "f1"} <= set(rows[0])

    def test_seed_is_class_balanced(self, tiny_dataset, loop_matcher_config,
                                    small_featurizer_config):
        loop = ActiveLearningLoop(
            dataset=tiny_dataset, selector=RandomSelector(),
            matcher_config=loop_matcher_config,
            featurizer_config=small_featurizer_config,
            iterations=0, budget_per_iteration=20, seed_size=20, random_state=3,
        )
        result = loop.run()
        assert result.records[0].num_labeled_positives == 10

    def test_oracle_query_count_matches_budget(self, tiny_dataset, loop_matcher_config,
                                               small_featurizer_config):
        oracle = PerfectOracle(tiny_dataset)
        loop = ActiveLearningLoop(
            dataset=tiny_dataset, selector=RandomSelector(), oracle=oracle,
            matcher_config=loop_matcher_config,
            featurizer_config=small_featurizer_config,
            iterations=2, budget_per_iteration=10, seed_size=10, random_state=4,
        )
        loop.run()
        # Seed (10) + two selection rounds (10 each).
        assert oracle.num_queries == 30

    def test_weak_supervision_off(self, tiny_dataset, loop_matcher_config,
                                  small_featurizer_config):
        loop = ActiveLearningLoop(
            dataset=tiny_dataset, selector=EntropySelector(),
            matcher_config=loop_matcher_config,
            featurizer_config=small_featurizer_config,
            iterations=1, budget_per_iteration=10, seed_size=10,
            weak_supervision=WeakSupervisionMode.OFF, random_state=6,
        )
        result = loop.run()
        assert all(record.num_weak == 0 for record in result.records)

    def test_battleship_loop_runs_end_to_end(self, tiny_dataset, loop_matcher_config,
                                             small_featurizer_config):
        loop = ActiveLearningLoop(
            dataset=tiny_dataset,
            selector=BattleshipSelector(num_neighbors=5),
            matcher_config=loop_matcher_config,
            featurizer_config=small_featurizer_config,
            iterations=2, budget_per_iteration=12, seed_size=12, random_state=8,
        )
        result = loop.run()
        assert len(result.records) == 3
        assert result.records[-1].num_labeled == 36
        assert result.selector_name == "battleship"
        # Selection happened, so selection runtimes are recorded.
        assert any(seconds > 0 for seconds in result.selection_runtimes())

    def test_selection_stops_when_pool_exhausted(self, tiny_dataset, loop_matcher_config,
                                                 small_featurizer_config):
        pool_size = len(tiny_dataset.train_indices)
        loop = ActiveLearningLoop(
            dataset=tiny_dataset, selector=RandomSelector(),
            matcher_config=loop_matcher_config,
            featurizer_config=small_featurizer_config,
            iterations=3, budget_per_iteration=max(pool_size // 2, 1),
            seed_size=10, random_state=9,
        )
        result = loop.run()
        assert result.records[-1].num_labeled <= pool_size
