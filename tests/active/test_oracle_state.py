"""Tests for the labeling oracles and the active-learning state."""

import numpy as np
import pytest

from repro.active.oracle import NoisyOracle, PerfectOracle
from repro.active.state import ActiveLearningState
from repro.exceptions import BudgetError, OracleError


class TestPerfectOracle:
    def test_returns_gold_labels(self, tiny_dataset):
        oracle = PerfectOracle(tiny_dataset)
        labels = tiny_dataset.labels()
        for index in [0, 5, 10]:
            assert oracle.query(index) == labels[index]

    def test_counts_queries(self, tiny_dataset):
        oracle = PerfectOracle(tiny_dataset)
        oracle.query_many([0, 1, 2])
        assert oracle.num_queries == 3

    def test_out_of_range_raises(self, tiny_dataset):
        oracle = PerfectOracle(tiny_dataset)
        with pytest.raises(OracleError):
            oracle.query(len(tiny_dataset.pairs) + 10)

    def test_query_many_returns_mapping(self, tiny_dataset):
        oracle = PerfectOracle(tiny_dataset)
        result = oracle.query_many(np.array([3, 4]))
        assert set(result) == {3, 4}


class TestNoisyOracle:
    def test_zero_noise_equals_perfect(self, tiny_dataset):
        noisy = NoisyOracle(tiny_dataset, flip_probability=0.0, random_state=0)
        perfect = PerfectOracle(tiny_dataset)
        for index in range(20):
            assert noisy.query(index) == perfect.query(index)

    def test_full_noise_flips_everything(self, tiny_dataset):
        noisy = NoisyOracle(tiny_dataset, flip_probability=1.0, random_state=0)
        perfect = PerfectOracle(tiny_dataset)
        for index in range(20):
            assert noisy.query(index) == 1 - perfect.query(index)

    def test_partial_noise_flips_some(self, tiny_dataset):
        noisy = NoisyOracle(tiny_dataset, flip_probability=0.3, random_state=1)
        perfect = PerfectOracle(tiny_dataset)
        labels_noisy = [noisy.query(i) for i in range(100)]
        labels_true = [perfect.query(i) for i in range(100)]
        flips = sum(a != b for a, b in zip(labels_noisy, labels_true))
        assert 10 <= flips <= 55

    def test_invalid_probability(self, tiny_dataset):
        with pytest.raises(OracleError):
            NoisyOracle(tiny_dataset, flip_probability=1.5)


class TestActiveLearningState:
    def test_initial_state(self):
        state = ActiveLearningState(universe=np.arange(10))
        assert state.num_labeled == 0
        assert state.num_pool == 10
        assert len(state.pool_indices) == 10

    def test_add_labels_moves_to_labeled(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.add_labels({2: 1, 5: 0})
        assert state.num_labeled == 2
        assert state.is_labeled(2)
        assert 2 not in state.pool_indices
        assert state.labeled_positives() == [2]
        assert state.labeled_negatives() == [5]

    def test_duplicate_label_rejected(self):
        state = ActiveLearningState(universe=np.arange(5))
        state.add_labels({1: 1})
        with pytest.raises(BudgetError):
            state.add_labels({1: 0})

    def test_label_outside_universe_rejected(self):
        state = ActiveLearningState(universe=np.arange(5))
        with pytest.raises(BudgetError):
            state.add_labels({99: 1})

    def test_invalid_label_value_rejected(self):
        state = ActiveLearningState(universe=np.arange(5))
        with pytest.raises(BudgetError):
            state.add_labels({1: 2})

    def test_weak_labels_do_not_count_as_labeled(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.set_weak_labels({3: 1, 4: 0})
        assert state.num_labeled == 0
        indices, labels = state.training_set()
        assert set(indices.tolist()) == {3, 4}
        assert set(labels.tolist()) == {0, 1}

    def test_weak_labels_replaced_each_iteration(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.set_weak_labels({3: 1})
        state.set_weak_labels({4: 0})
        assert list(state.weak_labels) == [4]

    def test_labeled_overrides_weak(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.set_weak_labels({3: 1})
        state.add_labels({3: 0})
        assert state.weak_labels == {}
        indices, labels = state.training_set()
        assert list(indices) == [3]
        assert list(labels) == [0]

    def test_weak_labels_skip_already_labeled(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.add_labels({2: 1})
        state.set_weak_labels({2: 0, 5: 1})
        assert 2 not in state.weak_labels
        assert 5 in state.weak_labels

    def test_training_set_combines_both(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.add_labels({0: 1, 1: 0})
        state.set_weak_labels({5: 1})
        indices, labels = state.training_set()
        assert len(indices) == 3
        assert dict(zip(indices.tolist(), labels.tolist())) == {0: 1, 1: 0, 5: 1}
