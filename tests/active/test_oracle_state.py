"""Tests for the labeling oracles and the active-learning state."""

import numpy as np
import pytest

from repro.active.oracle import (
    ABSTAIN,
    AbstainingOracle,
    ClassConditionalNoisyOracle,
    NoisyOracle,
    PerfectOracle,
)
from repro.active.state import ActiveLearningState
from repro.exceptions import BudgetError, OracleError


class TestPerfectOracle:
    def test_returns_gold_labels(self, tiny_dataset):
        oracle = PerfectOracle(tiny_dataset)
        labels = tiny_dataset.labels()
        for index in [0, 5, 10]:
            assert oracle.query(index) == labels[index]

    def test_counts_queries(self, tiny_dataset):
        oracle = PerfectOracle(tiny_dataset)
        oracle.query_many([0, 1, 2])
        assert oracle.num_queries == 3

    def test_out_of_range_raises(self, tiny_dataset):
        oracle = PerfectOracle(tiny_dataset)
        with pytest.raises(OracleError):
            oracle.query(len(tiny_dataset.pairs) + 10)

    def test_query_many_returns_mapping(self, tiny_dataset):
        oracle = PerfectOracle(tiny_dataset)
        result = oracle.query_many(np.array([3, 4]))
        assert set(result) == {3, 4}

    def test_query_many_counts_duplicates_once(self, tiny_dataset):
        # Regression: duplicate indices used to be queried (and billed)
        # individually while the result dict could only keep one entry.
        oracle = PerfectOracle(tiny_dataset)
        result = oracle.query_many([3, 3, 4, 3, 4])
        assert set(result) == {3, 4}
        assert oracle.num_queries == 2

    def test_peek_does_not_count_a_query(self, tiny_dataset):
        oracle = PerfectOracle(tiny_dataset)
        label = oracle.peek(0)
        assert label == int(tiny_dataset.labels()[0])
        assert oracle.num_queries == 0


class TestNoisyOracle:
    def test_zero_noise_equals_perfect(self, tiny_dataset):
        noisy = NoisyOracle(tiny_dataset, flip_probability=0.0, random_state=0)
        perfect = PerfectOracle(tiny_dataset)
        for index in range(20):
            assert noisy.query(index) == perfect.query(index)

    def test_full_noise_flips_everything(self, tiny_dataset):
        noisy = NoisyOracle(tiny_dataset, flip_probability=1.0, random_state=0)
        perfect = PerfectOracle(tiny_dataset)
        for index in range(20):
            assert noisy.query(index) == 1 - perfect.query(index)

    def test_partial_noise_flips_some(self, tiny_dataset):
        noisy = NoisyOracle(tiny_dataset, flip_probability=0.3, random_state=1)
        perfect = PerfectOracle(tiny_dataset)
        labels_noisy = [noisy.query(i) for i in range(100)]
        labels_true = [perfect.query(i) for i in range(100)]
        flips = sum(a != b for a, b in zip(labels_noisy, labels_true))
        assert 10 <= flips <= 55

    def test_invalid_probability(self, tiny_dataset):
        with pytest.raises(OracleError):
            NoisyOracle(tiny_dataset, flip_probability=1.5)

    def test_delegates_through_peek_not_private_access(self, tiny_dataset):
        # Regression: the wrapper used to call the base's private _label;
        # the sanctioned hook keeps base bookkeeping untouched and lets
        # arbitrary bases compose.
        base = PerfectOracle(tiny_dataset)
        noisy = NoisyOracle(tiny_dataset, flip_probability=0.0, base=base)
        noisy.query_many(range(10))
        assert noisy.num_queries == 10
        assert base.num_queries == 0

    def test_composes_over_custom_base(self, tiny_dataset):
        class ConstantOracle(PerfectOracle):
            def _label(self, pair_index: int) -> int:
                return 1

        noisy = NoisyOracle(tiny_dataset, flip_probability=1.0, random_state=0,
                            base=ConstantOracle(tiny_dataset))
        assert all(noisy.query(i) == 0 for i in range(10))


class TestClassConditionalNoisyOracle:
    def test_one_sided_false_positives(self, tiny_dataset):
        oracle = ClassConditionalNoisyOracle(
            tiny_dataset, false_positive_rate=1.0, false_negative_rate=0.0,
            random_state=0)
        # Every negative is flipped up, every positive kept: all answers 1.
        assert all(oracle.query(index) == 1 for index in range(40))

    def test_one_sided_false_negatives(self, tiny_dataset):
        oracle = ClassConditionalNoisyOracle(
            tiny_dataset, false_positive_rate=0.0, false_negative_rate=1.0,
            random_state=0)
        # Every positive is flipped down, every negative kept: all answers 0.
        assert all(oracle.query(index) == 0 for index in range(40))

    def test_answers_are_per_pair_deterministic(self, tiny_dataset):
        oracle = ClassConditionalNoisyOracle(
            tiny_dataset, false_positive_rate=0.3, false_negative_rate=0.3,
            random_state=5)
        first = [oracle.query(i) for i in range(30)]
        again = [oracle.query(i) for i in reversed(range(30))]
        assert first == list(reversed(again))

    def test_invalid_rate_rejected(self, tiny_dataset):
        with pytest.raises(OracleError):
            ClassConditionalNoisyOracle(tiny_dataset, false_positive_rate=-0.1)

    def test_out_of_range_raises(self, tiny_dataset):
        oracle = ClassConditionalNoisyOracle(tiny_dataset, random_state=0)
        with pytest.raises(OracleError):
            oracle.query(len(tiny_dataset.pairs) + 5)


class TestAbstainingOracle:
    def test_zero_abstention_equals_perfect(self, tiny_dataset):
        oracle = AbstainingOracle(tiny_dataset, abstain_probability=0.0,
                                  random_state=0)
        perfect = PerfectOracle(tiny_dataset)
        for index in range(20):
            assert oracle.query(index) == perfect.query(index)

    def test_full_abstention_answers_nothing(self, tiny_dataset):
        oracle = AbstainingOracle(tiny_dataset, abstain_probability=1.0,
                                  random_state=0)
        result = oracle.query_many(range(10))
        assert result == {}
        # The annotator was still asked ten times.
        assert oracle.num_queries == 10
        assert oracle.num_abstentions == 10

    def test_abstentions_are_per_pair_consistent(self, tiny_dataset):
        oracle = AbstainingOracle(tiny_dataset, abstain_probability=0.4,
                                  random_state=3)
        first = {i: oracle.peek(i) for i in range(50)}
        second = {i: oracle.peek(i) for i in range(50)}
        assert first == second
        abstained = [i for i, label in first.items() if label == ABSTAIN]
        assert 5 <= len(abstained) <= 35
        # peek is the side-effect-free hook: only billed refusals count.
        assert oracle.num_abstentions == 0
        assert oracle.num_queries == 0

    def test_only_billed_abstentions_are_counted(self, tiny_dataset):
        oracle = AbstainingOracle(tiny_dataset, abstain_probability=0.4,
                                  random_state=3)
        answered = oracle.query_many(range(50))
        assert oracle.num_queries == 50
        assert oracle.num_abstentions == 50 - len(answered)

    def test_composes_with_noisy_base(self, tiny_dataset):
        base = NoisyOracle(tiny_dataset, flip_probability=1.0, random_state=0)
        oracle = AbstainingOracle(tiny_dataset, abstain_probability=0.0,
                                  random_state=0, base=base)
        perfect = PerfectOracle(tiny_dataset)
        for index in range(10):
            assert oracle.query(index) == 1 - perfect.query(index)
        assert base.num_queries == 0

    def test_invalid_probability(self, tiny_dataset):
        with pytest.raises(OracleError):
            AbstainingOracle(tiny_dataset, abstain_probability=-0.5)

    def test_loop_never_requeries_refused_pairs(self, tiny_dataset,
                                                fast_matcher_config,
                                                small_featurizer_config):
        from repro.active.loop import ActiveLearningLoop
        from repro.active.selectors import EntropySelector

        class RecordingAbstainer(AbstainingOracle):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.query_log: list[int] = []

            def query(self, pair_index: int) -> int:
                self.query_log.append(pair_index)
                return super().query(pair_index)

        oracle = RecordingAbstainer(tiny_dataset, abstain_probability=0.5,
                                    random_state=11)
        loop = ActiveLearningLoop(
            dataset=tiny_dataset, selector=EntropySelector(), oracle=oracle,
            matcher_config=fast_matcher_config,
            featurizer_config=small_featurizer_config,
            iterations=2, budget_per_iteration=8, seed_size=8,
            weak_supervision="off", random_state=5)
        loop.run()
        # Abstention is per-pair consistent, so a refused pair must never be
        # re-billed in a later iteration (a deterministic selector would
        # otherwise re-select it forever).
        assert len(oracle.query_log) == len(set(oracle.query_log))


class TestActiveLearningState:
    def test_initial_state(self):
        state = ActiveLearningState(universe=np.arange(10))
        assert state.num_labeled == 0
        assert state.num_pool == 10
        assert len(state.pool_indices) == 10

    def test_add_labels_moves_to_labeled(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.add_labels({2: 1, 5: 0})
        assert state.num_labeled == 2
        assert state.is_labeled(2)
        assert 2 not in state.pool_indices
        assert state.labeled_positives() == [2]
        assert state.labeled_negatives() == [5]

    def test_duplicate_label_rejected(self):
        state = ActiveLearningState(universe=np.arange(5))
        state.add_labels({1: 1})
        with pytest.raises(BudgetError):
            state.add_labels({1: 0})

    def test_label_outside_universe_rejected(self):
        state = ActiveLearningState(universe=np.arange(5))
        with pytest.raises(BudgetError):
            state.add_labels({99: 1})

    def test_invalid_label_value_rejected(self):
        state = ActiveLearningState(universe=np.arange(5))
        with pytest.raises(BudgetError):
            state.add_labels({1: 2})

    def test_weak_labels_do_not_count_as_labeled(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.set_weak_labels({3: 1, 4: 0})
        assert state.num_labeled == 0
        indices, labels = state.training_set()
        assert set(indices.tolist()) == {3, 4}
        assert set(labels.tolist()) == {0, 1}

    def test_weak_labels_replaced_each_iteration(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.set_weak_labels({3: 1})
        state.set_weak_labels({4: 0})
        assert list(state.weak_labels) == [4]

    def test_label_array_matches_dict_lookup(self):
        state = ActiveLearningState(universe=np.arange(20))
        state.add_labels({7: 1, 3: 0, 15: 1, 0: 0})
        universe = state.universe
        expected = np.array([state.labeled.get(int(i), -1) for i in universe],
                            dtype=np.int64)
        produced = state.label_array(universe)
        assert produced.dtype == np.int64
        assert np.array_equal(produced, expected)
        # Works for arbitrary subsets and orders too.
        subset = np.array([15, 1, 7, 19, 0])
        assert np.array_equal(
            state.label_array(subset),
            np.array([1, -1, 1, -1, 0], dtype=np.int64))

    def test_label_array_empty_cases(self):
        state = ActiveLearningState(universe=np.arange(5))
        assert np.array_equal(state.label_array(np.arange(5)),
                              np.full(5, -1, dtype=np.int64))
        state.add_labels({2: 1})
        assert state.label_array(np.array([], dtype=np.int64)).shape == (0,)

    def test_labeled_overrides_weak(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.set_weak_labels({3: 1})
        state.add_labels({3: 0})
        assert state.weak_labels == {}
        indices, labels = state.training_set()
        assert list(indices) == [3]
        assert list(labels) == [0]

    def test_weak_labels_skip_already_labeled(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.add_labels({2: 1})
        state.set_weak_labels({2: 0, 5: 1})
        assert 2 not in state.weak_labels
        assert 5 in state.weak_labels

    def test_training_set_combines_both(self):
        state = ActiveLearningState(universe=np.arange(10))
        state.add_labels({0: 1, 1: 0})
        state.set_weak_labels({5: 1})
        indices, labels = state.training_set()
        assert len(indices) == 3
        assert dict(zip(indices.tolist(), labels.tolist())) == {0: 1, 1: 0, 5: 1}
