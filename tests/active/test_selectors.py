"""Tests for the selection strategies (random, DAL, DIAL-style committee)."""

import numpy as np
import pytest

from repro.active.selectors.base import SelectionContext, entropy_weak_selection, take_top_ranked
from repro.active.selectors.committee import CommitteeSelector
from repro.active.selectors.entropy import EntropySelector
from repro.active.selectors.random_selector import RandomSelector


def make_context(num_pairs=60, num_labeled=10, budget=10, seed=0,
                 probabilities=None) -> SelectionContext:
    """A synthetic selection context with two latent clusters."""
    rng = np.random.default_rng(seed)
    universe = np.arange(100, 100 + num_pairs)
    representations = np.vstack([
        rng.normal(size=(num_pairs // 2, 8)) + 3.0,
        rng.normal(size=(num_pairs - num_pairs // 2, 8)) - 3.0,
    ])
    if probabilities is None:
        probabilities = np.concatenate([
            rng.uniform(0.55, 0.99, size=num_pairs // 2),
            rng.uniform(0.01, 0.45, size=num_pairs - num_pairs // 2),
        ])
    labeled_mask = np.zeros(num_pairs, dtype=bool)
    labeled_mask[:num_labeled // 2] = True
    labeled_mask[num_pairs // 2: num_pairs // 2 + num_labeled // 2] = True
    labels = np.full(num_pairs, -1, dtype=np.int64)
    labels[:num_pairs // 2][labeled_mask[:num_pairs // 2]] = 1
    labels[num_pairs // 2:][labeled_mask[num_pairs // 2:]] = 0
    return SelectionContext(
        iteration=0, budget=budget, universe=universe,
        probabilities=np.asarray(probabilities), representations=representations,
        labeled_mask=labeled_mask, labels=labels, rng=np.random.default_rng(seed + 1),
    )


class TestSelectionContext:
    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            SelectionContext(
                iteration=0, budget=5, universe=np.arange(4),
                probabilities=np.zeros(3), representations=np.zeros((4, 2)),
                labeled_mask=np.zeros(4, dtype=bool), labels=np.full(4, -1),
                rng=np.random.default_rng(0),
            )

    def test_views(self):
        context = make_context(num_pairs=20, num_labeled=4)
        assert len(context.pool_positions) == 16
        assert len(context.labeled_positions) == 4
        assert context.position_of(int(context.universe[3])) == 3
        assert set(context.predictions.tolist()) <= {0, 1}
        assert len(context.pool_indices()) == 16


class TestRandomSelector:
    def test_respects_budget(self):
        context = make_context(budget=7)
        selected = RandomSelector().select(context)
        assert len(selected) == 7

    def test_only_pool_pairs(self):
        context = make_context()
        selected = RandomSelector().select(context)
        labeled = set(context.universe[context.labeled_positions].tolist())
        assert not set(selected) & labeled

    def test_no_duplicates(self):
        context = make_context(budget=20)
        selected = RandomSelector().select(context)
        assert len(set(selected)) == len(selected)

    def test_empty_pool(self):
        context = make_context(num_pairs=10, num_labeled=10)
        assert RandomSelector().select(context) == []

    def test_budget_larger_than_pool(self):
        context = make_context(num_pairs=12, num_labeled=4, budget=100)
        assert len(RandomSelector().select(context)) == 8


class TestEntropySelector:
    def test_selects_most_uncertain(self):
        probabilities = np.full(60, 0.99)
        probabilities[13] = 0.52   # most uncertain "match"
        probabilities[40] = 0.48   # most uncertain "non-match"
        context = make_context(budget=2, probabilities=probabilities, num_labeled=0)
        selected = EntropySelector().select(context)
        assert set(selected) == {int(context.universe[13]), int(context.universe[40])}

    def test_class_balance(self):
        context = make_context(budget=10, num_labeled=0)
        selected = EntropySelector().select(context)
        predictions = context.predictions
        positions = [context.position_of(index) for index in selected]
        positives = sum(predictions[p] for p in positions)
        assert 3 <= positives <= 7

    def test_fills_budget_when_one_class_missing(self):
        probabilities = np.full(60, 0.2)  # everything predicted non-match
        context = make_context(budget=10, probabilities=probabilities, num_labeled=0)
        selected = EntropySelector().select(context)
        assert len(selected) == 10

    def test_invalid_positive_share(self):
        with pytest.raises(ValueError):
            EntropySelector(positive_share=1.5)

    def test_zero_budget(self):
        context = make_context(budget=0)
        assert EntropySelector().select(context) == []


class TestEntropyWeakSelection:
    def test_selects_most_confident(self):
        probabilities = np.full(60, 0.6)
        probabilities[5] = 0.999
        probabilities[45] = 0.001
        context = make_context(budget=10, probabilities=probabilities, num_labeled=0)
        weak = entropy_weak_selection(context, budget=2)
        assert weak[int(context.universe[5])] == 1
        assert weak[int(context.universe[45])] == 0

    def test_budget_zero(self):
        context = make_context()
        assert entropy_weak_selection(context, 0) == {}

    def test_excludes_labeled(self):
        context = make_context(num_labeled=10)
        weak = entropy_weak_selection(context, budget=20)
        labeled = set(context.universe[context.labeled_positions].tolist())
        assert not set(weak) & labeled


class TestCommitteeSelector:
    def test_respects_budget_and_pool(self):
        context = make_context(budget=8, num_labeled=10)
        selected = CommitteeSelector(committee_size=3, random_state=0).select(context)
        assert len(selected) == 8
        labeled = set(context.universe[context.labeled_positions].tolist())
        assert not set(selected) & labeled

    def test_cold_start_without_labels(self):
        context = make_context(num_labeled=0, budget=6)
        selected = CommitteeSelector(committee_size=3, random_state=0).select(context)
        assert len(selected) == 6

    def test_invalid_committee_size(self):
        with pytest.raises(ValueError):
            CommitteeSelector(committee_size=1)

    def test_deterministic_given_seed(self):
        context_a = make_context(budget=6, seed=3)
        context_b = make_context(budget=6, seed=3)
        selector = CommitteeSelector(committee_size=3, random_state=5)
        other = CommitteeSelector(committee_size=3, random_state=5)
        assert selector.select(context_a) == other.select(context_b)


class TestTakeTopRanked:
    def test_orders_by_score(self):
        scores = {1: 0.5, 2: 0.9, 3: 0.1}
        assert take_top_ranked(scores, 2) == [2, 1]
        assert take_top_ranked(scores, 2, largest_first=False) == [3, 1]

    def test_budget_clamping(self):
        assert take_top_ranked({1: 1.0}, 5) == [1]
        assert take_top_ranked({1: 1.0}, 0) == []
