"""Tests for evaluation metrics, learning curves, AUC, and reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.curves import LearningCurve, auc_table, average_curves
from repro.evaluation.metrics import (
    confusion_matrix,
    f1_score,
    matching_metrics,
    precision_score,
    recall_score,
)
from repro.evaluation.reporting import format_learning_curves, format_table, paper_comparison_row


class TestMetrics:
    def test_confusion_matrix_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        cm = confusion_matrix(y_true, y_pred)
        assert (cm.true_positive, cm.false_positive, cm.true_negative,
                cm.false_negative) == (2, 1, 1, 1)
        assert cm.total == 5
        assert cm.accuracy == pytest.approx(0.6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(2))

    def test_perfect_prediction(self):
        y = np.array([1, 0, 1])
        assert f1_score(y, y) == 1.0
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0

    def test_no_positive_predictions(self):
        y_true = np.array([1, 0, 1])
        y_pred = np.zeros(3)
        assert precision_score(y_true, y_pred) == 0.0
        assert recall_score(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0

    def test_known_f1(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0])
        # precision 2/3, recall 2/3 → F1 = 2/3.
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_matching_metrics_bundle(self):
        y_true = np.array([1, 0, 1, 0])
        y_pred = np.array([1, 0, 0, 0])
        metrics = matching_metrics(y_true, y_pred)
        assert metrics.precision == 1.0
        assert metrics.recall == 0.5
        assert metrics.num_examples == 4
        row = metrics.as_row()
        assert row["f1"] == pytest.approx(2 / 3, abs=1e-3)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1,
                    max_size=50))
    def test_property_f1_is_harmonic_mean(self, pairs):
        y_true = np.array([a for a, _ in pairs])
        y_pred = np.array([b for _, b in pairs])
        precision = precision_score(y_true, y_pred)
        recall = recall_score(y_true, y_pred)
        f1 = f1_score(y_true, y_pred)
        if precision + recall > 0:
            assert f1 == pytest.approx(2 * precision * recall / (precision + recall))
        else:
            assert f1 == 0.0
        assert 0.0 <= f1 <= 1.0


class TestLearningCurve:
    def test_add_and_final(self):
        curve = LearningCurve()
        curve.add(100, 0.4)
        curve.add(200, 0.6)
        assert curve.final_f1 == 0.6
        assert curve.labeled_counts == [100, 200]

    def test_non_decreasing_counts_enforced(self):
        curve = LearningCurve([100], [0.5])
        with pytest.raises(ValueError):
            curve.add(50, 0.6)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            LearningCurve([1, 2], [0.5])

    def test_f1_at_checkpoint(self):
        curve = LearningCurve([100, 200, 300], [0.3, 0.5, 0.7])
        assert curve.f1_at(250) == 0.5
        assert curve.f1_at(300) == 0.7

    def test_f1_at_below_first_measurement_is_zero(self):
        # Regression: budgets below the first measurement used to report the
        # first measured F1, crediting a model that does not exist yet.
        curve = LearningCurve([100, 200, 300], [0.3, 0.5, 0.7])
        assert curve.f1_at(99) == 0.0
        assert curve.f1_at(0) == 0.0
        assert curve.f1_at(100) == 0.3

    def test_f1_at_empty_curve(self):
        assert LearningCurve().f1_at(500) == 0.0

    def test_auc_prefers_better_curves(self):
        good = LearningCurve([100, 200, 300], [0.6, 0.7, 0.8])
        bad = LearningCurve([100, 200, 300], [0.3, 0.4, 0.5])
        assert good.auc() > bad.auc()

    def test_auc_of_flat_curve(self):
        flat = LearningCurve([100, 200, 300], [0.5, 0.5, 0.5])
        # Average height 50 (percentage) times 2 segments.
        assert flat.auc() == pytest.approx(100.0)

    def test_auc_degenerate(self):
        assert LearningCurve([100], [0.9]).auc() == 0.0
        assert LearningCurve().auc() == 0.0

    def test_average_curves(self):
        a = LearningCurve([1, 2], [0.2, 0.4])
        b = LearningCurve([1, 2], [0.4, 0.6])
        averaged = average_curves([a, b])
        assert averaged.f1_scores == [pytest.approx(0.3), pytest.approx(0.5)]

    def test_average_curves_shared_axis_is_preserved(self):
        a = LearningCurve([1, 2], [0.2, 0.4])
        b = LearningCurve([1, 2], [0.4, 0.6])
        assert average_curves([a, b]).labeled_counts == [1, 2]

    def test_average_curves_aligns_shifted_axes_positionally(self):
        # An abstaining oracle makes acquired-label counts seed-dependent;
        # equal-length curves are aligned per checkpoint and both axes
        # averaged.
        a = LearningCurve([8, 16], [0.2, 0.4])
        b = LearningCurve([6, 12], [0.4, 0.6])
        averaged = average_curves([a, b])
        assert averaged.labeled_counts == [7, 14]
        assert averaged.f1_scores == [pytest.approx(0.3), pytest.approx(0.5)]

    def test_average_curves_mismatched_length_rejected(self):
        a = LearningCurve([1, 2], [0.2, 0.4])
        b = LearningCurve([1, 2, 3], [0.4, 0.6, 0.8])
        with pytest.raises(ValueError):
            average_curves([a, b])

    def test_auc_table(self):
        curves = {"a": LearningCurve([1, 2], [0.5, 0.7])}
        table = auc_table(curves)
        assert set(table) == {"a"}


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"method": "battleship", "f1": 84.76}, {"method": "dal", "f1": 75.93}]
        text = format_table(rows, title="Table X")
        assert "Table X" in text
        assert "battleship" in text
        assert "84.76" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_learning_curves(self):
        curves = {"battleship": LearningCurve([100, 200], [0.5, 0.6])}
        text = format_learning_curves(curves, title="Figure 5")
        assert "Figure 5" in text
        assert "100:50.0" in text

    def test_paper_comparison_row(self):
        row = paper_comparison_row("table4", 84.76, 80.0)
        assert row["delta"] == pytest.approx(-4.76)
