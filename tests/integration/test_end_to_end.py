"""Integration tests: the full battleship pipeline on a tiny benchmark.

These tests exercise the complete stack the way the paper's experiments do:
synthetic benchmark → featurizer → matcher → graphs → battleship selection →
oracle → retraining, and compare selectors against each other.
"""

import numpy as np
import pytest

from repro.active.loop import ActiveLearningLoop
from repro.active.selectors import BattleshipSelector, EntropySelector, RandomSelector
from repro.baselines.full_training import train_full_matcher
from repro.core import load_benchmark
from repro.datasets.registry import PAPER_STATISTICS
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig

_MATCHER = MatcherConfig(hidden_dims=(64, 32), epochs=6, batch_size=16,
                         learning_rate=2e-3, random_state=2)
_FEATURIZER = FeaturizerConfig(hash_dim=96)


def _run(dataset, selector, seed=17, iterations=3, budget=20):
    loop = ActiveLearningLoop(
        dataset=dataset, selector=selector, matcher_config=_MATCHER,
        featurizer_config=_FEATURIZER, iterations=iterations,
        budget_per_iteration=budget, seed_size=budget, random_state=seed,
    )
    return loop.run()


@pytest.fixture(scope="module")
def dataset():
    return load_benchmark("amazon_google", scale="tiny", random_state=23)


@pytest.fixture(scope="module")
def battleship_result(dataset):
    return _run(dataset, BattleshipSelector(num_neighbors=8))


@pytest.fixture(scope="module")
def random_result(dataset):
    return _run(dataset, RandomSelector())


class TestEndToEnd:
    def test_learning_curve_improves_over_seed_model(self, battleship_result):
        curve = battleship_result.learning_curve()
        assert curve.final_f1 >= curve.f1_scores[0] - 0.05

    def test_battleship_uses_all_budget(self, battleship_result):
        assert battleship_result.records[-1].num_labeled == 80

    def test_battleship_finds_positives(self, battleship_result, dataset):
        """The correspondence criterion should surface a disproportionate share
        of the scarce match pairs (positive rate ~10%)."""
        final = battleship_result.records[-1]
        positive_fraction = final.num_labeled_positives / final.num_labeled
        assert positive_fraction > 2 * PAPER_STATISTICS["amazon_google"].positive_rate

    def test_battleship_at_least_as_good_as_random(self, battleship_result, random_result):
        """The headline claim, at tiny scale with a generous tolerance."""
        battleship_auc = battleship_result.learning_curve().auc()
        random_auc = random_result.learning_curve().auc()
        assert battleship_auc >= random_auc * 0.9

    def test_low_resource_run_approaches_full_training(self, battleship_result, dataset):
        full = train_full_matcher(dataset, _MATCHER, _FEATURIZER)
        assert battleship_result.final_f1 >= 0.5 * full.f1

    def test_dal_runs_on_second_benchmark(self):
        other = load_benchmark("wdc_cameras", scale="tiny", random_state=5)
        result = _run(other, EntropySelector(), iterations=2)
        assert len(result.records) == 3
        assert 0.0 <= result.final_f1 <= 1.0

    def test_reproducibility_of_full_run(self, dataset):
        first = _run(dataset, EntropySelector(), seed=99, iterations=1)
        second = _run(dataset, EntropySelector(), seed=99, iterations=1)
        assert [r.f1 for r in first.records] == [r.f1 for r in second.records]
        assert [r.num_labeled for r in first.records] == [r.num_labeled for r in second.records]
