"""Regression tests for the production fixes the initial lint sweep drove.

Each fix replaced salted set iteration with deterministic first-occurrence
iteration (``dict.fromkeys``); these tests prove the outputs are unchanged —
the fixes alter *how* an order is produced, never *what* is computed.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from repro.blocking.minhash_lsh import _MAX_HASH, MinHashSignature
from repro.text.tokenization import tokenize
from repro.text.vectorizers import TfidfVectorizer

TEXTS = [
    "sony alpha a7 iii mirrorless camera",
    "sony alpha a7 iii mirrorless camera",  # duplicate document
    "canon eos r6 mark ii body",
    "nikon z6 ii with 24-70mm f4 lens",
    "canon eos r6 mark ii body canon canon",  # repeated tokens in one doc
    "",
]


def test_minhash_batch_matches_per_record_signatures():
    """The batched path (with the cache fix) ≡ the one-record reference."""
    signer = MinHashSignature(num_permutations=16, random_state=3)
    feature_sets = [set(t.split()) for t in TEXTS]
    batched = signer.signature_matrix(feature_sets)
    reference = np.vstack([signer.signature(f) for f in feature_sets])
    np.testing.assert_array_equal(batched, reference)


def test_minhash_cache_values_are_plain_crc32():
    """The dict.fromkeys rewrite must not change what gets cached."""
    signer = MinHashSignature(num_permutations=4, random_state=0)
    features = ["alpha", "beta", "alpha", "gamma"]
    signer.signature_matrix([features])
    from repro.blocking.minhash_lsh import _CRC_CACHE

    for feature in set(features):
        assert _CRC_CACHE[feature] == (
            zlib.crc32(feature.encode("utf-8")) & _MAX_HASH)


def test_minhash_empty_record_sentinel_row_unchanged():
    signer = MinHashSignature(num_permutations=8, random_state=1)
    matrix = signer.signature_matrix([set(), {"a", "b"}])
    assert (matrix[0] == _MAX_HASH).all()
    assert not (matrix[1] == _MAX_HASH).all()


def test_tfidf_document_frequencies_match_set_semantics():
    """Per-document dedup via dict.fromkeys ≡ the old set() counting."""
    vectorizer = TfidfVectorizer().fit(TEXTS)
    reference_df: dict[str, int] = {}
    for text in TEXTS:
        for token in set(tokenize(text)):
            reference_df[token] = reference_df.get(token, 0) + 1
    n_documents = max(len(TEXTS), 1)
    for token, index in vectorizer.vocabulary.items():
        expected = math.log((1 + n_documents)
                            / (1 + reference_df[token])) + 1.0
        assert vectorizer._idf[index] == expected


def test_tfidf_fit_is_invariant_to_duplicate_tokens_within_a_document():
    """A token repeated in one document still counts once toward df."""
    once = TfidfVectorizer().fit(["canon body", "nikon lens"])
    repeated = TfidfVectorizer().fit(["canon body canon canon",
                                      "nikon lens"])
    assert once.vocabulary == repeated.vocabulary
    np.testing.assert_array_equal(once._idf, repeated._idf)


def test_tfidf_transform_output_unchanged_by_the_fix():
    """Pin the full pipeline numerically against an independent reference."""
    vectorizer = TfidfVectorizer().fit(TEXTS)
    matrix = vectorizer.transform(["sony alpha body", ""])
    vocab = vectorizer.vocabulary
    row = np.zeros(len(vocab))
    for token in ["sony", "alpha", "body"]:
        if token in vocab:
            row[vocab[token]] += vectorizer._idf[vocab[token]]
    norm = np.linalg.norm(row)
    np.testing.assert_allclose(matrix[0], row / norm)
    np.testing.assert_array_equal(matrix[1], np.zeros(len(vocab)))
