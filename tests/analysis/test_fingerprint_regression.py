"""Fingerprint regression tests for the structural-coverage refactor.

The settings/scenario/benchmark fingerprints key the resumable artifact store
and the manifest lockfiles, so the refactor to
:func:`repro._fingerprints.fingerprint_fields` must be *value-preserving*:
every test here recomputes the OLD hand-enumerated payload algorithm and
asserts the refactored implementation produces the identical hash.  A
separate test proves the new property the refactor buys: a dataclass field
added tomorrow is fingerprinted without anyone remembering to list it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import make_dataclass

import pytest

from repro._fingerprints import fingerprint_fields, fingerprint_payload
from repro.datasets.registry import available_benchmarks, benchmark_fingerprint
from repro.experiments.configs import GRID_ONLY_FIELDS, default_settings
from repro.experiments.engine import settings_fingerprint
from repro.scenarios import available_scenarios, get_scenario


def canonical_hash(payload: object) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# Old algorithms, reimplemented verbatim
# --------------------------------------------------------------------------- #
def old_settings_fingerprint(settings) -> str:
    payload = {
        "scale": dataclasses.asdict(settings.scale),
        "iterations": settings.iterations,
        "budget_per_iteration": settings.budget_per_iteration,
        "seed_size": settings.seed_size,
        "matcher_config": dataclasses.asdict(settings.matcher_config),
        "featurizer_config": dataclasses.asdict(settings.featurizer_config),
        "base_random_seed": settings.base_random_seed,
    }
    return canonical_hash(payload)


def old_corruption_payload(scenario) -> dict[str, object]:
    corruption = scenario.corruption
    return {
        "name": corruption.name,
        "left": (dataclasses.asdict(corruption.left)
                 if corruption.left is not None else None),
        "right": (dataclasses.asdict(corruption.right)
                  if corruption.right is not None else None),
        "scale_factor": corruption.scale_factor,
    }


def old_scenario_fingerprint(scenario) -> str:
    payload = {
        "name": scenario.name,
        "oracle": dataclasses.asdict(scenario.oracle),
        "corruption": old_corruption_payload(scenario),
        "pool_skew": scenario.pool_skew,
    }
    return canonical_hash(payload)


def old_dataset_fingerprint(scenario) -> str:
    if scenario.is_default:
        return ""
    payload = {
        "corruption": old_corruption_payload(scenario),
        "pool_skew": scenario.pool_skew,
        "skew_scope": (scenario.name if scenario.pool_skew is not None
                       else None),
    }
    return canonical_hash(payload)


# --------------------------------------------------------------------------- #
# Value preservation
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("scale", ["tiny", "small"])
def test_settings_fingerprint_value_preserved(scale):
    settings = default_settings(scale)
    assert settings_fingerprint(settings) == old_settings_fingerprint(settings)


def test_settings_fingerprint_still_excludes_grid_fields():
    settings = default_settings("tiny")
    widened = dataclasses.replace(settings, datasets=("abt_buy",),
                                  num_seeds=99, alphas=(0.1,), beta=0.9)
    assert settings_fingerprint(widened) == settings_fingerprint(settings)


def test_settings_fingerprint_covers_behavioural_fields():
    settings = default_settings("tiny")
    changed = dataclasses.replace(settings, iterations=settings.iterations + 1)
    assert settings_fingerprint(changed) != settings_fingerprint(settings)


@pytest.mark.parametrize("name", sorted(available_scenarios()))
def test_scenario_fingerprints_value_preserved(name):
    scenario = get_scenario(name)
    assert scenario.fingerprint() == old_scenario_fingerprint(scenario)
    assert scenario.dataset_fingerprint() == old_dataset_fingerprint(scenario)


#: Pinned pre-refactor benchmark fingerprints (captured at the refactor
#: commit).  These feed manifest lockfiles on disk: a value change here
#: invalidates users' stores and must be an explicit, reviewed decision.
PINNED_BENCHMARK_FINGERPRINTS = {
    "walmart_amazon": "11ef850685b636f3",
    "amazon_google": "eb6e49c7fd260b79",
    "wdc_cameras": "1b8ea4f88aeab387",
    "wdc_shoes": "55d96bd2d610c2c7",
    "abt_buy": "d0c64a52599df128",
    "dblp_scholar": "a8bcbdbfd07a7b92",
}


def test_benchmark_fingerprints_value_preserved():
    assert set(PINNED_BENCHMARK_FINGERPRINTS) == set(available_benchmarks())
    for name, expected in PINNED_BENCHMARK_FINGERPRINTS.items():
        assert benchmark_fingerprint(name) == expected, name


# --------------------------------------------------------------------------- #
# The property the refactor buys: structural coverage
# --------------------------------------------------------------------------- #
def test_new_fields_are_fingerprinted_by_construction():
    base = make_dataclass("Base", [("alpha", float, 0.5), ("beta", float, 1.0),
                                   ("note", str, "")])
    extended = make_dataclass("Extended",
                              [("alpha", float, 0.5), ("beta", float, 1.0),
                               ("note", str, ""), ("gamma", int, 3)])
    exclude = ("note",)
    assert fingerprint_fields(base, exclude) == ("alpha", "beta")
    # The new field shows up with NO change to the fingerprint code.
    assert fingerprint_fields(extended, exclude) == ("alpha", "beta", "gamma")
    payload = fingerprint_payload(extended(), fingerprint_fields(extended,
                                                                 exclude))
    assert payload == {"alpha": 0.5, "beta": 1.0, "gamma": 3}


def test_stale_exclusions_fail_loudly():
    cls = make_dataclass("Cfg", [("alpha", float, 0.5)])
    with pytest.raises(ValueError, match="renamed_away"):
        fingerprint_fields(cls, exclude=("renamed_away",))
    with pytest.raises(TypeError):
        fingerprint_fields(int)


def test_grid_only_fields_are_real_settings_fields():
    settings = default_settings("tiny")
    # fingerprint_fields validates the exclusions against the dataclass, so
    # renaming a grid field without updating GRID_ONLY_FIELDS fails loudly.
    fields = fingerprint_fields(type(settings), exclude=GRID_ONLY_FIELDS)
    assert "datasets" not in fields and "iterations" in fields


def test_benchmark_payload_drift_guard():
    """benchmark_fingerprint checks its payload keys against the spec fields.

    The payload needs per-field serialization, so it stays hand-built; this
    test proves the coverage check exists by exercising the helper the guard
    is built on against the real BenchmarkSpec.
    """
    from repro.datasets.base import BenchmarkSpec

    fields = set(fingerprint_fields(BenchmarkSpec))
    assert {"name", "schema", "catalog", "split_ratios"} <= fields
