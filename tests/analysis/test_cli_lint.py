"""CLI tests for ``repro lint-code``: exit codes, formats, baseline flags."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main

CLEAN = "VALUE = 1\n"

VIOLATION = textwrap.dedent(
    """
    def sig(x):
        return hash(x)
    """)


@pytest.fixture()
def project(tmp_path, monkeypatch):
    """An isolated project directory the CLI runs inside."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_clean_tree_exits_zero(project, capsys):
    (project / "m.py").write_text(CLEAN, encoding="utf-8")
    assert main(["lint-code", "m.py"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one_with_location(project, capsys):
    (project / "m.py").write_text(VIOLATION, encoding="utf-8")
    assert main(["lint-code", "m.py"]) == 1
    out = capsys.readouterr().out
    assert "m.py:3:11: ND001" in out


def test_json_format_is_the_artifact_document(project, capsys):
    (project / "m.py").write_text(VIOLATION, encoding="utf-8")
    assert main(["lint-code", "m.py", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "reprolint"
    assert [f["rule"] for f in payload["findings"]] == ["ND001"]


def test_unknown_select_rule_exits_two_with_suggestion(project, capsys):
    (project / "m.py").write_text(CLEAN, encoding="utf-8")
    assert main(["lint-code", "m.py", "--select", "ND01"]) == 2
    err = capsys.readouterr().err
    assert "did you mean" in err and "ND001" in err


def test_select_and_ignore_narrow_the_rule_set(project, capsys):
    (project / "m.py").write_text(VIOLATION, encoding="utf-8")
    assert main(["lint-code", "m.py", "--select", "ND002"]) == 0
    assert main(["lint-code", "m.py", "--ignore", "ND001"]) == 0
    assert main(["lint-code", "m.py", "--select", "ND001,ND002"]) == 1
    capsys.readouterr()


def test_write_baseline_then_gate_green(project, capsys):
    (project / "m.py").write_text(VIOLATION, encoding="utf-8")
    assert main(["lint-code", "m.py", "--write-baseline"]) == 0
    assert (project / "reprolint-baseline.json").exists()
    # The default baseline is picked up from the working directory.
    assert main(["lint-code", "m.py"]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # --no-baseline reports the grandfathered finding again.
    assert main(["lint-code", "m.py", "--no-baseline"]) == 1


def test_stale_baseline_fails_the_gate(project, capsys):
    (project / "m.py").write_text(VIOLATION, encoding="utf-8")
    assert main(["lint-code", "m.py", "--write-baseline"]) == 0
    (project / "m.py").write_text(CLEAN, encoding="utf-8")
    assert main(["lint-code", "m.py"]) == 1
    assert "stale baseline" in capsys.readouterr().out


def test_no_baseline_conflicts_with_write_baseline(project, capsys):
    (project / "m.py").write_text(CLEAN, encoding="utf-8")
    assert main(["lint-code", "m.py", "--no-baseline",
                 "--write-baseline"]) == 2


def test_list_rules_prints_the_catalog(project, capsys):
    assert main(["lint-code", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("ND001", "ND005", "SP001", "FP001", "MU002"):
        assert code in out


def test_planted_violation_tree_yields_exact_findings(project, capsys):
    """End-to-end fixture tree: one violation per family, exact locations."""
    pkg = project / "pkg"
    pkg.mkdir()
    (pkg / "nd.py").write_text(textwrap.dedent(
        """
        import random

        def sample(items):
            ordered = list(set(items))
            return random.choice(ordered)
        """), encoding="utf-8")
    (pkg / "sp.py").write_text(textwrap.dedent(
        """
        def run(executor, items):
            return executor.submit(lambda x: x, items)
        """), encoding="utf-8")
    (pkg / "fp.py").write_text(textwrap.dedent(
        """
        def fingerprint(config):
            return {"alpha": repr(config.alpha)}
        """), encoding="utf-8")
    (pkg / "mu.py").write_text(textwrap.dedent(
        """
        def build(items=[]):
            return items
        """), encoding="utf-8")
    assert main(["lint-code", "pkg", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    locations = sorted((f["file"], f["line"], f["col"], f["rule"])
                       for f in payload["findings"])
    assert locations == [
        ("pkg/fp.py", 3, 21, "FP002"),
        ("pkg/mu.py", 2, 16, "MU001"),
        ("pkg/nd.py", 5, 19, "ND005"),
        ("pkg/nd.py", 6, 11, "ND003"),
        ("pkg/sp.py", 3, 27, "SP001"),
    ]
    assert payload["files_checked"] == 4
