"""Runtime determinism sanitizer tests."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analysis import (
    DeterminismViolation,
    determinism_guard,
    permuted,
    sanitizer_enabled,
    shuffled_dict,
)
from repro.analysis.sanitizer import SANITIZE_ENV_VAR


def test_clean_block_passes_and_restores_state():
    random.seed(12345)
    np.random.seed(12345)
    py_before = random.getstate()
    np_before = np.random.get_state()
    with determinism_guard("clean block") as guard:
        rng = np.random.default_rng(0)  # owned generator: invisible to guard
        rng.random(10)
        guard.check("mid-block")
    assert random.getstate() == py_before
    assert np.all(np.random.get_state()[1] == np_before[1])


def test_stdlib_global_consumption_fails_loudly():
    with pytest.raises(DeterminismViolation, match="stdlib global RNG"):
        with determinism_guard("stdlib probe"):
            random.random()


def test_numpy_global_consumption_fails_loudly():
    with pytest.raises(DeterminismViolation, match="legacy global RNG"):
        with determinism_guard("numpy probe"):
            np.random.rand(3)  # repro: noqa[ND003] the violation under test


def test_state_is_restored_even_on_failure():
    random.seed(999)
    py_before = random.getstate()
    with pytest.raises(DeterminismViolation):
        with determinism_guard():
            random.random()
    assert random.getstate() == py_before


def test_assert_read_only():
    array = np.zeros(4)
    array.setflags(write=False)  # repro: noqa[MU002] constructing the read-only fixture under test
    with determinism_guard() as guard:
        guard.assert_read_only(array, name="fixture")
    writeable = np.zeros(4)
    with determinism_guard() as guard:
        with pytest.raises(DeterminismViolation, match="writeable"):
            guard.assert_read_only(writeable, name="fixture")


def test_permuted_is_deterministic_and_complete():
    items = list(range(20))
    assert permuted(items) == permuted(items)
    assert permuted(items) != items
    assert sorted(permuted(items)) == items
    assert permuted(items, seed=1) != permuted(items, seed=2)


def test_shuffled_dict_preserves_mapping():
    mapping = {f"k{i}": i for i in range(12)}
    shuffled = shuffled_dict(mapping)
    assert shuffled == mapping  # equal as mappings...
    assert list(shuffled) != list(mapping)  # ...but not in insertion order
    assert shuffled_dict(mapping) == shuffled


def test_sanitizer_enabled_reads_environment(monkeypatch):
    monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
    assert not sanitizer_enabled()
    for value in ("1", "true", "ON"):
        monkeypatch.setenv(SANITIZE_ENV_VAR, value)
        assert sanitizer_enabled()
    monkeypatch.setenv(SANITIZE_ENV_VAR, "0")
    assert not sanitizer_enabled()


def test_engine_runs_clean_under_the_sanitizer(monkeypatch):
    """The flagship integration: a real engine run under REPRO_SANITIZE=1."""
    monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
    from repro.experiments.configs import default_settings
    from repro.experiments.engine import RunSpec, execute_spec

    settings = default_settings("tiny")
    spec = RunSpec.create("amazon_google", "random", seed=7, alpha=0.5,
                          beta=0.5, weak_supervision="off", settings=settings)
    result = execute_spec(spec, settings)
    assert result.records
