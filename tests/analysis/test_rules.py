"""Per-rule fixture tests: each rule fires on its positive fixture and stays
silent on the matching negative fixture.

Every fixture is an in-memory module run through :func:`lint_source` with the
rule under test selected, so the assertions pin rule *and* location — a rule
that fires on the wrong line is as broken as one that does not fire.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import lint_source


def findings_for(source: str, rule: str):
    kept, _ = lint_source(textwrap.dedent(source), "fixture.py",
                          rules=[rule])
    return [finding for finding in kept if finding.rule == rule]


# --------------------------------------------------------------------------- #
# ND — nondeterminism
# --------------------------------------------------------------------------- #
class TestND001BuiltinHash:
    def test_flags_builtin_hash(self):
        findings = findings_for(
            """
            def signature(token):
                return hash(token) % 100
            """, "ND001")
        assert [f.line for f in findings] == [3]

    def test_ignores_hashlib_and_methods(self):
        findings = findings_for(
            """
            import hashlib

            def signature(token):
                digest = hashlib.sha256(token.encode()).hexdigest()
                return obj.hash(token)
            """, "ND001")
        assert findings == []


class TestND002BuiltinId:
    def test_flags_builtin_id(self):
        findings = findings_for(
            """
            def key(obj):
                return id(obj)
            """, "ND002")
        assert [f.line for f in findings] == [3]

    def test_ignores_id_attribute_and_shadowed(self):
        findings = findings_for(
            """
            def key(record):
                return record.id
            """, "ND002")
        assert findings == []


class TestND003GlobalRng:
    def test_flags_stdlib_and_legacy_numpy(self):
        findings = findings_for(
            """
            import random
            import numpy as np

            def sample():
                a = random.random()
                b = np.random.rand(3)
                random.seed(0)
                return a, b
            """, "ND003")
        assert [f.line for f in findings] == [6, 7, 8]

    def test_allows_seeded_generators(self):
        findings = findings_for(
            """
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                other = np.random.Generator(np.random.PCG64(seed))
                return rng.random(), other.random()
            """, "ND003")
        assert findings == []

    def test_rng_module_is_exempt(self):
        source = textwrap.dedent(
            """
            import numpy as np

            def seed_everything(seed):
                np.random.seed(seed)
            """)
        kept, _ = lint_source(source, "_rng.py", rules=["ND003"])
        assert kept == []


class TestND004WallClock:
    def test_flags_wall_clock_in_fingerprint_function(self):
        findings = findings_for(
            """
            import time

            def settings_fingerprint(settings):
                return {"stamp": time.time()}
            """, "ND004")
        assert [f.line for f in findings] == [5]

    def test_allows_wall_clock_outside_hashed_paths(self):
        findings = findings_for(
            """
            import time

            def measure(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
            """, "ND004")
        assert findings == []


class TestND005UnorderedIteration:
    def test_flags_set_iterated_into_ordered_output(self):
        findings = findings_for(
            """
            def tokens(texts):
                out = []
                for token in set(texts):
                    out.append(token)
                return out
            """, "ND005")
        assert [f.line for f in findings] == [4]

    def test_allows_sorted_and_membership(self):
        findings = findings_for(
            """
            def tokens(texts):
                for token in sorted(set(texts)):
                    yield token
                seen = set(texts)
                return "a" in seen
            """, "ND005")
        assert findings == []

    def test_allows_order_insensitive_aggregation(self):
        findings = findings_for(
            """
            def total(values):
                return sum(v for v in set(values))
            """, "ND005")
        assert findings == []


# --------------------------------------------------------------------------- #
# SP — spawn safety
# --------------------------------------------------------------------------- #
class TestSP001UnpicklableTask:
    def test_flags_lambda_submitted_to_pool(self):
        findings = findings_for(
            """
            def run(executor, items):
                return executor.submit(lambda x: x + 1, items)
            """, "SP001")
        assert [f.line for f in findings] == [3]

    def test_flags_local_function_mapped(self):
        findings = findings_for(
            """
            def run(pool, items):
                def job(item):
                    return item + 1
                return pool.map(job, items)
            """, "SP001")
        assert [f.line for f in findings] == [5]

    def test_allows_top_level_callables(self):
        findings = findings_for(
            """
            def job(item):
                return item + 1

            def run(executor, items):
                return executor.submit(job, items)
            """, "SP001")
        assert findings == []

    def test_builtin_map_is_not_a_pool(self):
        findings = findings_for(
            """
            def run(items):
                return list(map(lambda x: x + 1, items))
            """, "SP001")
        assert findings == []


class TestSP002GlobalMutation:
    def test_flags_global_statement_outside_initializer(self):
        findings = findings_for(
            """
            _REGISTRY = {}

            def register(name, value):
                global _REGISTRY
                _REGISTRY[name] = value
            """, "SP002")
        assert [f.line for f in findings] == [5]

    def test_allows_pool_initializers(self):
        findings = findings_for(
            """
            _WORKER_STATE = None

            def _init_worker(state):
                global _WORKER_STATE
                _WORKER_STATE = state
            """, "SP002")
        assert findings == []


# --------------------------------------------------------------------------- #
# FP — fingerprint hygiene
# --------------------------------------------------------------------------- #
class TestFP001FingerprintFields:
    def test_flags_hand_enumerated_payload(self):
        findings = findings_for(
            """
            def settings_fingerprint(settings):
                payload = {
                    "scale": settings.scale,
                    "iterations": settings.iterations,
                    "seed": settings.seed,
                }
                return payload
            """, "FP001")
        assert [f.line for f in findings] == [3]

    def test_allows_fingerprint_fields_derived_payloads(self):
        findings = findings_for(
            """
            from repro._fingerprints import fingerprint_fields

            def settings_fingerprint(settings):
                fields = fingerprint_fields(type(settings))
                payload = {
                    "scale": settings.scale,
                    "iterations": settings.iterations,
                    "seed": settings.seed,
                }
                return payload
            """, "FP001")
        assert findings == []

    def test_ignores_small_dicts_outside_fingerprints(self):
        findings = findings_for(
            """
            def as_row(result):
                return {
                    "dataset": result.dataset,
                    "method": result.method,
                    "f1": result.f1,
                }
            """, "FP001")
        assert findings == []


class TestFP002NonCanonicalHash:
    def test_flags_repr_and_unsorted_dumps(self):
        findings = findings_for(
            """
            import json

            def fingerprint(config):
                payload = {"value": repr(config.alpha)}
                return json.dumps(payload)
            """, "FP002")
        assert [f.line for f in findings] == [5, 6]

    def test_allows_canonical_json(self):
        findings = findings_for(
            """
            import json

            def fingerprint(config):
                return json.dumps({"alpha": config.alpha}, sort_keys=True)
            """, "FP002")
        assert findings == []

    def test_ignores_repr_in_error_messages(self):
        findings = findings_for(
            """
            def fingerprint(config):
                if config is None:
                    raise ValueError(f"bad config {config!r}")
                return {"alpha": config.alpha}
            """, "FP002")
        assert findings == []


# --------------------------------------------------------------------------- #
# MU — mutation hazards
# --------------------------------------------------------------------------- #
class TestMU001MutableDefault:
    def test_flags_literal_and_constructor_defaults(self):
        findings = findings_for(
            """
            def collect(item, seen=[], cache=dict()):
                seen.append(item)
                return seen, cache
            """, "MU001")
        assert [f.line for f in findings] == [2, 2]

    def test_allows_none_and_immutable_defaults(self):
        findings = findings_for(
            """
            def collect(item, seen=None, label="x", count=0):
                seen = [] if seen is None else seen
                seen.append(item)
                return seen
            """, "MU001")
        assert findings == []


class TestMU002ReadOnlyWrite:
    def test_flags_writes_to_cached_matrix(self):
        findings = findings_for(
            """
            def train(dataset, settings, scenario):
                features = get_feature_matrix(dataset, settings, scenario)
                features[0] = 1.0
                features += 2.0
                features.sort()
                return features
            """, "MU002")
        assert [f.line for f in findings] == [4, 5, 6]

    def test_flags_setflags_write_true_anywhere(self):
        findings = findings_for(
            """
            def defeat(array):
                array.setflags(write=True)
                return array
            """, "MU002")
        assert [f.line for f in findings] == [3]

    def test_allows_copies(self):
        findings = findings_for(
            """
            def train(dataset, settings, scenario):
                features = get_feature_matrix(dataset, settings, scenario).copy()
                local = features
                other = compute(dataset)
                other[0] = 1.0
                return local
            """, "MU002")
        assert findings == []


def test_syntax_errors_are_findings_not_crashes():
    kept, suppressed = lint_source("def broken(:\n    pass\n", "broken.py")
    assert suppressed == []
    assert [f.rule for f in kept] == ["RL000"]
    assert kept[0].line == 1


@pytest.mark.parametrize("rule", ["ND001", "ND002", "ND003", "ND004", "ND005",
                                  "SP001", "SP002", "FP001", "FP002",
                                  "MU001", "MU002"])
def test_every_rule_documents_its_history(rule):
    from repro.analysis import rule_class

    cls = rule_class(rule)
    assert cls.summary, rule
    assert cls.history, rule
