"""Baseline tests: grandfathering, staleness, and content-keyed robustness."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import lint_paths, read_baseline, write_baseline
from repro.analysis.baseline import BaselineEntry, entry_for, split_by_baseline
from repro.analysis.core import Finding

VIOLATION = textwrap.dedent(
    """
    def key(obj):
        return id(obj)
    """)


def write_module(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def test_baseline_round_trip(tmp_path):
    entries = [BaselineEntry(file="m.py", rule="ND002",
                             content="return id(obj)")]
    path = tmp_path / "baseline.json"
    write_baseline(path, entries)
    assert read_baseline(path) == entries
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["version"] == 1


def test_baselined_findings_do_not_gate(tmp_path):
    module = write_module(tmp_path, "m.py", VIOLATION)
    baseline = tmp_path / "baseline.json"

    report = lint_paths([module], root=tmp_path)
    assert not report.ok
    write_baseline(baseline, report.baseline_entries())

    gated = lint_paths([module], root=tmp_path, baseline_path=baseline)
    assert gated.ok
    assert [f.rule for f in gated.grandfathered] == ["ND002"]


def test_baseline_keys_on_content_not_line_numbers(tmp_path):
    module = write_module(tmp_path, "m.py", VIOLATION)
    baseline = tmp_path / "baseline.json"
    report = lint_paths([module], root=tmp_path)
    write_baseline(baseline, report.baseline_entries())

    # Prepend unrelated lines: every finding moves, the content does not.
    module.write_text("import os\nimport sys\n"
                      + module.read_text(encoding="utf-8"), encoding="utf-8")
    gated = lint_paths([module], root=tmp_path, baseline_path=baseline)
    assert gated.ok
    assert [f.rule for f in gated.grandfathered] == ["ND002"]


def test_new_findings_still_gate_alongside_a_baseline(tmp_path):
    module = write_module(tmp_path, "m.py", VIOLATION)
    baseline = tmp_path / "baseline.json"
    report = lint_paths([module], root=tmp_path)
    write_baseline(baseline, report.baseline_entries())

    module.write_text(module.read_text(encoding="utf-8") + textwrap.dedent(
        """
        def sig(x):
            return hash(x)
        """), encoding="utf-8")
    gated = lint_paths([module], root=tmp_path, baseline_path=baseline)
    assert not gated.ok
    assert [f.rule for f in gated.findings] == ["ND001"]
    assert [f.rule for f in gated.grandfathered] == ["ND002"]


def test_fixed_findings_turn_the_baseline_entry_stale(tmp_path):
    module = write_module(tmp_path, "m.py", VIOLATION)
    baseline = tmp_path / "baseline.json"
    report = lint_paths([module], root=tmp_path)
    write_baseline(baseline, report.baseline_entries())

    write_module(tmp_path, "m.py", """
        def key(obj):
            return obj
        """)
    gated = lint_paths([module], root=tmp_path, baseline_path=baseline)
    assert gated.findings == []
    assert [entry.rule for entry in gated.stale_baseline] == ["ND002"]


def test_split_by_baseline_is_pure():
    finding = Finding(rule="ND002", file="m.py", line=3, col=11,
                      message="id()")
    sources = {"m.py": ["", "def key(obj):", "    return id(obj)"]}
    entry = entry_for(finding, sources["m.py"])
    new, grandfathered, stale = split_by_baseline([finding], [entry], sources)
    assert (new, grandfathered, stale) == ([], [finding], [])
    new, grandfathered, stale = split_by_baseline([finding], [], sources)
    assert (new, grandfathered, stale) == ([finding], [], [])
