"""Self-lint: the repository's own ``src/`` tree must gate green.

This is the test CI's ``static-analysis`` job mirrors: every finding in the
shipped source is either fixed, suppressed with a reasoned
``# repro: noqa[RULE] reason``, or consciously grandfathered in the committed
baseline.  A new violation anywhere under ``src/`` fails this test with the
exact ``file:line:col`` to look at.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import DEFAULT_BASELINE_NAME, lint_paths, read_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def self_report():
    baseline = REPO_ROOT / DEFAULT_BASELINE_NAME
    return lint_paths([REPO_ROOT / "src"], root=REPO_ROOT,
                      baseline_path=baseline if baseline.exists() else None)


def test_src_tree_is_lint_clean(self_report):
    rendered = "\n".join(f.render() for f in self_report.findings)
    assert self_report.ok, f"new lint findings in src/:\n{rendered}"


def test_committed_baseline_has_no_stale_entries(self_report):
    assert self_report.stale_baseline == []


def test_committed_baseline_is_empty():
    """The shipped baseline carries no grandfathered findings.

    Every real finding of the initial sweep was fixed or suppressed inline
    with a justification; if this test starts failing someone grew the
    baseline — which is allowed, but must be a reviewed decision (update
    this test alongside the baseline).
    """
    baseline = REPO_ROOT / DEFAULT_BASELINE_NAME
    assert baseline.exists(), "reprolint-baseline.json must be committed"
    assert read_baseline(baseline) == []


def test_every_suppression_in_src_is_reasoned(self_report):
    # RL001 (reason-less noqa) and RL003 (unused noqa) are ordinary findings,
    # so ok() above already covers them — this assertion documents that the
    # suppressed sites are justified exceptions, not silence.
    assert len(self_report.suppressed) >= 4  # sanitizer's own guarded calls


def test_whole_repo_python_surface_parses():
    """Examples and tests must at least be parseable by the linter."""
    report = lint_paths([REPO_ROOT / "examples"], root=REPO_ROOT)
    assert all(f.rule != "RL000" for f in report.findings)
