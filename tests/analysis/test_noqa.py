"""Suppression-directive tests: the ``# repro: noqa[RULE] reason`` grammar."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def lint(source: str, **kwargs):
    return lint_source(textwrap.dedent(source), "fixture.py", **kwargs)


def test_reasoned_noqa_suppresses_the_named_rule():
    kept, suppressed = lint(
        """
        def key(obj):
            return id(obj)  # repro: noqa[ND002] identity key, never persisted
        """)
    assert kept == []
    assert [f.rule for f in suppressed] == ["ND002"]


def test_noqa_only_covers_its_own_line():
    kept, suppressed = lint(
        """
        def key(obj):
            a = id(obj)  # repro: noqa[ND002] identity key, never persisted
            b = id(obj)
            return a, b
        """)
    assert [f.rule for f in kept] == ["ND002"]
    assert kept[0].line == 4
    assert [f.rule for f in suppressed] == ["ND002"]


def test_noqa_does_not_cover_other_rules():
    kept, suppressed = lint(
        """
        def key(obj):
            return hash(obj)  # repro: noqa[ND002] wrong rule named
        """)
    # ND001 still fires; the directive that suppressed nothing is RL003.
    assert sorted(f.rule for f in kept) == ["ND001", "RL003"]
    assert suppressed == []


def test_reasonless_noqa_is_a_finding():
    kept, suppressed = lint(
        """
        def key(obj):
            return id(obj)  # repro: noqa[ND002]
        """)
    # The named rule is still suppressed — but the missing reason is RL001.
    assert [f.rule for f in kept] == ["RL001"]
    assert [f.rule for f in suppressed] == ["ND002"]


def test_unknown_rule_in_noqa_gets_did_you_mean():
    kept, _ = lint(
        """
        def key(obj):
            return obj  # repro: noqa[ND02] typo'd rule code
        """)
    assert [f.rule for f in kept] == ["RL002"]
    assert "did you mean" in kept[0].message
    assert "ND002" in kept[0].message


def test_empty_rule_list_is_a_finding():
    kept, _ = lint(
        """
        value = 1  # repro: noqa[] no rules named
        """)
    assert [f.rule for f in kept] == ["RL002"]


def test_unused_noqa_is_flagged_only_under_the_full_rule_set():
    source = """
    def clean():
        return 1  # repro: noqa[ND001] nothing here actually trips it
    """
    kept_full, _ = lint(source)
    assert [f.rule for f in kept_full] == ["RL003"]
    # Under --select ND002 the ND001 suppression *looks* unused only because
    # the rule did not run; RL003 must stay quiet.
    kept_narrow, _ = lint(source, rules=["ND002"])
    assert kept_narrow == []


def test_multiple_rules_in_one_directive():
    kept, suppressed = lint(
        """
        def key(obj):
            return hash(obj) + id(obj)  # repro: noqa[ND001,ND002] both known salted sources
        """)
    assert kept == []
    assert sorted(f.rule for f in suppressed) == ["ND001", "ND002"]


def test_directive_shaped_text_in_docstrings_is_not_a_directive():
    kept, suppressed = lint(
        '''
        def document():
            """Suppress findings with `# repro: noqa[RULE] reason` comments."""
            return 1

        GRAMMAR = "# repro: noqa[NOPE] not a comment either"
        ''')
    assert kept == []
    assert suppressed == []
