"""Report-format tests: JSON schema round-trip and human rendering."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import lint_paths
from repro.analysis.core import Finding
from repro.analysis.runner import JSON_FORMAT_VERSION, LintReport


def test_finding_round_trips_through_dict():
    finding = Finding(rule="ND001", file="src/m.py", line=12, col=4,
                      message="builtin hash()")
    assert Finding.from_dict(finding.to_dict()) == finding
    assert Finding.from_dict(json.loads(json.dumps(finding.to_dict()))) == finding


def test_render_human_pins_location_format():
    finding = Finding(rule="ND001", file="src/m.py", line=12, col=4,
                      message="builtin hash() is salted")
    assert finding.render() == "src/m.py:12:4: ND001 builtin hash() is salted"


def test_json_document_schema(tmp_path):
    module = tmp_path / "m.py"
    module.write_text(textwrap.dedent(
        """
        def sig(x):
            return hash(x)
        """), encoding="utf-8")
    report = lint_paths([module], root=tmp_path)
    payload = json.loads(report.render_json())
    assert payload["version"] == JSON_FORMAT_VERSION
    assert payload["tool"] == "reprolint"
    assert payload["files_checked"] == 1
    assert set(payload) == {"version", "tool", "rules", "files_checked",
                            "findings", "suppressed", "grandfathered",
                            "stale_baseline"}
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "file", "line", "col", "message"}
    assert Finding.from_dict(finding).rule == "ND001"
    # The document must be bit-stable across runs (CI diffs artifacts).
    assert report.render_json() == lint_paths([module],
                                              root=tmp_path).render_json()


def test_report_ok_reflects_gating():
    assert LintReport().ok
    report = LintReport(findings=[Finding(rule="ND001", file="m.py",
                                          line=1, col=0, message="x")])
    assert not report.ok


def test_human_summary_line(tmp_path):
    module = tmp_path / "clean.py"
    module.write_text("VALUE = 1\n", encoding="utf-8")
    report = lint_paths([module], root=tmp_path)
    assert report.render_human().endswith(
        "0 finding(s), 0 suppressed, 0 baselined, 1 file(s) checked")
