"""Tests for the ZeroER and Full D baselines."""

import numpy as np
import pytest

from repro.baselines.full_training import evaluate_zeroer, train_full_matcher
from repro.baselines.zeroer import TwoComponentGaussianMixture, ZeroER
from repro.exceptions import NotFittedError
from repro.neural.matcher import MatcherConfig


class TestTwoComponentGaussianMixture:
    def test_separates_two_blobs(self, rng):
        low = rng.normal(loc=0.2, scale=0.05, size=(150, 4))
        high = rng.normal(loc=0.8, scale=0.05, size=(50, 4))
        features = np.vstack([low, high])
        mixture = TwoComponentGaussianMixture(random_state=0)
        mixture.fit(features)
        posteriors = mixture.posterior_match(features)
        assert posteriors[:150].mean() < 0.2
        assert posteriors[150:].mean() > 0.8

    def test_weights_sum_to_one(self, rng):
        features = rng.random((100, 3))
        result = TwoComponentGaussianMixture(random_state=1).fit(features)
        assert result.weights.sum() == pytest.approx(1.0)

    def test_requires_fit_before_posterior(self):
        with pytest.raises(NotFittedError):
            TwoComponentGaussianMixture().posterior_match(np.zeros((2, 2)))

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            TwoComponentGaussianMixture().fit(np.zeros((2, 2)))

    def test_log_likelihood_finite(self, rng):
        features = rng.random((50, 5))
        result = TwoComponentGaussianMixture(random_state=2).fit(features)
        assert np.isfinite(result.log_likelihood)
        assert result.num_iterations >= 1


class TestZeroER:
    def test_requires_fit(self, tiny_dataset):
        with pytest.raises(NotFittedError):
            ZeroER().predict_proba(tiny_dataset)

    def test_unsupervised_beats_random_guessing(self, tiny_dataset):
        model = ZeroER(random_state=0).fit(tiny_dataset)
        probabilities = model.predict_proba(tiny_dataset)
        labels = tiny_dataset.labels()
        # Match pairs should receive higher posteriors on average.
        assert probabilities[labels == 1].mean() > probabilities[labels == 0].mean()

    def test_predictions_binary(self, tiny_dataset):
        model = ZeroER(random_state=0).fit(tiny_dataset)
        predictions = model.predict(tiny_dataset, tiny_dataset.test_indices)
        assert set(np.unique(predictions)).issubset({0, 1})

    def test_evaluate_zeroer_metrics(self, tiny_dataset):
        metrics = evaluate_zeroer(tiny_dataset, random_state=0)
        assert 0.0 <= metrics.f1 <= 1.0
        assert metrics.num_examples == len(tiny_dataset.test_indices)


class TestFullTraining:
    def test_full_d_reaches_reasonable_f1(self, tiny_dataset, small_featurizer_config):
        config = MatcherConfig(hidden_dims=(64, 32), epochs=8, batch_size=16,
                               learning_rate=2e-3, random_state=0)
        result = train_full_matcher(tiny_dataset, config, small_featurizer_config)
        assert result.f1 > 0.5
        assert result.num_training_labels == len(tiny_dataset.train_indices)
        assert result.dataset_name == tiny_dataset.name

    def test_full_d_beats_zeroer(self, tiny_dataset, small_featurizer_config):
        """The supervised upper reference should beat the unsupervised baseline."""
        config = MatcherConfig(hidden_dims=(64, 32), epochs=8, batch_size=16,
                               learning_rate=2e-3, random_state=0)
        full = train_full_matcher(tiny_dataset, config, small_featurizer_config)
        zero = evaluate_zeroer(tiny_dataset, random_state=0)
        assert full.f1 > zero.f1
