"""Tests for the scale profiles and RNG helpers."""

import numpy as np
import pytest

from repro._rng import ensure_rng, seed_everything, spawn_rng
from repro.config import available_scales, get_scale, scaled_size
from repro.exceptions import ConfigurationError


class TestScaleProfiles:
    def test_available_scales(self):
        assert {"tiny", "small", "medium", "paper"} <= set(available_scales())

    def test_paper_scale_matches_section_4_2(self):
        paper = get_scale("paper")
        assert paper.iterations == 8
        assert paper.budget_per_iteration == 100
        assert paper.seed_size == 100
        assert paper.size_factor == 1.0

    def test_environment_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "small"
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert get_scale().name == "tiny"

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError):
            get_scale("huge")

    def test_scaled_size(self):
        scale = get_scale("paper")
        assert scaled_size(6144, scale) == 6144
        tiny = get_scale("tiny")
        assert scaled_size(6144, tiny) < 6144
        assert scaled_size(100, tiny, minimum=200) == 200

    def test_scaled_size_invalid(self):
        with pytest.raises(ConfigurationError):
            scaled_size(0, get_scale("tiny"))

    def test_scales_ordered_by_size(self):
        factors = [get_scale(name).size_factor for name in ("tiny", "small", "medium", "paper")]
        assert factors == sorted(factors)


class TestRngHelpers:
    def test_ensure_rng_accepts_none_int_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)
        assert isinstance(ensure_rng(5), np.random.Generator)
        generator = np.random.default_rng(3)
        assert ensure_rng(generator) is generator

    def test_ensure_rng_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_same_seed_same_stream(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_spawn_rng_independent_streams(self):
        parent = ensure_rng(1)
        children = spawn_rng(parent, 3)
        assert len(children) == 3
        values = [child.random() for child in children]
        assert len(set(values)) == 3

    def test_spawn_rng_invalid(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), 0)

    def test_seed_everything_returns_generator(self):
        generator = seed_everything(11)
        assert isinstance(generator, np.random.Generator)
        first = np.random.random()
        seed_everything(11)
        assert np.random.random() == first
