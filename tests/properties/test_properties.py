"""Property-based tests (hypothesis) for the invariants the harness rests on.

Four families of properties, one per satellite of the robustness issue:

* the vectorized CSR graph builder is equivalent to the node-at-a-time
  reference on arbitrary random pools;
* MinHash blocking is stable: signatures are set-functions of the features
  and identically seeded blockers agree on every candidate set;
* the corruption operators stay inside the vocabulary of their input (plus
  the declared abbreviation/noise vocabularies) and are seed-deterministic;
* the scenario oracles are deterministic under ``spawn_rng``-derived seeding:
  the same seed yields the same annotator, no matter the query order.

Examples are capped well below hypothesis' default (the subjects build
graphs and datasets, not pure functions) and ``deadline`` is disabled so a
slow CI machine cannot flake a healthy property.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro._rng import spawn_rng
from repro.analysis import determinism_guard, permuted, shuffled_dict
from repro.active.oracle import (
    ABSTAIN,
    AbstainingOracle,
    ClassConditionalNoisyOracle,
)
from repro.blocking.minhash_lsh import MinHashLSHBlocker, MinHashSignature
from repro.data.record import Record, Table
from repro.data.schema import Attribute, AttributeType, Schema
from repro.datasets.corruptions import (
    _NOISE_TOKENS,
    CorruptionConfig,
    corrupt_text,
    corrupt_values,
)
from repro.datasets.vocabularies import ABBREVIATIONS
from repro.graphs.pair_graph import build_pair_graph, build_pair_graph_reference

# --------------------------------------------------------------------------- #
# SparseAdjacency vs. reference builder
# --------------------------------------------------------------------------- #


def _edge_set(graph):
    return sorted((u, v, round(w, 10)) for u, v, w in graph.edges())


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 24),
    dims=st.integers(2, 8),
    num_clusters=st.integers(1, 4),
    num_neighbors=st.integers(1, 6),
    extra_edge_ratio=st.floats(0.0, 0.3),
    labeled_share=st.floats(0.0, 0.6),
)
def test_sparse_builder_matches_reference_on_random_pools(
        seed, n, dims, num_clusters, num_neighbors, extra_edge_ratio,
        labeled_share):
    rng = np.random.default_rng(seed)
    kwargs = dict(
        representations=rng.normal(size=(n, dims)),
        node_ids=list(range(100, 100 + n)),
        predictions=rng.integers(0, 2, size=n),
        confidences=rng.uniform(0.5, 1.0, size=n),
        match_probabilities=rng.uniform(0.0, 1.0, size=n),
        labeled_mask=rng.uniform(size=n) < labeled_share,
        cluster_labels=rng.integers(0, num_clusters, size=n),
        num_neighbors=num_neighbors,
        extra_edge_ratio=extra_edge_ratio,
    )
    vectorized = build_pair_graph(**kwargs)
    reference = build_pair_graph_reference(**kwargs)
    assert vectorized.num_nodes == reference.num_nodes
    assert _edge_set(vectorized) == _edge_set(reference)


# --------------------------------------------------------------------------- #
# MinHash blocking stability
# --------------------------------------------------------------------------- #

_WORDS = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
          "hotel", "india", "juliett", "kilo", "lima")

_token_sets = st.lists(
    st.lists(st.sampled_from(_WORDS), min_size=1, max_size=6).map(
        lambda tokens: " ".join(tokens)),
    min_size=1, max_size=12)


@settings(max_examples=30, deadline=None)
@given(features=st.lists(st.sampled_from(_WORDS), min_size=1, max_size=10),
       seed=st.integers(0, 2**31 - 1))
def test_minhash_signature_is_a_set_function(features, seed):
    # The determinism guard fails the test if signing consumes any global
    # RNG state — signatures must be pure functions of (features, seed).
    with determinism_guard("minhash signing"):
        minhash = MinHashSignature(num_permutations=32, random_state=seed)
        baseline = minhash.signature(features)
        reversed_order = minhash.signature(list(reversed(features)))
        duplicated = minhash.signature(features + features)
    np.testing.assert_array_equal(baseline, reversed_order)
    np.testing.assert_array_equal(baseline, duplicated)
    assert MinHashSignature.estimated_jaccard(baseline, duplicated) == 1.0
    assert np.all((0 <= baseline) & (baseline < 2**32))


def _table(name: str, titles: list[str]) -> Table:
    schema = Schema(attributes=(Attribute("title", AttributeType.TEXT),),
                    name=name)
    table = Table(name, schema)
    for index, title in enumerate(titles):
        table.add(Record(record_id=f"{name}{index}", values={"title": title}))
    return table


@settings(max_examples=20, deadline=None)
@given(left_titles=_token_sets, right_titles=_token_sets,
       seed=st.integers(0, 2**31 - 1))
def test_identically_seeded_blockers_agree_on_candidates(
        left_titles, right_titles, seed):
    left = _table("l", left_titles)
    right = _table("r", right_titles)
    first = MinHashLSHBlocker(num_permutations=16, num_bands=4,
                              random_state=seed)
    second = MinHashLSHBlocker(num_permutations=16, num_bands=4,
                               random_state=seed)
    with determinism_guard("lsh blocking"):
        candidates = first.block(left, right)
        assert candidates == second.block(left, right)
    # An identical record on both sides always collides in every band.
    if left_titles[0] == right_titles[0]:
        assert ("l0", "r0") in candidates


# --------------------------------------------------------------------------- #
# Corruption operators stay in vocabulary
# --------------------------------------------------------------------------- #

_ALLOWED_EXTRA = (
    {word for abbr in ABBREVIATIONS.values() for word in abbr.split()}
    | {word for noise in _NOISE_TOKENS for word in noise.split()})

_values_strategy = st.dictionaries(
    keys=st.sampled_from(("title", "brand", "category")),
    values=st.lists(st.sampled_from(_WORDS + tuple(ABBREVIATIONS)),
                    min_size=1, max_size=8).map(" ".join),
    min_size=1, max_size=3)

_config_strategy = st.builds(
    CorruptionConfig,
    typo_rate=st.just(0.0),
    token_drop_rate=st.floats(0.0, 0.5),
    token_swap_rate=st.floats(0.0, 0.5),
    abbreviation_rate=st.floats(0.0, 1.0),
    missing_rate=st.floats(0.0, 0.5),
    numeric_noise=st.just(0.0),
    injection_rate=st.floats(0.0, 0.5),
    case_noise_rate=st.floats(0.0, 0.5),
)


@settings(max_examples=40, deadline=None)
@given(values=_values_strategy, config=_config_strategy,
       seed=st.integers(0, 2**31 - 1))
def test_corruption_never_leaves_the_vocabulary(values, config, seed):
    allowed = (_ALLOWED_EXTRA
               | {token for value in values.values() for token in value.split()})
    allowed |= {token.upper() for token in allowed}
    corrupted = corrupt_values(values, config, np.random.default_rng(seed))
    assert set(corrupted) == set(values)
    for value in corrupted.values():
        assert isinstance(value, str)
        for token in value.split():
            assert token in allowed


@settings(max_examples=40, deadline=None)
@given(values=_values_strategy, config=_config_strategy,
       seed=st.integers(0, 2**31 - 1))
def test_corruption_is_seed_deterministic(values, config, seed):
    with determinism_guard("corruption"):
        first = corrupt_values(values, config, np.random.default_rng(seed))
        second = corrupt_values(values, config, np.random.default_rng(seed))
    assert first == second


def test_shuffled_dict_probe_detects_corruption_order_dependence():
    """``corrupt_values`` draws RNG while iterating its input dict, so its
    output depends on insertion order — detectable with ``shuffled_dict``.

    This is a *documented* order dependence, not a bug to fix: records are
    always built in schema order, so the order is deterministic per run and
    across runs, and changing the iteration strategy would regenerate every
    synthetic benchmark.  The probe exists so that if someone ever feeds a
    non-schema-ordered mapping in, the sanitizer toolkit can show why two
    "identical" runs diverged.
    """
    values = {"title": "alpha bravo charlie", "brand": "delta echo",
              "category": "foxtrot golf hotel"}
    config = CorruptionConfig(typo_rate=0.1, token_drop_rate=0.2,
                              token_swap_rate=0.1, abbreviation_rate=0.2,
                              missing_rate=0.1, numeric_noise=0.0,
                              injection_rate=0.2)
    baseline = corrupt_values(values, config, np.random.default_rng(5))
    reordered = corrupt_values(shuffled_dict(values), config,
                               np.random.default_rng(5))
    assert baseline != reordered
    # Same insertion order ⇒ identical output: the dependence is on order
    # alone, never on anything hidden.
    again = corrupt_values(dict(values), config, np.random.default_rng(5))
    assert baseline == again


@settings(max_examples=40, deadline=None)
@given(value=st.lists(st.sampled_from(_WORDS), min_size=1, max_size=8)
       .map(" ".join),
       seed=st.integers(0, 2**31 - 1))
def test_zero_rate_corruption_is_identity(value, seed):
    silent = CorruptionConfig(typo_rate=0.0, token_drop_rate=0.0,
                              token_swap_rate=0.0, abbreviation_rate=0.0,
                              missing_rate=0.0, numeric_noise=0.0,
                              injection_rate=0.0, case_noise_rate=0.0)
    assert corrupt_text(value, silent, np.random.default_rng(seed)) == value


# --------------------------------------------------------------------------- #
# Oracle determinism under spawn_rng-derived seeding
# --------------------------------------------------------------------------- #


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1),
       fp=st.floats(0.0, 1.0), fn=st.floats(0.0, 1.0))
def test_class_conditional_oracle_is_seed_deterministic(tiny_dataset, seed,
                                                        fp, fn):
    first = ClassConditionalNoisyOracle(tiny_dataset, false_positive_rate=fp,
                                        false_negative_rate=fn,
                                        random_state=seed)
    second = ClassConditionalNoisyOracle(tiny_dataset, false_positive_rate=fp,
                                         false_negative_rate=fn,
                                         random_state=seed)
    indices = range(min(60, len(tiny_dataset.pairs)))
    forward = [first.query(i) for i in indices]
    backward = [second.query(i) for i in reversed(list(indices))]
    assert forward == list(reversed(backward))
    assert set(forward) <= {0, 1}


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), abstain=st.floats(0.0, 1.0))
def test_abstaining_oracle_is_seed_deterministic(tiny_dataset, seed, abstain):
    first = AbstainingOracle(tiny_dataset, abstain_probability=abstain,
                             random_state=seed)
    second = AbstainingOracle(tiny_dataset, abstain_probability=abstain,
                              random_state=seed)
    indices = list(range(min(60, len(tiny_dataset.pairs))))
    assert [first.peek(i) for i in indices] == [second.peek(i) for i in indices]
    assert set(first.peek(i) for i in indices) <= {0, 1, ABSTAIN}


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), abstain=st.floats(0.0, 1.0),
       order_seed=st.integers(0, 100))
def test_abstention_outcomes_are_independent_of_query_order(
        tiny_dataset, seed, abstain, order_seed):
    """Per-pair abstention must be a function of (pair, seed), not of the
    order the loop happens to query in — the runtime analogue of ND005 for
    abstention order."""
    oracle = AbstainingOracle(tiny_dataset, abstain_probability=abstain,
                              random_state=seed)
    indices = list(range(min(60, len(tiny_dataset.pairs))))
    with determinism_guard("abstention order probe"):
        in_order = {i: oracle.peek(i) for i in indices}
        reordered = {i: oracle.peek(i)
                     for i in permuted(indices, seed=order_seed)}
    assert in_order == reordered


# --------------------------------------------------------------------------- #
# Vectorizer order-independence (the ND005 fix, probed at runtime)
# --------------------------------------------------------------------------- #

@settings(max_examples=20, deadline=None)
@given(texts=_token_sets, order_seed=st.integers(0, 100))
def test_tfidf_fit_is_independent_of_corpus_order(texts, order_seed):
    from repro.text.vectorizers import TfidfVectorizer

    with determinism_guard("tfidf fit"):
        baseline = TfidfVectorizer().fit(texts)
        reordered = TfidfVectorizer().fit(permuted(texts, seed=order_seed))
    assert baseline.vocabulary == reordered.vocabulary
    np.testing.assert_array_equal(baseline._idf, reordered._idf)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 6))
def test_spawn_rng_streams_are_reproducible_and_distinct(seed, n):
    first = spawn_rng(np.random.default_rng(seed), n)
    second = spawn_rng(np.random.default_rng(seed), n)
    draws_first = [rng.random(8).tolist() for rng in first]
    draws_second = [rng.random(8).tolist() for rng in second]
    assert draws_first == draws_second
    if n > 1:
        assert draws_first[0] != draws_first[1]
