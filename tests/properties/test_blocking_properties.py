"""Property-based tests for the batched / sharded / streamed blocking paths.

Every fast path must be *provably* a reimplementation, not an approximation:

* ``MinHashSignature.signature_matrix`` is bit-identical to stacking the
  per-record ``signature`` reference, empties included;
* batched banding (``block``) equals the seed dict-of-tuples reference for
  any shard count, with and without q-grams;
* streaming (``block_iter``) yields exactly ``block``'s pairs for any chunk
  size, each at most once, in chunks no larger than requested;
* the chunk-wise q-gram/token joins equal their per-key references.

Example counts stay low (each example builds tables and runs several
blockers) and ``deadline`` is off, following the conventions of
``test_properties.py``.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.blocking.minhash_lsh import MinHashLSHBlocker, MinHashSignature
from repro.blocking.qgram_blocking import QGramBlocker
from repro.blocking.token_blocking import TokenBlocker
from repro.data.record import Record, Table
from repro.data.schema import Attribute, AttributeType, Schema

_WORDS = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
          "hotel", "india", "juliett", "kilo", "lima")

# Titles may be empty: blank records exercise the empty-signature banding
# skip on both the reference and the batched path.
_titles = st.lists(
    st.lists(st.sampled_from(_WORDS), min_size=0, max_size=6).map(
        lambda tokens: " ".join(tokens)),
    min_size=1, max_size=14)

_feature_sets = st.lists(
    st.sets(st.sampled_from(_WORDS), min_size=0, max_size=8),
    min_size=0, max_size=12)


def _table(name: str, titles: list[str]) -> Table:
    schema = Schema(attributes=(Attribute("title", AttributeType.TEXT),),
                    name=name)
    table = Table(name, schema)
    for index, title in enumerate(titles):
        table.add(Record(record_id=f"{name}{index}", values={"title": title}))
    return table


@settings(max_examples=30, deadline=None)
@given(feature_sets=_feature_sets, seed=st.integers(0, 2**31 - 1))
def test_signature_matrix_bit_identical_to_reference(feature_sets, seed):
    minhash = MinHashSignature(num_permutations=16, random_state=seed)
    matrix = minhash.signature_matrix(feature_sets)
    assert matrix.shape == (len(feature_sets), 16)
    for row, features in enumerate(feature_sets):
        np.testing.assert_array_equal(matrix[row],
                                      minhash.signature(features))


@settings(max_examples=20, deadline=None)
@given(left_titles=_titles, right_titles=_titles,
       seed=st.integers(0, 2**31 - 1),
       num_shards=st.integers(1, 5),
       use_qgrams=st.booleans())
def test_sharded_batched_block_equals_reference(
        left_titles, right_titles, seed, num_shards, use_qgrams):
    left = _table("l", left_titles)
    right = _table("r", right_titles)
    blocker = MinHashLSHBlocker(num_permutations=16, num_bands=4,
                                use_qgrams=use_qgrams, random_state=seed,
                                num_shards=num_shards)
    assert blocker.block(left, right) == blocker.block_reference(left, right)


@settings(max_examples=20, deadline=None)
@given(left_titles=_titles, right_titles=_titles,
       seed=st.integers(0, 2**31 - 1),
       chunk_size=st.integers(1, 40),
       use_qgrams=st.booleans())
def test_block_iter_streams_exactly_the_block_pairs(
        left_titles, right_titles, seed, chunk_size, use_qgrams):
    left = _table("l", left_titles)
    right = _table("r", right_titles)
    blocker = MinHashLSHBlocker(num_permutations=16, num_bands=4,
                                use_qgrams=use_qgrams, random_state=seed)
    chunks = list(blocker.block_iter(left, right, chunk_size=chunk_size))
    pairs = [pair for chunk in chunks for pair in chunk]
    assert len(pairs) == len(set(pairs))
    assert set(pairs) == blocker.block(left, right)
    assert all(len(chunk) <= chunk_size for chunk in chunks)


@settings(max_examples=20, deadline=None)
@given(left_titles=_titles, right_titles=_titles,
       max_block_size=st.integers(1, 12),
       chunk_size=st.integers(1, 30))
def test_token_blocker_batched_and_streamed_equal_reference(
        left_titles, right_titles, max_block_size, chunk_size):
    left = _table("l", left_titles)
    right = _table("r", right_titles)
    blocker = TokenBlocker(max_block_size=max_block_size)
    reference = blocker.block_reference(left, right)
    assert blocker.block(left, right) == reference
    streamed = [pair
                for chunk in blocker.block_iter(left, right,
                                                chunk_size=chunk_size)
                for pair in chunk]
    assert len(streamed) == len(set(streamed))
    assert set(streamed) == reference


@settings(max_examples=20, deadline=None)
@given(left_titles=_titles, right_titles=_titles,
       min_shared=st.integers(1, 6),
       max_block_size=st.integers(1, 12),
       chunk_size=st.integers(1, 30))
def test_qgram_blocker_batched_and_streamed_equal_reference(
        left_titles, right_titles, min_shared, max_block_size, chunk_size):
    left = _table("l", left_titles)
    right = _table("r", right_titles)
    blocker = QGramBlocker(min_shared_qgrams=min_shared,
                           max_block_size=max_block_size)
    reference = blocker.block_reference(left, right)
    assert blocker.block(left, right) == reference
    streamed = [pair
                for chunk in blocker.block_iter(left, right,
                                                chunk_size=chunk_size)
                for pair in chunk]
    assert len(streamed) == len(set(streamed))
    assert set(streamed) == reference
