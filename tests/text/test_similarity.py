"""Tests for repro.text.similarity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import (
    SIMILARITY_FUNCTIONS,
    cosine_token_similarity,
    dice_coefficient,
    exact_match,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
    qgram_jaccard_similarity,
)

_SHORT_TEXT = st.text(alphabet="abcdef ", max_size=15)


class TestLevenshtein:
    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("abc", "abc") == 0
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_similarity_bounds(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0

    @settings(max_examples=40, deadline=None)
    @given(a=_SHORT_TEXT, b=_SHORT_TEXT)
    def test_property_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @settings(max_examples=40, deadline=None)
    @given(a=_SHORT_TEXT, b=_SHORT_TEXT, c=_SHORT_TEXT)
    def test_property_triangle_inequality(self, a, b, c):
        assert (levenshtein_distance(a, c)
                <= levenshtein_distance(a, b) + levenshtein_distance(b, c))

    @staticmethod
    def _dp_distance(a: str, b: str) -> int:
        """The seed-era row DP, kept here as the correctness oracle."""
        if not a:
            return len(b)
        if not b:
            return len(a)
        previous = list(range(len(b) + 1))
        for i, char_a in enumerate(a, start=1):
            current = [i]
            for j, char_b in enumerate(b, start=1):
                cost = 0 if char_a == char_b else 1
                current.append(min(previous[j] + 1, current[j - 1] + 1,
                                   previous[j - 1] + cost))
            previous = current
        return previous[-1]

    @settings(max_examples=120, deadline=None)
    @given(a=st.text(alphabet="abcd 1", max_size=70),
           b=st.text(alphabet="abcd 1", max_size=70))
    def test_property_bitparallel_matches_dp(self, a, b):
        """The Myers bit-parallel path must equal the dynamic program."""
        assert levenshtein_distance(a, b) == self._dp_distance(a, b)

    def test_long_strings_use_dp_fallback(self):
        a = "ab" * 60
        b = "ba" * 60 + "c"
        assert levenshtein_distance(a, b) == self._dp_distance(a, b)

    def test_upper_bound_length_gap_early_exit(self):
        # True distance is 10; the length-gap lower bound (10) already
        # meets the bound, so the value returned is >= the bound.
        assert levenshtein_distance("a" * 12, "aa", upper_bound=5) >= 5

    def test_upper_bound_returns_exact_distance_when_under_bound(self):
        assert levenshtein_distance("kitten", "sitting", upper_bound=10) == 3

    def test_upper_bound_row_minimum_abort(self):
        # Dissimilar strings of equal length: every DP row quickly exceeds
        # the bound; whatever is returned must be >= the bound and never
        # exceed the true distance's contract.
        value = levenshtein_distance("abcdefgh" * 10, "12345678" * 10,
                                     upper_bound=3)
        assert value >= 3

    @settings(max_examples=60, deadline=None)
    @given(a=_SHORT_TEXT, b=_SHORT_TEXT, bound=st.integers(1, 20))
    def test_property_upper_bound_contract(self, a, b, bound):
        exact = levenshtein_distance(a, b)
        bounded = levenshtein_distance(a, b, upper_bound=bound)
        if exact < bound:
            assert bounded == exact
        else:
            assert bounded >= bound


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        # Classic example: MARTHA vs MARHTA has Jaro similarity ~0.944.
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_winkler_boosts_prefix(self):
        plain = jaro_similarity("prefixes", "prefixed")
        winkler = jaro_winkler_similarity("prefixes", "prefixed")
        assert winkler >= plain

    def test_empty_handling(self):
        assert jaro_similarity("", "") == 1.0
        assert jaro_similarity("a", "") == 0.0


class TestSetSimilarities:
    def test_jaccard(self):
        assert jaccard_similarity("red car", "red bike") == pytest.approx(1 / 3)
        assert jaccard_similarity("", "") == 1.0
        assert jaccard_similarity("a", "") == 0.0

    def test_overlap(self):
        assert overlap_coefficient("red car", "red") == 1.0

    def test_dice(self):
        assert dice_coefficient("red car", "red bike") == pytest.approx(0.5)

    def test_qgram_jaccard_tolerates_typos(self):
        clean = jaccard_similarity("panasonic", "panasonik")
        grams = qgram_jaccard_similarity("panasonic", "panasonik")
        assert grams > clean

    def test_cosine_tokens(self):
        assert cosine_token_similarity("a b", "a b") == pytest.approx(1.0)
        assert cosine_token_similarity("a", "b") == 0.0


class TestMongeElkan:
    def test_identical(self):
        assert monge_elkan_similarity("canon eos", "canon eos") == pytest.approx(1.0)

    def test_partial_token_match_beats_jaccard(self):
        a, b = "canon rebel t7i", "cannon rebl t7i kit"
        assert monge_elkan_similarity(a, b) > jaccard_similarity(a, b)

    def test_empty(self):
        assert monge_elkan_similarity("", "") == 1.0
        assert monge_elkan_similarity("a", "") == 0.0


class TestNumericAndExact:
    def test_exact(self):
        assert exact_match("Sony  TV", "sony tv") == 1.0
        assert exact_match("sony", "lg") == 0.0

    def test_numeric_identical(self):
        assert numeric_similarity("100", "100.0") == 1.0

    def test_numeric_relative_difference(self):
        assert numeric_similarity("100", "90") == pytest.approx(0.9)

    def test_numeric_missing(self):
        assert numeric_similarity("", "") == 1.0
        assert numeric_similarity("5", "") == 0.0

    def test_numeric_falls_back_for_text(self):
        assert 0.0 <= numeric_similarity("abc", "abd") <= 1.0

    def test_numeric_handles_commas(self):
        assert numeric_similarity("1,000", "1000") == 1.0


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(SIMILARITY_FUNCTIONS))
    def test_all_measures_bounded(self, name):
        function = SIMILARITY_FUNCTIONS[name]
        for a, b in [("sony tv", "sony television"), ("", ""), ("abc", ""),
                     ("12.5", "13.0"), ("exact", "exact")]:
            value = function(a, b)
            assert 0.0 <= value <= 1.0

    @pytest.mark.parametrize("name", sorted(SIMILARITY_FUNCTIONS))
    def test_identity_scores_one(self, name):
        function = SIMILARITY_FUNCTIONS[name]
        assert function("canon eos 5d", "canon eos 5d") == pytest.approx(1.0)
