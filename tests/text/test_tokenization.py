"""Tests for repro.text.tokenization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.tokenization import (
    normalize,
    qgram_set,
    qgrams,
    token_counts,
    token_set,
    tokenize,
    vocabulary,
    word_ngrams,
)


class TestNormalize:
    def test_lowercases_and_collapses_whitespace(self):
        assert normalize("  Sony   BRAVIA  TV ") == "sony bravia tv"

    def test_empty(self):
        assert normalize("") == ""


class TestTokenize:
    def test_alphanumeric_tokens(self):
        assert tokenize("Canon EOS-5D, Mark IV!") == ["canon", "eos", "5d", "mark", "iv"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_token_set_removes_duplicates(self):
        assert token_set("the the cat") == {"the", "cat"}

    def test_token_counts(self):
        counts = token_counts("a b a")
        assert counts["a"] == 2
        assert counts["b"] == 1


class TestQgrams:
    def test_padded_qgrams(self):
        grams = qgrams("ab", q=2)
        assert grams == ["#a", "ab", "b#"]

    def test_unpadded_qgrams(self):
        assert qgrams("abcd", q=3, pad=False) == ["abc", "bcd"]

    def test_short_string_returns_whole(self):
        assert qgrams("ab", q=5, pad=False) == ["ab"]

    def test_empty_string(self):
        assert qgrams("", q=3) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    def test_qgram_set_is_set(self):
        assert isinstance(qgram_set("abcabc", 2), set)

    @settings(max_examples=40, deadline=None)
    @given(text=st.text(alphabet="abcde ", max_size=30),
           q=st.integers(min_value=1, max_value=5))
    def test_property_gram_lengths(self, text, q):
        for gram in qgrams(text, q=q, pad=False):
            assert 1 <= len(gram) <= q


class TestWordNgrams:
    def test_bigrams(self):
        assert word_ngrams("new york city", 2) == ["new_york", "york_city"]

    def test_short_text(self):
        assert word_ngrams("hello", 2) == ["hello"]

    def test_empty(self):
        assert word_ngrams("", 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            word_ngrams("a b", 0)


class TestVocabulary:
    def test_min_count_filters(self):
        vocab = vocabulary(["a b", "a c", "a"], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_indices_are_dense(self):
        vocab = vocabulary(["z y x"])
        assert sorted(vocab.values()) == list(range(len(vocab)))
