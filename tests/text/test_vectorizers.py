"""Tests for repro.text.vectorizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotFittedError
from repro.text.vectorizers import (
    HashingVectorizer,
    HashingVectorizerConfig,
    TfidfVectorizer,
    cosine_similarity_matrix,
)


class TestHashingVectorizer:
    def test_output_shape(self):
        vectorizer = HashingVectorizer(HashingVectorizerConfig(num_features=32))
        matrix = vectorizer.transform(["sony tv", "lg monitor", ""])
        assert matrix.shape == (3, 32)

    def test_empty_input(self):
        vectorizer = HashingVectorizer()
        assert vectorizer.transform([]).shape == (0, vectorizer.num_features)

    def test_deterministic(self):
        vectorizer = HashingVectorizer()
        a = vectorizer.transform_one("canon eos rebel")
        b = vectorizer.transform_one("canon eos rebel")
        assert np.array_equal(a, b)

    def test_normalization(self):
        vectorizer = HashingVectorizer(HashingVectorizerConfig(num_features=64))
        vector = vectorizer.transform_one("some text with several tokens")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_is_zero_vector(self):
        vectorizer = HashingVectorizer()
        assert np.allclose(vectorizer.transform_one(""), 0.0)

    def test_similar_texts_have_higher_cosine(self):
        vectorizer = HashingVectorizer(HashingVectorizerConfig(num_features=256))
        a = vectorizer.transform_one("canon eos rebel t7i dslr camera")
        b = vectorizer.transform_one("canon eos rebel t7i camera kit")
        c = vectorizer.transform_one("nike air max running shoe")
        sim_ab = float(a @ b)
        sim_ac = float(a @ c)
        assert sim_ab > sim_ac

    def test_invalid_num_features(self):
        with pytest.raises(ValueError):
            HashingVectorizer(HashingVectorizerConfig(num_features=0))

    def test_different_seeds_hash_differently(self):
        a = HashingVectorizer(HashingVectorizerConfig(num_features=64, seed=1))
        b = HashingVectorizer(HashingVectorizerConfig(num_features=64, seed=2))
        text = "canon eos"
        assert not np.array_equal(a.transform_one(text), b.transform_one(text))

    @settings(max_examples=25, deadline=None)
    @given(text=st.text(alphabet="abcdef ", max_size=40))
    def test_property_norm_at_most_one(self, text):
        vectorizer = HashingVectorizer(HashingVectorizerConfig(num_features=64))
        assert np.linalg.norm(vectorizer.transform_one(text)) <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(texts=st.lists(st.text(alphabet="abcdef #,1", max_size=30), max_size=8),
           signed=st.booleans(), normalize=st.booleans(), use_qgrams=st.booleans())
    def test_property_bulk_transform_bit_identical_to_transform_one(
            self, texts, signed, normalize, use_qgrams):
        """The bulk path must match stacked transform_one bit for bit."""
        config = HashingVectorizerConfig(num_features=32, signed=signed,
                                         normalize=normalize, use_qgrams=use_qgrams)
        vectorizer = HashingVectorizer(config)
        expected = (np.vstack([vectorizer.transform_one(text) for text in texts])
                    if texts else np.zeros((0, 32)))
        bulk = vectorizer.transform(texts)
        assert bulk.dtype == np.float64
        assert np.array_equal(expected, bulk)

    def test_bulk_transform_feature_table_reused_across_calls(self):
        vectorizer = HashingVectorizer(HashingVectorizerConfig(num_features=64))
        first = vectorizer.transform(["canon eos rebel"])
        table_size = len(vectorizer._feature_table)
        assert table_size > 0
        second = vectorizer.transform(["canon eos rebel"])
        assert len(vectorizer._feature_table) == table_size
        assert np.array_equal(first, second)

    def test_bulk_transform_all_empty_texts(self):
        vectorizer = HashingVectorizer(HashingVectorizerConfig(num_features=16))
        matrix = vectorizer.transform(["", "   ", ""])
        assert matrix.shape == (3, 16)
        assert np.allclose(matrix, 0.0)


class TestTfidfVectorizer:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            TfidfVectorizer().transform(["a"])
        with pytest.raises(NotFittedError):
            _ = TfidfVectorizer().vocabulary

    def test_fit_transform_shape(self):
        corpus = ["sony tv", "lg tv", "sony camera"]
        matrix = TfidfVectorizer().fit_transform(corpus)
        assert matrix.shape[0] == 3
        assert matrix.shape[1] == 4  # sony, tv, lg, camera

    def test_rows_are_normalized(self):
        matrix = TfidfVectorizer().fit_transform(["a b c", "a a b"])
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms, 1.0)

    def test_min_df_filters_rare_tokens(self):
        vectorizer = TfidfVectorizer(min_df=2)
        vectorizer.fit(["rare token here", "token again", "token thrice"])
        assert "token" in vectorizer.vocabulary
        assert "rare" not in vectorizer.vocabulary

    def test_max_features_caps_vocabulary(self):
        vectorizer = TfidfVectorizer(max_features=2)
        vectorizer.fit(["a b c d", "a b c", "a b", "a"])
        assert len(vectorizer.vocabulary) == 2
        assert set(vectorizer.vocabulary) == {"a", "b"}

    def test_idf_downweights_common_tokens(self):
        vectorizer = TfidfVectorizer()
        matrix = vectorizer.fit_transform(["common rare", "common other", "common third"])
        common_column = vectorizer.vocabulary["common"]
        rare_column = vectorizer.vocabulary["rare"]
        assert matrix[0, rare_column] > matrix[0, common_column]

    def test_unknown_tokens_ignored_at_transform(self):
        vectorizer = TfidfVectorizer().fit(["a b"])
        matrix = vectorizer.transform(["c d"])
        assert np.allclose(matrix, 0.0)

    def test_invalid_min_df(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(min_df=0)

    @settings(max_examples=30, deadline=None)
    @given(corpus=st.lists(st.text(alphabet="abc d", max_size=25), min_size=1, max_size=6),
           texts=st.lists(st.text(alphabet="abc de", max_size=25), max_size=6))
    def test_property_sparse_fill_matches_dense_accumulation(self, corpus, texts):
        """The per-row count fill must equal the seed dense += accumulation."""
        vectorizer = TfidfVectorizer().fit(corpus)
        from repro.text.tokenization import tokenize
        dense = np.zeros((len(texts), len(vectorizer.vocabulary)), dtype=np.float64)
        for row, text in enumerate(texts):
            for token in tokenize(text):
                column = vectorizer.vocabulary.get(token)
                if column is not None:
                    dense[row, column] += 1.0
        dense *= vectorizer._idf
        norms = np.linalg.norm(dense, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        assert np.array_equal(vectorizer.transform(texts), dense / norms)


class TestCosineSimilarityMatrix:
    def test_self_similarity_is_one(self):
        data = np.random.default_rng(0).normal(size=(5, 8))
        sims = cosine_similarity_matrix(data)
        assert np.allclose(np.diag(sims), 1.0)

    def test_symmetric(self):
        data = np.random.default_rng(1).normal(size=(6, 4))
        sims = cosine_similarity_matrix(data)
        assert np.allclose(sims, sims.T)

    def test_two_matrix_shape(self):
        a = np.random.default_rng(2).normal(size=(3, 4))
        b = np.random.default_rng(3).normal(size=(5, 4))
        assert cosine_similarity_matrix(a, b).shape == (3, 5)

    def test_zero_rows_do_not_produce_nan(self):
        data = np.zeros((2, 3))
        sims = cosine_similarity_matrix(data)
        assert not np.any(np.isnan(sims))
