"""Structural field coverage for content fingerprints.

Every content fingerprint of the package (settings, scenarios, configs) used
to enumerate its payload field by field — which is exactly how the PR 6/7
drift bugs happened: a dataclass gained a field and the hand-maintained
payload silently did not.  :func:`fingerprint_fields` derives the field list
from the dataclass itself, so a new field is hashed *by construction* and
forgetting it is impossible; the only editorial decision left is the
explicit ``exclude`` list, which :func:`fingerprint_fields` validates against
the real fields so a typo (or a renamed field) fails loudly instead of
silently widening coverage.

The payload *values* keep their established serialization
(``dataclasses.asdict`` for nested dataclasses, the raw value otherwise), so
switching a fingerprint to this helper is provably value-preserving — the
regression tests pin the old hand-built payloads against the derived ones.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable


def fingerprint_fields(cls: type, exclude: Iterable[str] = ()) -> tuple[str, ...]:
    """Field names of dataclass ``cls`` that a fingerprint must cover.

    ``exclude`` names fields deliberately left out of the hash (grid-shaping
    knobs, human-facing descriptions); every excluded name must actually be
    a field, so stale exclusions are impossible.  The returned order is the
    dataclass declaration order — stable, and irrelevant to the hash because
    payloads are serialized with ``sort_keys=True``.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    names = tuple(field.name for field in dataclasses.fields(cls))
    excluded = tuple(exclude)
    unknown = sorted(set(excluded) - set(names))
    if unknown:
        raise ValueError(
            f"exclude names {unknown} are not fields of {cls.__name__}; "
            f"fields are {sorted(names)}")
    return tuple(name for name in names if name not in excluded)


def fingerprint_payload(obj: Any, fields: Iterable[str]) -> dict[str, Any]:
    """JSON-ready payload of ``obj``'s ``fields`` for canonical hashing.

    Nested dataclasses are expanded with :func:`dataclasses.asdict` (the
    serialization every existing fingerprint already used); everything else
    passes through untouched.
    """
    payload: dict[str, Any] = {}
    for name in fields:
        value = getattr(obj, name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            value = dataclasses.asdict(value)
        payload[name] = value
    return payload
