"""The "Full D" baseline: training the matcher on the complete training split.

Section 4.3 compares the active-learning methods against a matcher trained
with the entire labeled training set — the no-resource-limit upper reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import RandomState
from repro.data.dataset import EMDataset
from repro.evaluation.metrics import MatchingMetrics, matching_metrics
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer
from repro.neural.matcher import MatcherConfig, NeuralMatcher


@dataclass
class FullTrainingResult:
    """Outcome of a Full D run."""

    dataset_name: str
    num_training_labels: int
    test_metrics: MatchingMetrics
    matcher: NeuralMatcher

    @property
    def f1(self) -> float:
        return self.test_metrics.f1


def train_full_matcher(
    dataset: EMDataset,
    matcher_config: MatcherConfig | None = None,
    featurizer_config: FeaturizerConfig | None = None,
) -> FullTrainingResult:
    """Train on the full train split and evaluate on the test split (Full D)."""
    featurizer = PairFeaturizer(featurizer_config)
    features = featurizer.transform(dataset)

    train_indices = dataset.train_indices
    validation_indices = dataset.validation_indices
    test_indices = dataset.test_indices

    matcher = NeuralMatcher(input_dim=features.shape[1],
                            config=matcher_config or MatcherConfig())
    matcher.fit(
        features[train_indices], dataset.labels(train_indices),
        validation_features=features[validation_indices],
        validation_labels=dataset.labels(validation_indices),
    )
    predictions = matcher.predict(features[test_indices])
    metrics = matching_metrics(dataset.labels(test_indices), predictions)
    return FullTrainingResult(
        dataset_name=dataset.name,
        num_training_labels=len(train_indices),
        test_metrics=metrics,
        matcher=matcher,
    )


def evaluate_zeroer(dataset: EMDataset, random_state: RandomState = None) -> MatchingMetrics:
    """Fit ZeroER on the train+test pool and report test-split metrics.

    Convenience wrapper used by the Table 4 harness: the paper reports ZeroER
    on the same held-out test set as the other methods.
    """
    from repro.baselines.zeroer import ZeroER  # local import avoids a cycle

    model = ZeroER(random_state=random_state)
    pool = np.concatenate([dataset.train_indices, dataset.test_indices])
    model.fit(dataset, pool)
    predictions = model.predict(dataset, dataset.test_indices)
    return matching_metrics(dataset.labels(dataset.test_indices), predictions)
