"""Non-active-learning baselines: ZeroER (unsupervised) and Full D (fully trained)."""

from repro.baselines.full_training import FullTrainingResult, evaluate_zeroer, train_full_matcher
from repro.baselines.zeroer import TwoComponentGaussianMixture, ZeroER

__all__ = [
    "FullTrainingResult",
    "TwoComponentGaussianMixture",
    "ZeroER",
    "evaluate_zeroer",
    "train_full_matcher",
]
