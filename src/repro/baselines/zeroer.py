"""ZeroER baseline (Wu et al., 2020): entity resolution with zero labeled examples.

ZeroER assumes that the similarity feature vectors of match pairs are
distributed differently from those of non-match pairs, and fits a
two-component generative mixture to the *unlabeled* feature vectors; the
component with the higher mean similarity is interpreted as the match class.

This reimplementation uses attribute-wise similarity features (the same
model-agnostic features the original system builds with Magellan) and a
diagonal-covariance Gaussian mixture fitted by expectation-maximization,
written from scratch on NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.data.dataset import EMDataset
from repro.exceptions import NotFittedError
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer

_EPSILON = 1e-9


@dataclass
class GaussianMixtureResult:
    """Fitted parameters of the two-component diagonal Gaussian mixture."""

    means: np.ndarray
    variances: np.ndarray
    weights: np.ndarray
    log_likelihood: float
    num_iterations: int


class TwoComponentGaussianMixture:
    """Diagonal-covariance GMM with exactly two components, fitted by EM."""

    def __init__(self, max_iterations: int = 200, tolerance: float = 1e-6,
                 random_state: RandomState = None) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.random_state = random_state
        self.result: GaussianMixtureResult | None = None

    @staticmethod
    def _log_gaussian(features: np.ndarray, mean: np.ndarray,
                      variance: np.ndarray) -> np.ndarray:
        """Log density of a diagonal Gaussian for every row of ``features``."""
        variance = np.maximum(variance, _EPSILON)
        log_norm = -0.5 * np.sum(np.log(2.0 * np.pi * variance))
        deviation = features - mean
        return log_norm - 0.5 * np.sum(deviation * deviation / variance, axis=1)

    def fit(self, features: np.ndarray) -> GaussianMixtureResult:
        """Fit the mixture to ``features`` and return the parameters."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or len(features) < 4:
            raise ValueError("features must be a 2-D array with at least 4 rows")
        rng = ensure_rng(self.random_state)
        n, d = features.shape

        # Initialize by splitting on the mean total similarity: rows above the
        # overall mean seed the "match" component, the rest the "non-match".
        totals = features.mean(axis=1)
        threshold = float(np.median(totals))
        high = features[totals >= threshold]
        low = features[totals < threshold]
        if len(high) == 0 or len(low) == 0:
            split = rng.random(n) < 0.5
            high, low = features[split], features[~split]
        means = np.vstack([low.mean(axis=0), high.mean(axis=0)])
        variances = np.vstack([low.var(axis=0) + _EPSILON, high.var(axis=0) + _EPSILON])
        weights = np.array([len(low) / n, len(high) / n])

        previous_log_likelihood = -np.inf
        responsibilities = np.zeros((n, 2))
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            # E step.
            log_densities = np.column_stack([
                np.log(weights[0] + _EPSILON) + self._log_gaussian(features, means[0], variances[0]),
                np.log(weights[1] + _EPSILON) + self._log_gaussian(features, means[1], variances[1]),
            ])
            max_log = log_densities.max(axis=1, keepdims=True)
            normalized = np.exp(log_densities - max_log)
            totals = normalized.sum(axis=1, keepdims=True)
            responsibilities = normalized / totals
            log_likelihood = float(np.sum(np.log(totals.reshape(-1)) + max_log.reshape(-1)))

            # M step.
            for component in range(2):
                resp = responsibilities[:, component]
                mass = resp.sum() + _EPSILON
                means[component] = (resp[:, None] * features).sum(axis=0) / mass
                deviation = features - means[component]
                variances[component] = (resp[:, None] * deviation * deviation).sum(axis=0) / mass
                variances[component] = np.maximum(variances[component], _EPSILON)
                weights[component] = mass / n

            if abs(log_likelihood - previous_log_likelihood) < self.tolerance:
                previous_log_likelihood = log_likelihood
                break
            previous_log_likelihood = log_likelihood

        self.result = GaussianMixtureResult(
            means=means, variances=variances, weights=weights,
            log_likelihood=previous_log_likelihood, num_iterations=iteration,
        )
        return self.result

    def posterior_match(self, features: np.ndarray) -> np.ndarray:
        """Posterior probability of the high-similarity (match) component."""
        if self.result is None:
            raise NotFittedError("fit must be called before posterior_match")
        features = np.asarray(features, dtype=np.float64)
        means, variances, weights = (self.result.means, self.result.variances,
                                     self.result.weights)
        # The match component is the one with the larger mean feature vector.
        match_component = int(np.argmax(means.mean(axis=1)))
        other = 1 - match_component
        log_match = (np.log(weights[match_component] + _EPSILON)
                     + self._log_gaussian(features, means[match_component],
                                          variances[match_component]))
        log_other = (np.log(weights[other] + _EPSILON)
                     + self._log_gaussian(features, means[other], variances[other]))
        stacked = np.column_stack([log_match, log_other])
        max_log = stacked.max(axis=1, keepdims=True)
        normalized = np.exp(stacked - max_log)
        return normalized[:, 0] / normalized.sum(axis=1)


class ZeroER:
    """Unsupervised matcher over similarity feature vectors."""

    name = "zeroer"

    def __init__(self, random_state: RandomState = None) -> None:
        # ZeroER uses only similarity features (no hashed text), matching the
        # model-agnostic feature vectors of the original system.
        self._featurizer = PairFeaturizer(FeaturizerConfig(
            include_raw=False, include_interactions=False, include_similarities=True,
            hash_dim=8,
        ))
        self._mixture = TwoComponentGaussianMixture(random_state=random_state)
        self._fitted = False

    def fit(self, dataset: EMDataset, indices: np.ndarray | None = None) -> "ZeroER":
        """Fit the mixture on (unlabeled) candidate pairs of ``dataset``."""
        features = self._featurizer.transform(dataset, indices)
        self._mixture.fit(features)
        self._fitted = True
        return self

    def predict_proba(self, dataset: EMDataset,
                      indices: np.ndarray | None = None) -> np.ndarray:
        """Posterior match probabilities for the pairs at ``indices``."""
        if not self._fitted:
            raise NotFittedError("ZeroER.fit must be called before predict_proba")
        features = self._featurizer.transform(dataset, indices)
        return self._mixture.posterior_match(features)

    def predict(self, dataset: EMDataset, indices: np.ndarray | None = None,
                threshold: float = 0.5) -> np.ndarray:
        """Hard match / non-match predictions."""
        return (self.predict_proba(dataset, indices) >= threshold).astype(np.int64)
