"""Manifest file loading: TOML/JSON parsing plus a line-number source map.

Parsing is deliberately dumb: it produces the raw nested dictionaries of the
file and a :class:`SourceMap` from field paths to line numbers, and raises
:class:`~repro.exceptions.ManifestError` only for *syntax* errors (a file the
format itself cannot read).  All semantic validation — unknown names, type
mismatches, cross-field constraints — lives in :mod:`repro.manifests.lint`,
which reports every problem in one pass instead of stopping at the first.
"""

from __future__ import annotations

import json
import re
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ManifestError

#: A field path like ``("grid", 0, "datasets")``.
FieldPath = tuple[object, ...]

_TOML_HEADER = re.compile(r"^\s*(\[\[?)\s*([A-Za-z0-9_.\-]+)\s*\]\]?")
_TOML_KEY = re.compile(r"^\s*([A-Za-z0-9_\-]+|\"[^\"]+\"|'[^']+')\s*=")


@dataclass(frozen=True)
class SourceMap:
    """Best-effort map from field paths to 1-based line numbers.

    TOML has no standard-library AST with positions, so the map is built by a
    line scan that tracks table headers (``[settings]``, ``[[grid]]``) and
    top-level ``key =`` assignments.  Values nested inside inline arrays or
    tables resolve to the line of their enclosing assignment —
    :meth:`line_for` drops trailing path components until something matches,
    so a lint issue at ``grid[0].datasets[2]`` points at the ``datasets``
    line.  JSON manifests get an empty map (issues render without lines).
    """

    lines: dict[FieldPath, int] = field(default_factory=dict)

    def line_for(self, path: FieldPath) -> int | None:
        probe = tuple(path)
        while probe:
            if probe in self.lines:
                return self.lines[probe]
            probe = probe[:-1]
        return None


def _scan_toml_lines(text: str) -> SourceMap:
    lines: dict[FieldPath, int] = {}
    header: FieldPath = ()
    array_counts: dict[FieldPath, int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        matched = _TOML_HEADER.match(line)
        if matched:
            is_array = matched.group(1) == "[["
            parts: FieldPath = tuple(matched.group(2).split("."))
            if is_array:
                index = array_counts.get(parts, 0)
                array_counts[parts] = index + 1
                header = parts + (index,)
            else:
                header = parts
            lines.setdefault(header, number)
            continue
        matched = _TOML_KEY.match(line)
        if matched:
            key = matched.group(1).strip("\"'")
            lines.setdefault(header + (key,), number)
    return SourceMap(lines)


@dataclass(frozen=True)
class ManifestSource:
    """One parsed manifest file, before any semantic validation."""

    data: dict[str, object]
    source_map: SourceMap
    path: Path | None = None
    format: str = "toml"

    @property
    def display_path(self) -> str:
        return str(self.path) if self.path is not None else "<manifest>"


def parse_manifest_text(
    text: str,
    format: str = "toml",
    path: Path | None = None,
) -> ManifestSource:
    """Parse manifest ``text``; raises :class:`ManifestError` on syntax errors."""
    if format == "toml":
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ManifestError(
                f"{path or '<manifest>'}: invalid TOML: {error}") from error
        source_map = _scan_toml_lines(text)
    elif format == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ManifestError(
                f"{path or '<manifest>'}: invalid JSON: {error}") from error
        source_map = SourceMap()
    else:
        raise ManifestError(
            f"Unsupported manifest format {format!r}; use 'toml' or 'json'")
    if not isinstance(data, dict):
        raise ManifestError(
            f"{path or '<manifest>'}: a manifest must be a table/object at "
            f"the top level, not {type(data).__name__}")
    return ManifestSource(data=data, source_map=source_map, path=path,
                          format=format)


def load_manifest(path: str | Path) -> ManifestSource:
    """Read and parse the manifest file at ``path`` (format from its suffix)."""
    path = Path(path)
    if not path.exists():
        raise ManifestError(f"Manifest file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".toml":
        format = "toml"
    elif suffix == ".json":
        format = "json"
    else:
        raise ManifestError(
            f"{path}: unsupported manifest extension {suffix!r}; "
            "use .toml or .json")
    return parse_manifest_text(path.read_text(encoding="utf-8"),
                               format=format, path=path)
