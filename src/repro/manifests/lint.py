"""Manifest linting: validate every statement, report every problem at once.

``lint_manifest`` walks the raw parsed manifest and checks each field —
types, registry membership (benchmarks, scenarios, methods, scales,
weak-supervision modes), value ranges, config-override names, and
cross-field constraints — accumulating :class:`LintIssue` records instead of
raising on the first problem.  Each issue carries the dotted field path and
(for TOML) the source line, so a campaign author fixes a whole manifest in
one edit cycle.  When no *errors* remain (warnings are fine), the report
carries the fully typed :class:`~repro.manifests.schema.ManifestDocument`.

Linting never touches datasets or artifact stores: name checks go through
the registries' name lists only, so ``repro manifest lint`` is safe to run
anywhere, including machines without the disk or time for a benchmark build.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro._suggest import unknown_name_message
from repro.active.weak_supervision import WeakSupervisionMode
from repro.blocking.registry import available_blockers
from repro.config import available_scales
from repro.datasets.registry import available_benchmarks
from repro.experiments.engine import ACTIVE_LEARNING_METHODS
from repro.manifests.parser import FieldPath, ManifestSource
from repro.manifests.schema import (
    ExecutionPolicy,
    GridStatement,
    ManifestDocument,
    ManifestSettings,
    RunStatement,
    SeedRange,
)
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig
from repro.scenarios import available_scenarios

_TOP_LEVEL_KEYS = ("manifest", "settings", "execution", "grid", "run")
_SETTINGS_KEYS = ("scale", "iterations", "budget_per_iteration", "seed_size",
                  "base_random_seed", "matcher", "featurizer", "blocker")
_GRID_KEYS = ("datasets", "methods", "scenarios", "seeds", "alphas", "beta",
              "weak_supervision")
_RUN_KEYS = ("dataset", "method", "scenario", "seed", "alpha", "beta",
             "weak_supervision")
_SEED_RANGE_KEYS = ("start", "count", "stride")
_EXECUTION_KEYS = ("max_attempts", "backoff_base", "backoff_factor",
                   "backoff_max", "jitter", "timeout", "keep_going")


def render_field_path(path: FieldPath) -> str:
    """``("grid", 0, "datasets", 1)`` → ``"grid[0].datasets[1]"``."""
    rendered = ""
    for part in path:
        if isinstance(part, int):
            rendered += f"[{part}]"
        else:
            rendered += f".{part}" if rendered else str(part)
    return rendered or "<document>"


@dataclass(frozen=True)
class LintIssue:
    """One problem found in a manifest, anchored to a field and a line."""

    severity: str  # "error" | "warning"
    field: str
    message: str
    line: int | None = None

    def render(self) -> str:
        location = f" (line {self.line})" if self.line is not None else ""
        return f"{self.severity}: {self.field}: {self.message}{location}"


@dataclass
class LintReport:
    """Everything ``lint_manifest`` found, plus the typed document if clean."""

    issues: list[LintIssue] = field(default_factory=list)
    document: ManifestDocument | None = None

    @property
    def errors(self) -> list[LintIssue]:
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> list[LintIssue]:
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        return "\n".join(issue.render() for issue in self.issues)


class _Linter:
    """Stateful walk over one manifest source, accumulating issues."""

    def __init__(self, source: ManifestSource) -> None:
        self.source = source
        self.issues: list[LintIssue] = []

    # -- issue plumbing ---------------------------------------------------- #
    def error(self, path: FieldPath, message: str) -> None:
        self.issues.append(LintIssue("error", render_field_path(path), message,
                                     self.source.source_map.line_for(path)))

    def warning(self, path: FieldPath, message: str) -> None:
        self.issues.append(LintIssue("warning", render_field_path(path),
                                     message,
                                     self.source.source_map.line_for(path)))

    # -- typed readers (each reports and returns a safe fallback) ---------- #
    def read_str(self, table: dict, key: str, path: FieldPath,
                 default: str = "") -> str:
        value = table.get(key, default)
        if not isinstance(value, str):
            self.error(path + (key,),
                       f"expected a string, got {type(value).__name__}")
            return default
        return value

    def read_int(self, table: dict, key: str, path: FieldPath,
                 default: int | None, minimum: int = 1) -> int | None:
        if key not in table:
            return default
        value = table[key]
        if isinstance(value, bool) or not isinstance(value, int):
            self.error(path + (key,),
                       f"expected an integer, got {type(value).__name__}")
            return default
        if value < minimum:
            self.error(path + (key,), f"must be >= {minimum}, got {value}")
            return default
        return value

    def read_unit_float(self, table: dict, key: str, path: FieldPath,
                        default: float) -> float:
        if key not in table:
            return default
        value = table[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.error(path + (key,),
                       f"expected a number, got {type(value).__name__}")
            return default
        if not 0.0 <= value <= 1.0:
            self.error(path + (key,), f"must be in [0, 1], got {value}")
            return default
        return float(value)

    def read_float(self, table: dict, key: str, path: FieldPath,
                   default: float | None, minimum: float = 0.0,
                   exclusive: bool = False) -> float | None:
        if key not in table:
            return default
        value = table[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.error(path + (key,),
                       f"expected a number, got {type(value).__name__}")
            return default
        if value < minimum or (exclusive and value == minimum):
            bound = ">" if exclusive else ">="
            self.error(path + (key,), f"must be {bound} {minimum:g}, "
                                      f"got {value}")
            return default
        return float(value)

    def read_bool(self, table: dict, key: str, path: FieldPath,
                  default: bool) -> bool:
        if key not in table:
            return default
        value = table[key]
        if not isinstance(value, bool):
            self.error(path + (key,),
                       f"expected a boolean, got {type(value).__name__}")
            return default
        return value

    def read_name_list(self, table: dict, key: str, path: FieldPath,
                       kind: str, known: tuple[str, ...],
                       required: bool) -> tuple[str, ...]:
        if key not in table:
            if required:
                self.error(path, f"missing required key {key!r}")
            return ()
        value = table[key]
        if not isinstance(value, list):
            self.error(path + (key,),
                       f"expected a list of names, got {type(value).__name__}")
            return ()
        if required and not value:
            self.error(path + (key,), "must not be empty")
        names: list[str] = []
        for index, entry in enumerate(value):
            if not isinstance(entry, str):
                self.error(path + (key, index),
                           f"expected a string, got {type(entry).__name__}")
                continue
            if entry not in known:
                self.error(path + (key, index),
                           unknown_name_message(kind, entry, known))
                continue
            names.append(entry)
        return tuple(names)

    def check_unknown_keys(self, table: dict, allowed: tuple[str, ...],
                           path: FieldPath, kind: str) -> None:
        for key in table:
            if key not in allowed:
                self.error(path + (key,),
                           unknown_name_message(f"{kind} key", key, allowed))

    # -- sections ----------------------------------------------------------- #
    def lint_header(self) -> tuple[str, str]:
        header = self.source.data.get("manifest")
        if not isinstance(header, dict):
            self.error(("manifest",),
                       "missing required [manifest] section with a 'name'")
            return "", ""
        self.check_unknown_keys(header, ("name", "description"),
                                ("manifest",), "manifest")
        name = self.read_str(header, "name", ("manifest",))
        if "name" not in header or not name.strip():
            self.error(("manifest", "name"),
                       "every manifest needs a non-empty name")
        description = self.read_str(header, "description", ("manifest",))
        return name.strip(), description

    def lint_config_overrides(
        self, table: object, path: FieldPath, config_cls: type,
    ) -> tuple[tuple[str, object], ...]:
        if table is None:
            return ()
        if not isinstance(table, dict):
            self.error(path, f"expected a table of {config_cls.__name__} "
                             f"overrides, got {type(table).__name__}")
            return ()
        known = {f.name: f for f in dataclasses.fields(config_cls)}
        overrides: dict[str, object] = {}
        for key, value in table.items():
            if key not in known:
                self.error(path + (key,),
                           unknown_name_message(
                               f"{config_cls.__name__} field", key, known))
                continue
            if isinstance(value, list):
                if not all(isinstance(item, int) and not isinstance(item, bool)
                           for item in value):
                    self.error(path + (key,),
                               "expected a list of integers")
                    continue
                overrides[key] = tuple(value)
            elif isinstance(value, (bool, int, float, str)):
                overrides[key] = value
            else:
                self.error(path + (key,),
                           f"unsupported value type {type(value).__name__}")
        if overrides:
            try:  # the config's own __post_init__ knows its invariants
                config_cls(**overrides)
            except (TypeError, ValueError) as error:
                self.error(path, str(error))
        return tuple(sorted(overrides.items()))

    def lint_settings(self) -> ManifestSettings:
        table = self.source.data.get("settings")
        if table is None:
            return ManifestSettings()
        path: FieldPath = ("settings",)
        if not isinstance(table, dict):
            self.error(path, f"expected a table, got {type(table).__name__}")
            return ManifestSettings()
        self.check_unknown_keys(table, _SETTINGS_KEYS, path, "settings")
        scale = self.read_str(table, "scale", path, default="small") or "small"
        if "scale" in table and isinstance(table["scale"], str) \
                and scale not in available_scales():
            self.error(path + ("scale",),
                       unknown_name_message("scale", scale, available_scales()))
            scale = "small"
        blocker: str | None = None
        if "blocker" in table:
            blocker = self.read_str(table, "blocker", path) or None
            if blocker is not None and blocker not in available_blockers():
                self.error(path + ("blocker",),
                           unknown_name_message("blocker", blocker,
                                                available_blockers()))
                blocker = None
        return ManifestSettings(
            scale=scale,
            iterations=self.read_int(table, "iterations", path, None),
            budget_per_iteration=self.read_int(table, "budget_per_iteration",
                                               path, None),
            seed_size=self.read_int(table, "seed_size", path, None),
            base_random_seed=self.read_int(table, "base_random_seed", path, 7,
                                           minimum=0) or 0,
            matcher_overrides=self.lint_config_overrides(
                table.get("matcher"), path + ("matcher",), MatcherConfig),
            featurizer_overrides=self.lint_config_overrides(
                table.get("featurizer"), path + ("featurizer",),
                FeaturizerConfig),
            blocker=blocker,
        )

    def lint_execution(self) -> ExecutionPolicy | None:
        """The optional ``[execution]`` retry-policy section.

        Bounds mirror :class:`repro.experiments.faults.RetryPolicy`'s own
        invariants, so every value the linter accepts constructs a valid
        policy at build time.
        """
        table = self.source.data.get("execution")
        if table is None:
            return None
        path: FieldPath = ("execution",)
        if not isinstance(table, dict):
            self.error(path, f"expected a table, got {type(table).__name__}")
            return None
        self.check_unknown_keys(table, _EXECUTION_KEYS, path, "execution")
        jitter = self.read_float(table, "jitter", path, None)
        if jitter is not None and jitter > 1.0:
            self.error(path + ("jitter",),
                       f"must be in [0, 1], got {jitter:g}")
            jitter = None
        return ExecutionPolicy(
            max_attempts=self.read_int(table, "max_attempts", path, None),
            backoff_base=self.read_float(table, "backoff_base", path, None),
            backoff_factor=self.read_float(table, "backoff_factor", path,
                                           None, minimum=1.0),
            backoff_max=self.read_float(table, "backoff_max", path, None),
            jitter=jitter,
            timeout=self.read_float(table, "timeout", path, None,
                                    exclusive=True),
            keep_going=self.read_bool(table, "keep_going", path, False),
        )

    def lint_seeds(self, table: dict, path: FieldPath,
                   ) -> tuple[tuple[int, ...] | None, SeedRange | None]:
        if "seeds" not in table:
            return None, None
        value = table["seeds"]
        seeds_path = path + ("seeds",)
        if isinstance(value, list):
            seeds: list[int] = []
            if not value:
                self.error(seeds_path, "must not be empty")
            for index, entry in enumerate(value):
                if isinstance(entry, bool) or not isinstance(entry, int):
                    self.error(seeds_path + (index,),
                               f"expected an integer seed, got "
                               f"{type(entry).__name__}")
                    continue
                seeds.append(entry)
            return tuple(seeds), None
        if isinstance(value, dict):
            self.check_unknown_keys(value, _SEED_RANGE_KEYS, seeds_path,
                                    "seed range")
            start = self.read_int(value, "start", seeds_path, None, minimum=0)
            count = self.read_int(value, "count", seeds_path, None)
            stride = self.read_int(value, "stride", seeds_path, 13)
            if start is None and "start" not in value:
                self.error(seeds_path, "seed range needs a 'start'")
            if count is None and "count" not in value:
                self.error(seeds_path, "seed range needs a 'count'")
            if start is None or count is None:
                return None, None
            return None, SeedRange(start=start, count=count,
                                   stride=stride or 13)
        self.error(seeds_path,
                   "expected a list of seeds or a {start, count, stride} "
                   f"range, got {type(value).__name__}")
        return None, None

    def lint_alphas(self, table: dict, path: FieldPath,
                    methods: tuple[str, ...]) -> tuple[float, ...] | None:
        if "alphas" not in table:
            return None
        value = table["alphas"]
        alphas_path = path + ("alphas",)
        if not isinstance(value, list) or not value:
            self.error(alphas_path, "expected a non-empty list of α values")
            return None
        alphas: list[float] = []
        for index, entry in enumerate(value):
            if isinstance(entry, bool) or not isinstance(entry, (int, float)):
                self.error(alphas_path + (index,),
                           f"expected a number, got {type(entry).__name__}")
                continue
            if not 0.0 <= entry <= 1.0:
                self.error(alphas_path + (index,),
                           f"α must be in [0, 1], got {entry}")
                continue
            alphas.append(float(entry))
        if methods and "battleship" not in methods:
            self.error(alphas_path,
                       "alphas only affect the battleship method; this grid "
                       f"runs {', '.join(methods)}")
        elif methods and set(methods) != {"battleship"}:
            self.warning(alphas_path,
                         "non-battleship methods in this grid ignore alphas "
                         "and run a single nominal α = 0.5")
        return tuple(alphas) if alphas else None

    def lint_weak_supervision(self, table: dict, path: FieldPath) -> str:
        if "weak_supervision" not in table:
            return "selector"
        value = table["weak_supervision"]
        modes = tuple(mode.value for mode in WeakSupervisionMode)
        if not isinstance(value, str):
            self.error(path + ("weak_supervision",),
                       f"expected a string, got {type(value).__name__}")
            return "selector"
        if value not in modes:
            self.error(path + ("weak_supervision",),
                       unknown_name_message("weak-supervision mode", value,
                                            modes))
            return "selector"
        return value

    def lint_grid(self, table: object, index: int) -> GridStatement | None:
        path: FieldPath = ("grid", index)
        if not isinstance(table, dict):
            self.error(path, f"expected a table, got {type(table).__name__}")
            return None
        self.check_unknown_keys(table, _GRID_KEYS, path, "grid")
        datasets = self.read_name_list(table, "datasets", path, "benchmark",
                                       available_benchmarks(), required=True)
        methods = self.read_name_list(table, "methods", path, "method",
                                      ACTIVE_LEARNING_METHODS, required=True)
        scenarios = self.read_name_list(table, "scenarios", path, "scenario",
                                        available_scenarios(), required=False)
        seeds, seed_range = self.lint_seeds(table, path)
        return GridStatement(
            datasets=datasets,
            methods=methods,
            scenarios=scenarios or ("perfect",),
            seeds=seeds,
            seed_range=seed_range,
            alphas=self.lint_alphas(table, path, methods),
            beta=self.read_unit_float(table, "beta", path, 0.5),
            weak_supervision=self.lint_weak_supervision(table, path),
        )

    def lint_run(self, table: object, index: int) -> RunStatement | None:
        path: FieldPath = ("run", index)
        if not isinstance(table, dict):
            self.error(path, f"expected a table, got {type(table).__name__}")
            return None
        self.check_unknown_keys(table, _RUN_KEYS, path, "run")
        dataset = self.read_str(table, "dataset", path)
        if "dataset" not in table:
            self.error(path, "missing required key 'dataset'")
        elif dataset and dataset not in available_benchmarks():
            self.error(path + ("dataset",),
                       unknown_name_message("benchmark", dataset,
                                            available_benchmarks()))
        method = self.read_str(table, "method", path)
        if "method" not in table:
            self.error(path, "missing required key 'method'")
        elif method and method not in ACTIVE_LEARNING_METHODS:
            self.error(path + ("method",),
                       unknown_name_message("method", method,
                                            ACTIVE_LEARNING_METHODS))
        scenario = self.read_str(table, "scenario", path, default="perfect") \
            or "perfect"
        if scenario not in available_scenarios():
            self.error(path + ("scenario",),
                       unknown_name_message("scenario", scenario,
                                            available_scenarios()))
            scenario = "perfect"
        return RunStatement(
            dataset=dataset,
            method=method,
            scenario=scenario,
            seed=self.read_int(table, "seed", path, None, minimum=0),
            alpha=self.read_unit_float(table, "alpha", path, 0.5),
            beta=self.read_unit_float(table, "beta", path, 0.5),
            weak_supervision=self.lint_weak_supervision(table, path),
        )

    def lint(self) -> LintReport:
        self.check_unknown_keys(self.source.data, _TOP_LEVEL_KEYS, (),
                                "manifest section")
        name, description = self.lint_header()
        settings = self.lint_settings()
        execution = self.lint_execution()

        raw_grids = self.source.data.get("grid", [])
        if not isinstance(raw_grids, list):
            self.error(("grid",), "expected an array of [[grid]] tables")
            raw_grids = []
        grids = [self.lint_grid(table, index)
                 for index, table in enumerate(raw_grids)]

        raw_runs = self.source.data.get("run", [])
        if not isinstance(raw_runs, list):
            self.error(("run",), "expected an array of [[run]] tables")
            raw_runs = []
        runs = [self.lint_run(table, index)
                for index, table in enumerate(raw_runs)]

        if not raw_grids and not raw_runs:
            self.error((), "a manifest needs at least one [[grid]] or "
                           "[[run]] section")

        report = LintReport(issues=self.issues)
        if report.ok:
            report.document = ManifestDocument(
                name=name,
                description=description,
                settings=settings,
                grids=tuple(grid for grid in grids if grid is not None),
                runs=tuple(run for run in runs if run is not None),
                execution=execution,
            )
        return report


def lint_manifest(source: ManifestSource) -> LintReport:
    """Validate ``source`` completely, reporting every issue in one pass."""
    return _Linter(source).lint()
