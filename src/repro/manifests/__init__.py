"""Declarative experiment manifests: lint, build, and version a campaign.

A manifest is a TOML (or JSON) file declaring a full labeling campaign — the
datasets, methods, scenarios, seeds, and settings of a RunSpec grid — that
the three staged commands operate on::

    repro manifest lint     campaign.toml   # every error, with locations
    repro manifest build    campaign.toml   # expand + execute (resumable)
    repro manifest versions campaign.toml   # pin fingerprints to a lockfile

See ``examples/campaign.toml`` for an annotated manifest.
"""

from repro.manifests.build import (
    build_manifest,
    build_retry_policy,
    build_settings,
    expand_run_specs,
    grid_fingerprint,
)
from repro.manifests.lint import (
    LintIssue,
    LintReport,
    lint_manifest,
    render_field_path,
)
from repro.manifests.lockfile import (
    LOCKFILE_FORMAT_VERSION,
    compute_lockfile,
    lockfile_drift,
    lockfile_path,
    read_lockfile,
    render_lockfile,
    write_lockfile,
)
from repro.manifests.parser import (
    ManifestSource,
    SourceMap,
    load_manifest,
    parse_manifest_text,
)
from repro.manifests.schema import (
    MANIFEST_FORMAT_VERSION,
    ExecutionPolicy,
    GridStatement,
    ManifestDocument,
    ManifestSettings,
    RunStatement,
    SeedRange,
)

__all__ = [
    "ExecutionPolicy",
    "GridStatement",
    "LintIssue",
    "LintReport",
    "LOCKFILE_FORMAT_VERSION",
    "MANIFEST_FORMAT_VERSION",
    "ManifestDocument",
    "ManifestSettings",
    "ManifestSource",
    "RunStatement",
    "SeedRange",
    "SourceMap",
    "build_manifest",
    "build_retry_policy",
    "build_settings",
    "compute_lockfile",
    "expand_run_specs",
    "grid_fingerprint",
    "lint_manifest",
    "load_manifest",
    "lockfile_drift",
    "lockfile_path",
    "parse_manifest_text",
    "read_lockfile",
    "render_field_path",
    "render_lockfile",
    "write_lockfile",
]
