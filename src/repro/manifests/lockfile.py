"""Version pinning for manifests: content fingerprints in a lockfile.

A manifest names things — benchmarks, scenarios, featurizer/matcher configs —
whose *definitions* live in code.  Editing any of them silently changes what
a re-run means.  ``repro manifest versions`` pins the content fingerprint of
every referenced definition into ``<manifest>.lock.json`` next to the
manifest; ``repro manifest build`` verifies the pins before executing and
fails loudly on drift, listing every drifted component instead of the first.

The lockfile is deterministic (sorted keys, no timestamps), so re-computing
it in an unchanged tree is byte-identical — CI asserts exactly that.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.datasets.registry import benchmark_fingerprint
from repro.experiments.configs import ExperimentSettings, config_fingerprint
from repro.experiments.engine import RunSpec, settings_fingerprint
from repro.manifests.build import grid_fingerprint
from repro.manifests.schema import ManifestDocument
from repro.scenarios import get_scenario

#: Bumped whenever the lockfile layout changes incompatibly.
LOCKFILE_FORMAT_VERSION = 1


def lockfile_path(manifest_path: str | Path) -> Path:
    """``campaign.toml`` → ``campaign.lock.json`` (same directory)."""
    manifest_path = Path(manifest_path)
    return manifest_path.with_name(f"{manifest_path.stem}.lock.json")


def compute_lockfile(
    document: ManifestDocument,
    settings: ExperimentSettings,
    specs: list[RunSpec],
) -> dict[str, object]:
    """Pin every content fingerprint the manifest's runs depend on."""
    return {
        "format_version": LOCKFILE_FORMAT_VERSION,
        "manifest": {
            "name": document.name,
            "fingerprint": document.fingerprint(),
        },
        "settings_fingerprint": settings_fingerprint(settings),
        "configs": {
            "featurizer": config_fingerprint(settings.featurizer_config),
            "matcher": config_fingerprint(settings.matcher_config),
        },
        "datasets": {
            name: benchmark_fingerprint(name)
            for name in sorted(document.referenced_datasets())
        },
        "scenarios": {
            name: get_scenario(name).fingerprint()
            for name in sorted(document.referenced_scenarios())
        },
        "grid": {
            "runs": len(specs),
            "fingerprint": grid_fingerprint(specs),
        },
    }


def render_lockfile(data: dict[str, object]) -> str:
    """Canonical lockfile text (stable across runs of an unchanged tree)."""
    return json.dumps(data, sort_keys=True, indent=2) + "\n"


def write_lockfile(path: str | Path, data: dict[str, object]) -> Path:
    path = Path(path)
    path.write_text(render_lockfile(data), encoding="utf-8")
    return path


def read_lockfile(path: str | Path) -> dict[str, object]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _flatten(data: object, prefix: str = "") -> dict[str, object]:
    if isinstance(data, dict):
        flat: dict[str, object] = {}
        for key, value in data.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            flat.update(_flatten(value, dotted))
        return flat
    return {prefix: data}


def lockfile_drift(
    pinned: dict[str, object],
    current: dict[str, object],
) -> list[str]:
    """Every difference between a pinned and a freshly computed lockfile.

    Returns human-readable lines (empty when the pins still hold), one per
    drifted, added, or removed component — the complete picture, so a stale
    lockfile is fixed in one pass.
    """
    pinned_flat = _flatten(pinned)
    current_flat = _flatten(current)
    drift: list[str] = []
    for key in sorted(pinned_flat.keys() | current_flat.keys()):
        if key not in current_flat:
            drift.append(f"{key}: pinned {pinned_flat[key]!r} is no longer "
                         "referenced by the manifest")
        elif key not in pinned_flat:
            drift.append(f"{key}: {current_flat[key]!r} is not pinned yet")
        elif pinned_flat[key] != current_flat[key]:
            drift.append(f"{key}: pinned {pinned_flat[key]!r}, "
                         f"now {current_flat[key]!r}")
    return drift
