"""Expand a linted manifest into its RunSpec grid.

The expansion is pure and order-deterministic: statements expand in manifest
order (grids before explicit runs, each grid as dataset × method × scenario
× seed × α), and duplicate jobs are dropped by store fingerprint keeping the
first occurrence.  Linting the same file twice therefore yields a
byte-identical fingerprint list — the property the round-trip tests and the
lockfile's grid hash rely on.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.config import get_scale
from repro.exceptions import ManifestError
from repro.experiments.configs import ExperimentSettings
from repro.experiments.engine import RunSpec
from repro.experiments.faults import RetryPolicy
from repro.manifests.lint import LintReport, lint_manifest
from repro.manifests.parser import ManifestSource
from repro.manifests.schema import ManifestDocument
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig


def build_settings(document: ManifestDocument) -> ExperimentSettings:
    """The :class:`ExperimentSettings` every job of ``document`` runs under.

    Run-shaping knobs come from the manifest's ``[settings]`` section with
    the scale profile filling the gaps.  The grid-only fields (``datasets``,
    ``num_seeds``, ``alphas``) are excluded from the settings fingerprint,
    so pinning them here to the manifest's references and a single nominal
    sweep keeps manifest runs store-compatible with ``repro experiments``
    runs under the same knobs.
    """
    manifest = document.settings
    scale = get_scale(manifest.scale)
    matcher = dataclasses.replace(MatcherConfig(),
                                  **dict(manifest.matcher_overrides))
    featurizer = dataclasses.replace(FeaturizerConfig(),
                                     **dict(manifest.featurizer_overrides))
    return ExperimentSettings(
        scale=scale,
        datasets=document.referenced_datasets() or ("amazon_google",),
        iterations=manifest.iterations or scale.iterations,
        budget_per_iteration=(manifest.budget_per_iteration
                              or scale.budget_per_iteration),
        seed_size=manifest.seed_size or scale.seed_size,
        num_seeds=1,
        alphas=(0.5,),
        beta=0.5,
        matcher_config=matcher,
        featurizer_config=featurizer,
        base_random_seed=manifest.base_random_seed,
    )


def build_retry_policy(
    document: ManifestDocument,
) -> tuple[RetryPolicy | None, bool]:
    """The ``(RetryPolicy, keep_going)`` the ``[execution]`` section declares.

    ``(None, False)`` when the manifest has no ``[execution]`` section —
    the campaign then runs with whatever the caller (CLI flags, API)
    chooses, typically fail-fast.  Declared fields override the policy's
    defaults field by field.
    """
    execution = document.execution
    if execution is None:
        return None, False
    defaults = RetryPolicy()
    return RetryPolicy(
        max_attempts=(execution.max_attempts
                      if execution.max_attempts is not None
                      else defaults.max_attempts),
        backoff_base=(execution.backoff_base
                      if execution.backoff_base is not None
                      else defaults.backoff_base),
        backoff_factor=(execution.backoff_factor
                        if execution.backoff_factor is not None
                        else defaults.backoff_factor),
        backoff_max=(execution.backoff_max
                     if execution.backoff_max is not None
                     else defaults.backoff_max),
        jitter=(execution.jitter if execution.jitter is not None
                else defaults.jitter),
        timeout=execution.timeout,
    ), execution.keep_going


def expand_run_specs(
    document: ManifestDocument,
    settings: ExperimentSettings | None = None,
) -> list[RunSpec]:
    """The deduplicated RunSpec grid of ``document``, in manifest order."""
    settings = settings if settings is not None else build_settings(document)
    base_seed = settings.base_random_seed
    specs: list[RunSpec] = []
    seen: set[str] = set()

    def emit(spec: RunSpec) -> None:
        fingerprint = spec.fingerprint()
        if fingerprint not in seen:
            seen.add(fingerprint)
            specs.append(spec)

    for grid in document.grids:
        for dataset in grid.datasets:
            for method in grid.methods:
                # α only shapes battleship selection; other methods run the
                # single nominal value so a sweep never multiplies them.
                alphas = (grid.alphas if grid.alphas and method == "battleship"
                          else (0.5,))
                for scenario in grid.scenarios:
                    for seed in grid.seed_values(base_seed):
                        for alpha in alphas:
                            emit(RunSpec.create(
                                dataset, method, seed, alpha, grid.beta,
                                grid.weak_supervision, settings,
                                scenario=scenario))
    for run in document.runs:
        emit(RunSpec.create(
            run.dataset, run.method,
            run.seed if run.seed is not None else base_seed,
            run.alpha, run.beta, run.weak_supervision, settings,
            scenario=run.scenario))
    return specs


def grid_fingerprint(specs: list[RunSpec]) -> str:
    """Order-sensitive hash of the expanded grid (pinned by the lockfile)."""
    joined = "\n".join(spec.fingerprint() for spec in specs)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


def build_manifest(
    source: ManifestSource,
) -> tuple[ManifestDocument, ExperimentSettings, list[RunSpec]]:
    """Lint ``source`` and expand it, or fail with *every* lint error.

    This is the programmatic entry the CLI's ``manifest build`` goes
    through; callers wanting the issues individually use
    :func:`~repro.manifests.lint.lint_manifest` directly.
    """
    report: LintReport = lint_manifest(source)
    if not report.ok or report.document is None:
        raise ManifestError(
            f"{source.display_path} failed lint with "
            f"{len(report.errors)} error(s):\n{report.render()}")
    document = report.document
    settings = build_settings(document)
    return document, settings, expand_run_specs(document, settings)
