"""Typed statements of a linted experiment manifest.

A manifest file (TOML or JSON) declares a labeling campaign: which benchmarks
to run, which selectors, under which scenarios, over which seeds and α
values, and which settings overrides apply to every run.  The parser
(:mod:`repro.manifests.parser`) turns the file into raw dictionaries, the
linter (:mod:`repro.manifests.lint`) validates those into the frozen
statement types below, and the builder (:mod:`repro.manifests.build`)
expands the statements into the :class:`~repro.experiments.engine.RunSpec`
grid.  Everything here is immutable and content-hashable so a manifest has a
stable :meth:`~ManifestDocument.fingerprint` usable as a store-side identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

#: Bumped whenever the manifest schema changes incompatibly.
MANIFEST_FORMAT_VERSION = 1


def _canonical_json(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SeedRange:
    """Arithmetic seed progression, mirroring ``ExperimentSettings.seeds()``.

    ``{start = 7, count = 3}`` expands to ``(7, 20, 33)`` with the default
    stride of 13 — the same progression the settings layer uses, so a
    manifest range and a ``num_seeds`` sweep enumerate identical RunSpecs.
    """

    start: int
    count: int
    stride: int = 13

    def expand(self) -> tuple[int, ...]:
        return tuple(self.start + self.stride * i for i in range(self.count))


@dataclass(frozen=True)
class GridStatement:
    """One ``[[grid]]`` section: the cross product of its axes."""

    datasets: tuple[str, ...]
    methods: tuple[str, ...]
    scenarios: tuple[str, ...] = ("perfect",)
    seeds: tuple[int, ...] | None = None
    seed_range: SeedRange | None = None
    alphas: tuple[float, ...] | None = None
    beta: float = 0.5
    weak_supervision: str = "selector"

    def seed_values(self, default_seed: int) -> tuple[int, ...]:
        """The seeds this grid runs over (explicit list > range > default)."""
        if self.seeds is not None:
            return self.seeds
        if self.seed_range is not None:
            return self.seed_range.expand()
        return (default_seed,)

    def to_dict(self) -> dict[str, object]:
        return {
            "datasets": list(self.datasets),
            "methods": list(self.methods),
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "seed_range": ([self.seed_range.start, self.seed_range.count,
                            self.seed_range.stride]
                           if self.seed_range is not None else None),
            "alphas": list(self.alphas) if self.alphas is not None else None,
            "beta": self.beta,
            "weak_supervision": self.weak_supervision,
        }


@dataclass(frozen=True)
class RunStatement:
    """One ``[[run]]`` section: a single explicit run."""

    dataset: str
    method: str
    scenario: str = "perfect"
    seed: int | None = None
    alpha: float = 0.5
    beta: float = 0.5
    weak_supervision: str = "selector"

    def to_dict(self) -> dict[str, object]:
        return {
            "dataset": self.dataset,
            "method": self.method,
            "scenario": self.scenario,
            "seed": self.seed,
            "alpha": self.alpha,
            "beta": self.beta,
            "weak_supervision": self.weak_supervision,
        }


@dataclass(frozen=True)
class ManifestSettings:
    """The ``[settings]`` section: run-shaping knobs shared by every job.

    ``None`` means "take the scale profile's value", so a manifest only
    spells out what it overrides.  Config overrides are stored as sorted
    ``(field, value)`` pairs to stay hashable and order-insensitive.
    """

    scale: str = "small"
    iterations: int | None = None
    budget_per_iteration: int | None = None
    seed_size: int | None = None
    base_random_seed: int = 7
    matcher_overrides: tuple[tuple[str, object], ...] = ()
    featurizer_overrides: tuple[tuple[str, object], ...] = ()
    #: Candidate-generation strategy by registry name
    #: (:func:`repro.blocking.registry.available_blockers`); ``None`` means
    #: the campaign uses the benchmark's built-in candidate pairs.
    blocker: str | None = None

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "scale": self.scale,
            "iterations": self.iterations,
            "budget_per_iteration": self.budget_per_iteration,
            "seed_size": self.seed_size,
            "base_random_seed": self.base_random_seed,
            "matcher": {key: value for key, value in self.matcher_overrides},
            "featurizer": {key: value
                           for key, value in self.featurizer_overrides},
        }
        # Only present when set: manifests written before the blocker axis
        # existed keep their fingerprints (and lockfile pins) unchanged.
        if self.blocker is not None:
            payload["blocker"] = self.blocker
        return payload


@dataclass(frozen=True)
class ExecutionPolicy:
    """The ``[execution]`` section: how the campaign's jobs are retried.

    Mirrors :class:`repro.experiments.faults.RetryPolicy` field for field
    (plus ``keep_going``); ``None`` means "take the retry-policy default",
    so a manifest only spells out what it overrides.  The section is
    *declarative* fault tolerance: the campaign file records how its runs
    survive transient faults, so a sweep replayed on another machine retries
    the same way.
    """

    max_attempts: int | None = None
    backoff_base: float | None = None
    backoff_factor: float | None = None
    backoff_max: float | None = None
    jitter: float | None = None
    timeout: float | None = None
    keep_going: bool = False

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {}
        for key in ("max_attempts", "backoff_base", "backoff_factor",
                    "backoff_max", "jitter", "timeout"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.keep_going:
            payload["keep_going"] = True
        return payload


@dataclass(frozen=True)
class ManifestDocument:
    """A fully linted manifest: name, settings, and its grid/run statements."""

    name: str
    description: str = ""
    settings: ManifestSettings = field(default_factory=ManifestSettings)
    grids: tuple[GridStatement, ...] = ()
    runs: tuple[RunStatement, ...] = ()
    execution: ExecutionPolicy | None = None

    def referenced_datasets(self) -> tuple[str, ...]:
        """Every benchmark the manifest names, in first-reference order."""
        ordered: dict[str, None] = {}
        for grid in self.grids:
            for dataset in grid.datasets:
                ordered[dataset] = None
        for run in self.runs:
            ordered[run.dataset] = None
        return tuple(ordered)

    def referenced_scenarios(self) -> tuple[str, ...]:
        """Every scenario the manifest names, in first-reference order."""
        ordered: dict[str, None] = {}
        for grid in self.grids:
            for scenario in grid.scenarios:
                ordered[scenario] = None
        for run in self.runs:
            ordered[run.scenario] = None
        return tuple(ordered)

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "format_version": MANIFEST_FORMAT_VERSION,
            "name": self.name,
            "description": self.description,
            "settings": self.settings.to_dict(),
            "grids": [grid.to_dict() for grid in self.grids],
            "runs": [run.to_dict() for run in self.runs],
        }
        # Only present when declared: manifests written before the
        # [execution] section existed keep their fingerprints (and lockfile
        # pins) unchanged.
        if self.execution is not None:
            payload["execution"] = self.execution.to_dict()
        return payload

    def fingerprint(self) -> str:
        """Content hash of the whole declaration (description included)."""
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode("utf-8")).hexdigest()[:16]

    def manifest_id(self) -> str:
        """Human-readable identity stamped into artifacts: ``name@hash``."""
        return f"{self.name}@{self.fingerprint()[:12]}"
