"""The paper's primary contribution, gathered under one import path.

``repro.core`` re-exports the battleship selector, the active-learning loop,
and the supporting pieces a downstream user needs to run low-resource entity
matching end to end::

    from repro.core import (
        ActiveLearningLoop, BattleshipSelector, PerfectOracle, load_benchmark,
    )

    dataset = load_benchmark("amazon_google", scale="small", random_state=7)
    loop = ActiveLearningLoop(dataset, BattleshipSelector(), iterations=4,
                              budget_per_iteration=40, random_state=7)
    result = loop.run()
    print(result.learning_curve().f1_scores)
"""

from repro.active.budget import distribute_budget, positive_budget, split_budget
from repro.active.loop import ActiveLearningLoop, ActiveLearningResult, IterationRecord
from repro.active.oracle import LabelingOracle, NoisyOracle, PerfectOracle
from repro.active.selectors import (
    BattleshipConfig,
    BattleshipSelector,
    CommitteeSelector,
    EntropySelector,
    RandomSelector,
    SelectionContext,
    Selector,
)
from repro.active.state import ActiveLearningState
from repro.active.weak_supervision import WeakSupervisionMode
from repro.datasets.registry import available_benchmarks, load_benchmark
from repro.evaluation.curves import LearningCurve
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer
from repro.neural.matcher import MatcherConfig, NeuralMatcher

__all__ = [
    "ActiveLearningLoop",
    "ActiveLearningResult",
    "ActiveLearningState",
    "BattleshipConfig",
    "BattleshipSelector",
    "CommitteeSelector",
    "EntropySelector",
    "FeaturizerConfig",
    "IterationRecord",
    "LabelingOracle",
    "LearningCurve",
    "MatcherConfig",
    "NeuralMatcher",
    "NoisyOracle",
    "PairFeaturizer",
    "PerfectOracle",
    "RandomSelector",
    "SelectionContext",
    "Selector",
    "WeakSupervisionMode",
    "available_benchmarks",
    "distribute_budget",
    "load_benchmark",
    "positive_budget",
    "split_budget",
]
