"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so that callers can catch a
single base class.  More specific subclasses communicate which subsystem
rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A record or table does not conform to its declared schema."""


class DatasetError(ReproError):
    """A dataset (tables, candidate pairs, splits) is malformed."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class ManifestError(ReproError):
    """An experiment manifest failed to parse, lint, or verify."""


class NotFittedError(ReproError):
    """A model or index was used before ``fit`` / ``build`` was called."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration budget."""


class BudgetError(ReproError):
    """An active-learning labeling budget is invalid or exhausted."""


class OracleError(ReproError):
    """The labeling oracle was asked about a pair it has no label for."""
