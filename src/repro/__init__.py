"""repro — a reproduction of "The Battleship Approach to the Low Resource
Entity Matching Problem" (Genossar, Gal & Shraga, SIGMOD 2023).

The package is organized as a set of substrates (data model, synthetic
benchmarks, text similarity, blocking, a NumPy neural matcher, nearest
neighbours, clustering, pair graphs) underneath the primary contribution: the
battleship active-learning selector and the experiment harness that reproduces
the paper's tables and figures.

Most users only need :mod:`repro.core`::

    from repro.core import ActiveLearningLoop, BattleshipSelector, load_benchmark
"""

from repro.config import ScaleProfile, available_scales, get_scale
from repro.exceptions import (
    BudgetError,
    ConfigurationError,
    ConvergenceError,
    DatasetError,
    NotFittedError,
    OracleError,
    ReproError,
    SchemaError,
)

__version__ = "1.0.0"

__all__ = [
    "BudgetError",
    "ConfigurationError",
    "ConvergenceError",
    "DatasetError",
    "NotFittedError",
    "OracleError",
    "ReproError",
    "ScaleProfile",
    "SchemaError",
    "__version__",
    "available_scales",
    "get_scale",
]
