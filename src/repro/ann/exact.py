"""Exact cosine nearest-neighbour search (the FAISS flat-index stand-in)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize rows, leaving zero rows untouched."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


class ExactNearestNeighbors:
    """Brute-force top-k cosine similarity search.

    The paper uses FAISS for the nearest-neighbour computations of the graph
    construction (Section 4.2).  At reproduction scale an exact search over a
    few thousand 128-dimensional vectors is a single matrix multiplication,
    so this is both the reference implementation and the default.
    """

    def __init__(self) -> None:
        self._vectors: np.ndarray | None = None

    def build(self, vectors: np.ndarray) -> "ExactNearestNeighbors":
        """Index ``vectors`` (one row per item)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-dimensional, got shape {vectors.shape}")
        self._vectors = _normalize_rows(vectors)
        return self

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        if self._vectors is None:
            raise NotFittedError("ExactNearestNeighbors.build must be called first")
        return len(self._vectors)

    def query(self, queries: np.ndarray, k: int,
              exclude_self: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` neighbours of each query row.

        Returns ``(indices, similarities)`` arrays of shape ``(n_queries, k)``.
        When ``exclude_self`` is true, a neighbour whose similarity is exactly
        attained at the query's own index is skipped — use it when the queries
        are the indexed vectors themselves.
        """
        if self._vectors is None:
            raise NotFittedError("ExactNearestNeighbors.build must be called first")
        if k <= 0:
            raise ValueError("k must be positive")
        queries = _normalize_rows(np.atleast_2d(np.asarray(queries, dtype=np.float64)))
        similarities = queries @ self._vectors.T

        n_queries = len(queries)
        effective_k = min(k + (1 if exclude_self else 0), self.size)
        # argpartition then sort the partitioned block for exact top-k order.
        top = np.argpartition(-similarities, effective_k - 1, axis=1)[:, :effective_k]
        row_index = np.arange(n_queries)[:, None]
        order = np.argsort(-similarities[row_index, top], axis=1)
        top = top[row_index, order]

        if exclude_self:
            kept_indices = np.zeros((n_queries, min(k, self.size - 1)), dtype=np.int64)
            kept_similarities = np.zeros_like(kept_indices, dtype=np.float64)
            for row in range(n_queries):
                neighbours = [index for index in top[row] if index != row]
                neighbours = neighbours[:kept_indices.shape[1]]
                kept_indices[row, :len(neighbours)] = neighbours
                kept_similarities[row, :len(neighbours)] = similarities[row, neighbours]
            return kept_indices, kept_similarities

        top = top[:, :k]
        return top, similarities[row_index[:, :1], top]

    def pairwise_similarities(self) -> np.ndarray:
        """Full cosine similarity matrix of the indexed vectors."""
        if self._vectors is None:
            raise NotFittedError("ExactNearestNeighbors.build must be called first")
        return self._vectors @ self._vectors.T
