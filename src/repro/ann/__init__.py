"""Nearest-neighbour search substrate (FAISS stand-in)."""

from repro.ann.exact import ExactNearestNeighbors
from repro.ann.lsh import LSHNearestNeighbors

__all__ = ["ExactNearestNeighbors", "LSHNearestNeighbors"]
