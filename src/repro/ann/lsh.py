"""Approximate nearest-neighbour search with random-hyperplane LSH.

Section 5.2 of the paper notes that LSH / HNSW could reduce the cost of the
K-Means-plus-graph pipeline.  This index implements the classic random
hyperplane (SimHash) scheme for cosine similarity: vectors with small angular
distance are likely to share hash buckets, so candidate neighbours are drawn
from matching buckets across several hash tables and re-ranked exactly.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.ann.exact import _normalize_rows
from repro.exceptions import NotFittedError


class LSHNearestNeighbors:
    """Random-hyperplane LSH index for cosine similarity.

    Parameters
    ----------
    num_tables:
        Number of independent hash tables; more tables raise recall.
    num_bits:
        Hash length per table; more bits shrink buckets (higher precision).
    """

    def __init__(self, num_tables: int = 8, num_bits: int = 12,
                 random_state: RandomState = None) -> None:
        if num_tables <= 0 or num_bits <= 0:
            raise ValueError("num_tables and num_bits must be positive")
        self.num_tables = num_tables
        self.num_bits = num_bits
        self._rng = ensure_rng(random_state)
        self._hyperplanes: np.ndarray | None = None
        self._tables: list[dict[int, list[int]]] | None = None
        self._vectors: np.ndarray | None = None

    def _hash(self, vectors: np.ndarray, table: int) -> np.ndarray:
        """Integer hash codes of ``vectors`` under the hyperplanes of ``table``."""
        assert self._hyperplanes is not None
        planes = self._hyperplanes[table]
        bits = (vectors @ planes.T) > 0
        powers = 1 << np.arange(self.num_bits)
        return bits @ powers

    def build(self, vectors: np.ndarray) -> "LSHNearestNeighbors":
        """Index ``vectors`` (one row per item)."""
        vectors = _normalize_rows(np.asarray(vectors, dtype=np.float64))
        if vectors.ndim != 2:
            raise ValueError("vectors must be 2-dimensional")
        dim = vectors.shape[1]
        self._hyperplanes = self._rng.normal(size=(self.num_tables, self.num_bits, dim))
        self._tables = []
        for table in range(self.num_tables):
            buckets: dict[int, list[int]] = defaultdict(list)
            codes = self._hash(vectors, table)
            for index, code in enumerate(codes):
                buckets[int(code)].append(index)
            self._tables.append(dict(buckets))
        self._vectors = vectors
        return self

    def query(self, queries: np.ndarray, k: int,
              exclude_self: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-``k`` neighbours of each query row.

        Candidates are the union of the query's buckets across all tables,
        re-ranked by exact cosine similarity.  Rows with fewer than ``k``
        candidates are padded with ``-1`` indices and ``-inf`` similarities.
        """
        if self._vectors is None or self._tables is None:
            raise NotFittedError("LSHNearestNeighbors.build must be called first")
        if k <= 0:
            raise ValueError("k must be positive")
        queries = _normalize_rows(np.atleast_2d(np.asarray(queries, dtype=np.float64)))
        n_queries = len(queries)
        indices = np.full((n_queries, k), -1, dtype=np.int64)
        similarities = np.full((n_queries, k), -np.inf, dtype=np.float64)

        # Hash every query against every table up front: one matmul per
        # table instead of one row-sized matmul per (query, table) pair,
        # which dominated query() time for batch lookups.
        codes_per_table = [self._hash(queries, table)
                           for table in range(self.num_tables)]
        for row in range(n_queries):
            candidates: set[int] = set()
            for table in range(self.num_tables):
                code = int(codes_per_table[table][row])
                candidates.update(self._tables[table].get(code, ()))
            if exclude_self:
                candidates.discard(row)
            if not candidates:
                continue
            candidate_list = sorted(candidates)
            scores = self._vectors[candidate_list] @ queries[row]
            order = np.argsort(-scores)[:k]
            chosen = [candidate_list[i] for i in order]
            indices[row, :len(chosen)] = chosen
            similarities[row, :len(chosen)] = scores[order]
        return indices, similarities
