"""Graph substrate: pair graphs, connected components, PageRank, certainty."""

from repro.graphs.components import UnionFind, connected_components
from repro.graphs.entropy import (
    certainty_score,
    certainty_scores,
    conditional_entropy,
    spatial_confidence,
)
from repro.graphs.pagerank import pagerank, pagerank_per_component
from repro.graphs.pair_graph import PairGraph, PairNode, build_pair_graph

__all__ = [
    "PairGraph",
    "PairNode",
    "UnionFind",
    "build_pair_graph",
    "certainty_score",
    "certainty_scores",
    "conditional_entropy",
    "connected_components",
    "pagerank",
    "pagerank_per_component",
    "spatial_confidence",
]
