"""Graph substrate: pair graphs, connected components, PageRank, certainty.

Two representations coexist: the dict-based :class:`PairGraph` (convenient
for tests and small graphs) and the vectorized CSR
:class:`~repro.graphs.sparse.SparseAdjacency` that the battleship hot path
runs on.
"""

from repro.graphs.components import (
    UnionFind,
    connected_component_labels,
    connected_components,
)
from repro.graphs.entropy import (
    certainty_score,
    certainty_scores,
    combined_certainty,
    conditional_entropy,
    spatial_confidence,
)
from repro.graphs.pagerank import edge_pagerank, pagerank, pagerank_per_component
from repro.graphs.pair_graph import (
    PairGraph,
    PairNode,
    build_pair_graph,
    build_pair_graph_reference,
)
from repro.graphs.sparse import (
    SparseAdjacency,
    build_sparse_adjacency,
    certainty_scores_batch,
    compute_cluster_edges,
    pagerank_components,
    spatial_confidence_batch,
)

__all__ = [
    "PairGraph",
    "PairNode",
    "SparseAdjacency",
    "UnionFind",
    "build_pair_graph",
    "build_pair_graph_reference",
    "build_sparse_adjacency",
    "certainty_score",
    "certainty_scores",
    "certainty_scores_batch",
    "combined_certainty",
    "compute_cluster_edges",
    "conditional_entropy",
    "connected_component_labels",
    "connected_components",
    "edge_pagerank",
    "pagerank",
    "pagerank_components",
    "pagerank_per_component",
    "spatial_confidence",
    "spatial_confidence_batch",
]
