"""Weighted PageRank centrality (Eq. 5 of the paper).

The battleship approach computes PageRank over each connected component of the
prediction-based graphs ``G+`` / ``G-``, treating every undirected edge as two
inversely directed edges with the same (cosine similarity) weight, and
restricting attention to pool (unlabeled) nodes.

The computation is a *sparse* power iteration over parallel edge arrays
(:func:`edge_pagerank`): per step, each node's score is pushed along its
out-edges with a scatter-add, so no dense n x n transition matrix is ever
materialized.  :func:`pagerank` adapts the dict-based :class:`PairGraph` API
to that kernel; the CSR substrate (:mod:`repro.graphs.sparse`) calls the
kernel directly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError
from repro.graphs.pair_graph import PairGraph


def edge_pagerank(
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    num_nodes: int,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """PageRank by sparse power iteration over directed edge arrays.

    Parameters
    ----------
    sources / targets / weights:
        Parallel arrays describing directed edges ``sources[i] -> targets[i]``
        with non-negative weight ``weights[i]`` (negative weights are clipped
        to zero, matching the dense seed implementation).  An undirected graph
        is passed as both edge directions.
    num_nodes:
        Number of nodes; node ids are positions ``0..num_nodes-1``.
    damping:
        The ``rho`` parameter of Eq. 5.
    max_iterations / tolerance:
        Power-iteration stopping criteria (L1 change between iterates).

    Returns
    -------
    Score per node, normalized to sum to 1.  Nodes without outgoing weight
    (dangling) teleport uniformly.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if num_nodes == 0:
        return np.empty(0, dtype=np.float64)
    if num_nodes == 1:
        return np.ones(1, dtype=np.float64)
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    weights = np.maximum(np.asarray(weights, dtype=np.float64), 0.0)

    out_weight = np.bincount(sources, weights=weights, minlength=num_nodes)
    dangling = out_weight == 0.0
    # Row-normalized edge weights; rows with zero outgoing mass are dangling
    # and handled separately, so the guard denominator is never used.
    normalized = weights / np.where(out_weight > 0.0, out_weight, 1.0)[sources]

    scores = np.full(num_nodes, 1.0 / num_nodes)
    teleport = (1.0 - damping) / num_nodes
    converged = False
    for _ in range(max_iterations):
        inbound = np.bincount(targets, weights=scores[sources] * normalized,
                              minlength=num_nodes)
        dangling_mass = float(scores[dangling].sum()) / num_nodes
        updated = teleport + damping * (inbound + dangling_mass)
        if float(np.abs(updated - scores).sum()) < tolerance:
            scores = updated
            converged = True
            break
        scores = updated
    if not converged and max_iterations > 0:
        # PageRank on a stochastic matrix always converges eventually; reaching
        # the cap with a loose tolerance is still a usable ranking signal, so
        # only guard against obviously broken outputs.
        if not np.all(np.isfinite(scores)):
            raise ConvergenceError("PageRank diverged (non-finite scores)")
    total = float(scores.sum())
    if total > 0:
        scores = scores / total
    return scores


def pagerank(
    graph: PairGraph,
    nodes: list[int] | None = None,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> dict[int, float]:
    """Weighted PageRank scores for ``nodes`` of ``graph``.

    Parameters
    ----------
    graph:
        The pair graph (or a subgraph / connected component of it).
    nodes:
        Restrict the computation to these nodes (default: all graph nodes).
        Edges to nodes outside the set are ignored.
    damping:
        The ``rho`` parameter of Eq. 5 (probability of following an edge rather
        than teleporting).
    max_iterations / tolerance:
        Power-iteration stopping criteria.

    Returns
    -------
    Mapping node id → PageRank score (scores sum to 1 over ``nodes``).
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    node_list = list(nodes) if nodes is not None else graph.node_ids()
    n = len(node_list)
    if n == 0:
        return {}
    if n == 1:
        return {node_list[0]: 1.0}
    index = {node_id: position for position, node_id in enumerate(node_list)}

    sources: list[int] = []
    targets: list[int] = []
    weights: list[float] = []
    for node_id in node_list:
        row = index[node_id]
        for neighbour, weight in graph.neighbors(node_id).items():
            if neighbour in index:
                sources.append(row)
                targets.append(index[neighbour])
                weights.append(weight)
    scores = edge_pagerank(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
        num_nodes=n, damping=damping,
        max_iterations=max_iterations, tolerance=tolerance,
    )
    return {node_id: float(scores[index[node_id]]) for node_id in node_list}


def pagerank_per_component(
    graph: PairGraph,
    pool_only: bool = True,
    damping: float = 0.85,
) -> dict[int, float]:
    """PageRank computed independently inside every connected component.

    ``pool_only`` restricts both the node set and the score normalization to
    unlabeled nodes, matching Section 3.5.2 ("centrality is computed only over
    the available pool elements").
    """
    scores: dict[int, float] = {}
    for component in graph.connected_components():
        members = [node_id for node_id in component
                   if not pool_only or not graph.node(node_id).labeled]
        if not members:
            continue
        component_scores = pagerank(graph, nodes=members, damping=damping)
        scores.update(component_scores)
    return scores
