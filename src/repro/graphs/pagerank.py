"""Weighted PageRank centrality (Eq. 5 of the paper).

The battleship approach computes PageRank over each connected component of the
prediction-based graphs ``G+`` / ``G-``, treating every undirected edge as two
inversely directed edges with the same (cosine similarity) weight, and
restricting attention to pool (unlabeled) nodes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError
from repro.graphs.pair_graph import PairGraph


def pagerank(
    graph: PairGraph,
    nodes: list[int] | None = None,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> dict[int, float]:
    """Weighted PageRank scores for ``nodes`` of ``graph``.

    Parameters
    ----------
    graph:
        The pair graph (or a subgraph / connected component of it).
    nodes:
        Restrict the computation to these nodes (default: all graph nodes).
        Edges to nodes outside the set are ignored.
    damping:
        The ``ρ`` parameter of Eq. 5 (probability of following an edge rather
        than teleporting).
    max_iterations / tolerance:
        Power-iteration stopping criteria.

    Returns
    -------
    Mapping node id → PageRank score (scores sum to 1 over ``nodes``).
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    node_list = list(nodes) if nodes is not None else graph.node_ids()
    n = len(node_list)
    if n == 0:
        return {}
    if n == 1:
        return {node_list[0]: 1.0}
    index = {node_id: position for position, node_id in enumerate(node_list)}

    # Row-stochastic transition matrix over edge weights.
    weights = np.zeros((n, n), dtype=np.float64)
    for node_id in node_list:
        row = index[node_id]
        for neighbour, weight in graph.neighbors(node_id).items():
            if neighbour in index:
                weights[row, index[neighbour]] = max(weight, 0.0)
    row_sums = weights.sum(axis=1)
    dangling = row_sums == 0
    row_sums[dangling] = 1.0
    transition = weights / row_sums[:, None]
    # Dangling nodes teleport uniformly.
    transition[dangling] = 1.0 / n

    scores = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    converged = False
    for _ in range(max_iterations):
        updated = teleport + damping * (transition.T @ scores)
        if float(np.abs(updated - scores).sum()) < tolerance:
            scores = updated
            converged = True
            break
        scores = updated
    if not converged and max_iterations > 0:
        # PageRank on a stochastic matrix always converges eventually; reaching
        # the cap with a loose tolerance is still a usable ranking signal, so
        # only guard against obviously broken outputs.
        if not np.all(np.isfinite(scores)):
            raise ConvergenceError("PageRank diverged (non-finite scores)")
    total = float(scores.sum())
    if total > 0:
        scores = scores / total
    return {node_id: float(scores[index[node_id]]) for node_id in node_list}


def pagerank_per_component(
    graph: PairGraph,
    pool_only: bool = True,
    damping: float = 0.85,
) -> dict[int, float]:
    """PageRank computed independently inside every connected component.

    ``pool_only`` restricts both the node set and the score normalization to
    unlabeled nodes, matching Section 3.5.2 ("centrality is computed only over
    the available pool elements").
    """
    scores: dict[int, float] = {}
    for component in graph.connected_components():
        members = [node_id for node_id in component
                   if not pool_only or not graph.node(node_id).labeled]
        if not members:
            continue
        component_scores = pagerank(graph, nodes=members, damping=damping)
        scores.update(component_scores)
    return scores
