"""Vectorized CSR substrate for the battleship selection pipeline.

:class:`SparseAdjacency` stores a pair graph (Section 3.3) in compressed
sparse-row form — parallel arrays ``indptr`` / ``indices`` / ``weights`` —
together with the per-node attributes that the dict-based
:class:`~repro.graphs.pair_graph.PairGraph` keeps in :class:`PairNode`
objects.  It is the representation the hot path runs on; ``to_pair_graph``
materializes the dict view for tests and small graphs.

:func:`build_sparse_adjacency` reproduces the edge-creation procedure of
Section 3.3.2 without a Python pair loop: within each cluster, the q nearest
allowed neighbours per node are found with ``np.argpartition`` and the extra
top-similarity edges with one stable argsort over the remaining upper-triangle
pairs.  The batched kernels (:func:`spatial_confidence_batch`,
:func:`certainty_scores_batch`, :func:`pagerank_components`) replace the
node-at-a-time walks of :mod:`repro.graphs.entropy` and
:mod:`repro.graphs.pagerank` with single scatter/gather passes over the edge
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.graphs.components import connected_component_labels
from repro.graphs.entropy import combined_certainty
from repro.graphs.pagerank import edge_pagerank
from repro.graphs.pair_graph import PairGraph, PairNode, coerce_builder_inputs
from repro.text.vectorizers import cosine_similarity_matrix


def _top_k_stable(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest values, ties broken by position.

    Equivalent to ``np.argsort(-values, kind="stable")[:k]`` but only
    stable-sorts the boundary tie group after an O(n) partition, which matters
    when ``k`` is a small share of a large candidate set.
    """
    if k >= values.size:
        return np.argsort(-values, kind="stable")[:k]
    threshold = values[np.argpartition(-values, k - 1)[:k]].min()
    pool = np.flatnonzero(values >= threshold)
    return pool[np.argsort(-values[pool], kind="stable")[:k]]


def compute_cluster_edges(
    similarities: np.ndarray,
    labeled_mask: np.ndarray,
    num_neighbors: int,
    extra_edge_ratio: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edge list of one cluster, vectorized (Section 3.3.2).

    Stage 1 connects every node to its ``q`` most similar *allowed* neighbours
    (self-similarity and labeled-labeled pairs are masked out); stage 2 adds
    the top ``extra_edge_ratio`` share of the remaining allowed pairs in
    descending similarity order, ties broken by upper-triangle (row-major)
    position.  Returns ``(u, v, weight)`` arrays of local positions with
    ``u < v``.  Stage 2 is O(size^2) in memory, the same order as the
    similarity matrix itself.
    """
    similarities = np.asarray(similarities, dtype=np.float64)
    size = similarities.shape[0]
    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
             np.empty(0, dtype=np.float64))
    if size < 2:
        return empty
    labeled_mask = np.asarray(labeled_mask, dtype=bool)

    masked = similarities.copy()
    np.fill_diagonal(masked, -np.inf)
    labeled_positions = np.flatnonzero(labeled_mask)
    if labeled_positions.size > 1:
        masked[np.ix_(labeled_positions, labeled_positions)] = -np.inf

    # Stage 1: q nearest allowed neighbours per node.
    q = min(num_neighbors, size - 1)
    top = np.argpartition(-masked, q - 1, axis=1)[:, :q]
    rows = np.repeat(np.arange(size), q)
    cols = top.reshape(-1)
    allowed = np.isfinite(masked[rows, cols])
    rows, cols = rows[allowed], cols[allowed]
    keys = np.unique(np.minimum(rows, cols) * size + np.maximum(rows, cols))
    nn_u, nn_v = keys // size, keys % size

    # Stage 2: top extra_edge_ratio share of the remaining allowed pairs.
    total_pairs = size * (size - 1) // 2
    extra_budget = int(np.floor(extra_edge_ratio * (total_pairs - keys.size)))
    if extra_budget > 0:
        created = np.zeros((size, size), dtype=bool)
        created[nn_u, nn_v] = True
        iu, iv = np.triu_indices(size, k=1)
        candidate = ~created[iu, iv] & ~(labeled_mask[iu] & labeled_mask[iv])
        cu, cv = iu[candidate], iv[candidate]
        order = _top_k_stable(similarities[cu, cv], extra_budget)
        edges_u = np.concatenate([nn_u, cu[order]])
        edges_v = np.concatenate([nn_v, cv[order]])
    else:
        edges_u, edges_v = nn_u, nn_v
    return (edges_u.astype(np.int64), edges_v.astype(np.int64),
            similarities[edges_u, edges_v])


@dataclass(frozen=True)
class SparseAdjacency:
    """CSR pair graph over positions ``0..num_nodes-1``.

    ``indices[indptr[i]:indptr[i+1]]`` are the neighbour positions of node
    ``i`` and ``weights[...]`` the matching edge weights (each undirected edge
    appears in both endpoint rows).  ``edges_u`` / ``edges_v`` /
    ``edge_weights`` list every undirected edge once with ``u < v``.
    Node attributes mirror :class:`~repro.graphs.pair_graph.PairNode`,
    indexed by position; ``node_ids[i]`` is the dataset-level id.
    """

    node_ids: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    predictions: np.ndarray
    confidences: np.ndarray
    match_probabilities: np.ndarray
    labeled_mask: np.ndarray
    edges_u: np.ndarray
    edges_v: np.ndarray
    edge_weights: np.ndarray

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self.edges_u)

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        """Neighbour positions and edge weights of the node at ``position``."""
        start, end = self.indptr[position], self.indptr[position + 1]
        return self.indices[start:end], self.weights[start:end]

    def directed_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Every undirected edge as two directed edges ``(sources, targets, weights)``."""
        sources = np.concatenate([self.edges_u, self.edges_v])
        targets = np.concatenate([self.edges_v, self.edges_u])
        return sources, targets, np.concatenate([self.edge_weights, self.edge_weights])

    @cached_property
    def _component_labels(self) -> np.ndarray:
        return connected_component_labels(self.num_nodes, self.edges_u, self.edges_v)

    def component_labels(self) -> np.ndarray:
        """Connected-component label per position (computed once, then cached —
        the arrays are immutable by convention)."""
        return self._component_labels

    def components(self) -> list[set[int]]:
        """Connected components as node-id sets, largest first.

        Size ties keep first-appearance order (the order of each component's
        first node), matching :meth:`PairGraph.connected_components`.
        """
        members: dict[int, list[int]] = {}
        for position, label in enumerate(self.component_labels().tolist()):
            members.setdefault(label, []).append(position)
        ordered = sorted(members.values(), key=len, reverse=True)
        return [{int(self.node_ids[position]) for position in group}
                for group in ordered]

    def to_pair_graph(self) -> PairGraph:
        """Materialize the dict-based view (tests, small graphs, debugging)."""
        graph = PairGraph()
        for position in range(self.num_nodes):
            graph.add_node(PairNode(
                node_id=int(self.node_ids[position]),
                prediction=int(self.predictions[position]),
                confidence=float(self.confidences[position]),
                match_probability=float(self.match_probabilities[position]),
                labeled=bool(self.labeled_mask[position]),
            ))
        for u, v, weight in zip(self.edges_u.tolist(), self.edges_v.tolist(),
                                self.edge_weights.tolist()):
            graph.add_edge(int(self.node_ids[u]), int(self.node_ids[v]), float(weight))
        return graph


def _empty_adjacency() -> SparseAdjacency:
    return SparseAdjacency(
        node_ids=np.empty(0, dtype=np.int64),
        indptr=np.zeros(1, dtype=np.int64),
        indices=np.empty(0, dtype=np.int64),
        weights=np.empty(0, dtype=np.float64),
        predictions=np.empty(0, dtype=np.int64),
        confidences=np.empty(0, dtype=np.float64),
        match_probabilities=np.empty(0, dtype=np.float64),
        labeled_mask=np.empty(0, dtype=bool),
        edges_u=np.empty(0, dtype=np.int64),
        edges_v=np.empty(0, dtype=np.int64),
        edge_weights=np.empty(0, dtype=np.float64),
    )


def build_sparse_adjacency(
    representations: np.ndarray,
    node_ids: Sequence[int],
    predictions: Sequence[int],
    confidences: Sequence[float],
    match_probabilities: Sequence[float],
    labeled_mask: Sequence[bool],
    cluster_labels: Sequence[int] | None = None,
    num_neighbors: int = 15,
    extra_edge_ratio: float = 0.03,
    similarity_matrix: np.ndarray | None = None,
) -> SparseAdjacency:
    """Build the CSR pair graph following Section 3.3.2 (vectorized).

    Parameters match :func:`repro.graphs.pair_graph.build_pair_graph`; the
    produced edge set is identical to the seed's node-at-a-time builder (up to
    tie order among equal similarities).
    """
    (node_ids, predictions, confidences, match_probabilities,
     labeled_mask, cluster_labels) = coerce_builder_inputs(
        node_ids, predictions, confidences, match_probabilities,
        labeled_mask, cluster_labels, num_neighbors, extra_edge_ratio)
    n = len(node_ids)
    if n == 0:
        return _empty_adjacency()

    parts_u: list[np.ndarray] = []
    parts_v: list[np.ndarray] = []
    parts_w: list[np.ndarray] = []
    for cluster in np.unique(cluster_labels):
        positions = np.flatnonzero(cluster_labels == cluster)
        if len(positions) < 2:
            continue
        if similarity_matrix is not None:
            cluster_similarities = similarity_matrix[np.ix_(positions, positions)]
        else:
            cluster_similarities = cosine_similarity_matrix(representations[positions])
        local_u, local_v, local_w = compute_cluster_edges(
            cluster_similarities, labeled_mask[positions],
            num_neighbors, extra_edge_ratio)
        parts_u.append(positions[local_u])
        parts_v.append(positions[local_v])
        parts_w.append(local_w)

    if parts_u:
        edges_u = np.concatenate(parts_u)
        edges_v = np.concatenate(parts_v)
        edge_weights = np.concatenate(parts_w)
    else:
        edges_u = np.empty(0, dtype=np.int64)
        edges_v = np.empty(0, dtype=np.int64)
        edge_weights = np.empty(0, dtype=np.float64)

    sources = np.concatenate([edges_u, edges_v])
    targets = np.concatenate([edges_v, edges_u])
    doubled = np.concatenate([edge_weights, edge_weights])
    order = np.argsort(sources, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(sources, minlength=n), out=indptr[1:])
    return SparseAdjacency(
        node_ids=node_ids,
        indptr=indptr,
        indices=targets[order],
        weights=doubled[order],
        predictions=predictions,
        confidences=confidences,
        match_probabilities=match_probabilities,
        labeled_mask=labeled_mask,
        edges_u=edges_u,
        edges_v=edges_v,
        edge_weights=edge_weights,
    )


def spatial_confidence_batch(adjacency: SparseAdjacency) -> np.ndarray:
    """Spatial confidence (Eq. 3) for every node in one pass.

    Returns an array aligned with ``adjacency.node_ids``.  Nodes without
    neighbours — or whose neighbourhood confidence mass is non-positive —
    fall back to their own model confidence, exactly like the per-node
    :func:`repro.graphs.entropy.spatial_confidence`.
    """
    n = adjacency.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.float64)
    rows = np.repeat(np.arange(n), adjacency.degrees)
    contributions = adjacency.weights * adjacency.confidences[adjacency.indices]
    agree = adjacency.predictions[adjacency.indices] == adjacency.predictions[rows]
    denominator = np.bincount(rows, weights=contributions, minlength=n)
    numerator = np.bincount(rows, weights=np.where(agree, contributions, 0.0),
                            minlength=n)
    positive = denominator > 0.0
    return np.where(positive,
                    numerator / np.where(positive, denominator, 1.0),
                    adjacency.confidences)


def certainty_scores_batch(adjacency: SparseAdjacency, beta: float = 0.5) -> np.ndarray:
    """Certainty scores (Eq. 4) for every node in one batched pass.

    Equivalent to calling :func:`repro.graphs.entropy.certainty_score` per
    node on the dict view, returned as an array aligned with
    ``adjacency.node_ids``.
    """
    return np.asarray(combined_certainty(
        adjacency.confidences, spatial_confidence_batch(adjacency), beta),
        dtype=np.float64).reshape(adjacency.num_nodes)


def pagerank_components(
    adjacency: SparseAdjacency,
    components: Iterable[set[int]] | None = None,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> dict[int, float]:
    """Per-component PageRank (Eq. 5) over the CSR adjacency.

    Every component is scored independently by sparse power iteration
    (scatter-add over its edge arrays — no dense matrix) and normalized within
    itself, matching the seed's per-component :func:`pagerank` calls.
    ``components`` defaults to :meth:`SparseAdjacency.components`; node-id
    subsets of components (e.g. pool-only members) are supported — edges to
    excluded nodes are ignored.
    """
    if adjacency.num_nodes == 0:
        return {}
    if components is None:
        components = adjacency.components()
    position_of = {int(node_id): position
                   for position, node_id in enumerate(adjacency.node_ids.tolist())}
    labels = adjacency.component_labels()
    # Group the undirected edges by component once; every edge is
    # intra-component by construction.
    edge_labels = labels[adjacency.edges_u]
    edge_order = np.argsort(edge_labels, kind="stable")
    sorted_u = adjacency.edges_u[edge_order]
    sorted_v = adjacency.edges_v[edge_order]
    sorted_w = adjacency.edge_weights[edge_order]
    sorted_labels = edge_labels[edge_order]

    scores: dict[int, float] = {}
    for component in components:
        positions = np.sort(np.fromiter(
            (position_of[int(node_id)] for node_id in component),
            dtype=np.int64, count=len(component)))
        size = positions.size
        if size == 0:
            continue
        if size == 1:
            scores[int(adjacency.node_ids[positions[0]])] = 1.0
            continue
        label = labels[positions[0]]
        low = np.searchsorted(sorted_labels, label, side="left")
        high = np.searchsorted(sorted_labels, label, side="right")
        component_u, component_v = sorted_u[low:high], sorted_v[low:high]
        component_w = sorted_w[low:high]
        # Drop edges touching nodes outside the member subset.
        local_u = np.searchsorted(positions, component_u)
        local_v = np.searchsorted(positions, component_v)
        inside = ((local_u < size) & (local_v < size)
                  & (positions[np.minimum(local_u, size - 1)] == component_u)
                  & (positions[np.minimum(local_v, size - 1)] == component_v))
        local_u, local_v, component_w = local_u[inside], local_v[inside], component_w[inside]
        member_scores = edge_pagerank(
            np.concatenate([local_u, local_v]),
            np.concatenate([local_v, local_u]),
            np.concatenate([component_w, component_w]),
            num_nodes=size, damping=damping,
            max_iterations=max_iterations, tolerance=tolerance,
        )
        for local, position in enumerate(positions.tolist()):
            scores[int(adjacency.node_ids[position])] = float(member_scores[local])
    return scores
