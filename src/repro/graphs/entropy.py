"""Certainty measures: conditional entropy, spatial confidence, and the
combined certainty score (Eqs. 1, 3 and 4 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.graphs.pair_graph import PairGraph

_EPSILON = 1e-12


def conditional_entropy(probability: float | np.ndarray) -> float | np.ndarray:
    """Binary conditional entropy ``H(p) = -p log p - (1-p) log(1-p)`` (Eq. 1).

    Natural logarithm; the maximum value (at ``p = 0.5``) is ``log 2``.
    Accepts scalars or arrays.
    """
    p = np.clip(np.asarray(probability, dtype=np.float64), _EPSILON, 1.0 - _EPSILON)
    entropy = -(p * np.log(p) + (1.0 - p) * np.log(1.0 - p))
    if np.isscalar(probability) or np.ndim(probability) == 0:
        return float(entropy)
    return entropy


def spatial_confidence(graph: PairGraph, node_id: int) -> float:
    """Spatial confidence of a node (Eq. 3).

    The weighted share of the node's neighbourhood confidence mass that agrees
    with the node's own prediction.  Neighbour contributions are weighted by
    edge similarity and by the neighbour's confidence in *its* prediction
    (1.0 for labeled nodes).  Nodes without neighbours fall back to their own
    model confidence, which reduces Eq. 4 to plain conditional entropy.
    """
    node = graph.node(node_id)
    neighbours = graph.neighbors(node_id)
    if not neighbours:
        return node.confidence

    numerator = 0.0
    denominator = 0.0
    for neighbour_id, weight in neighbours.items():
        neighbour = graph.node(neighbour_id)
        contribution = weight * neighbour.confidence
        denominator += contribution
        if neighbour.prediction == node.prediction:
            numerator += contribution
    if denominator <= 0:
        return node.confidence
    return numerator / denominator


def combined_certainty(confidences: float | np.ndarray,
                       spatial_confidences: float | np.ndarray,
                       beta: float = 0.5) -> np.ndarray:
    """Eq. 4 vectorized: combine local and spatial confidence into certainty.

    ``confidences`` and ``spatial_confidences`` are aligned scalars or arrays;
    the result is ``beta * H(confidence) + (1 - beta) * H(spatial)``.  This is
    the shared kernel behind :func:`certainty_score` (one node of a dict
    graph) and the batched CSR pass in :mod:`repro.graphs.sparse`.
    """
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    local_entropy = conditional_entropy(np.asarray(confidences, dtype=np.float64))
    spatial_entropy = conditional_entropy(
        np.asarray(spatial_confidences, dtype=np.float64))
    return beta * local_entropy + (1.0 - beta) * spatial_entropy


def certainty_score(graph: PairGraph, node_id: int, beta: float = 0.5) -> float:
    """Combined certainty score of a node (Eq. 4).

    ``beta`` weighs the model's own conditional entropy against the spatial
    entropy: ``beta = 1`` uses only the model confidence (DAL-style), ``beta =
    0`` uses only the spatial signal.  Higher scores mean *more uncertain*
    nodes (entropy), which the selector prefers.
    """
    node = graph.node(node_id)
    return float(combined_certainty(node.confidence,
                                    spatial_confidence(graph, node_id), beta))


def certainty_scores(graph: PairGraph, node_ids: list[int] | None = None,
                     beta: float = 0.5) -> dict[int, float]:
    """Certainty scores (Eq. 4) for many nodes at once."""
    if node_ids is None:
        node_ids = graph.node_ids()
    return {node_id: certainty_score(graph, node_id, beta) for node_id in node_ids}
