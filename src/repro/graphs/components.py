"""Union-find and connected components."""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set (no-op if already present)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def find(self, element: Hashable) -> Hashable:
        """Representative of the set containing ``element`` (with path compression)."""
        if element not in self._parent:
            raise KeyError(f"Unknown element: {element!r}")
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing ``a`` and ``b``; returns the new root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> list[set[Hashable]]:
        """All disjoint sets, largest first."""
        by_root: dict[Hashable, set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return sorted(by_root.values(), key=len, reverse=True)

    def __len__(self) -> int:
        return len(self._parent)


def connected_components(nodes: Sequence[Hashable],
                         edges: Iterable[tuple[Hashable, Hashable]]) -> list[set[Hashable]]:
    """Connected components of the undirected graph ``(nodes, edges)``.

    Isolated nodes form singleton components.  Components are returned largest
    first, which matches the budget-distribution walk in Section 3.4.
    """
    uf = UnionFind(nodes)
    for u, v in edges:
        uf.add(u)
        uf.add(v)
        uf.union(u, v)
    return uf.groups()


def connected_component_labels(num_nodes: int,
                               edges_u: np.ndarray | Sequence[int],
                               edges_v: np.ndarray | Sequence[int]) -> np.ndarray:
    """Component label per node for a graph given as parallel edge arrays.

    The array-based counterpart of :func:`connected_components`, used by the
    CSR substrate where nodes are positions ``0..num_nodes-1``.  Labels are
    root positions (arbitrary but deterministic integers); nodes share a label
    iff they are connected.
    """
    parent = list(range(num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    for u, v in zip(np.asarray(edges_u).tolist(), np.asarray(edges_v).tolist()):
        root_u, root_v = find(u), find(v)
        if root_u != root_v:
            parent[root_v] = root_u
    return np.fromiter((find(x) for x in range(num_nodes)),
                       dtype=np.int64, count=num_nodes)
