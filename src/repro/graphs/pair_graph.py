"""Pair graphs built from tuple-pair representations (Section 3.3).

A :class:`PairGraph` is an undirected weighted graph whose nodes are candidate
pairs (identified by their positional index in the dataset) annotated with the
matcher's prediction, its confidence in that prediction, and whether the pair
is already labeled.  Edges connect spatially close pairs; their weight is the
cosine similarity of the pair representations.

:func:`build_pair_graph` implements the edge-creation procedure of
Section 3.3.2: within every cluster, each node is connected to its ``q``
nearest neighbours, then the top share of the remaining intra-cluster node
pairs (ranked by similarity) is added, and two already-labeled nodes are never
connected directly.  The edges are computed by the vectorized CSR builder
(:func:`repro.graphs.sparse.build_sparse_adjacency`); the original
node-at-a-time construction survives as :func:`build_pair_graph_reference`,
the executable specification the equivalence tests and micro-benchmarks
compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.graphs.components import connected_components
from repro.text.vectorizers import cosine_similarity_matrix


@dataclass(frozen=True)
class PairNode:
    """Attributes of one node of a pair graph.

    Attributes
    ----------
    node_id:
        Positional index of the candidate pair in the dataset.
    prediction:
        Predicted (or, for labeled nodes, actual) class: 1 match / 0 non-match.
    confidence:
        Confidence of the matcher in ``prediction`` — ``max(p, 1-p)`` for
        pool pairs and exactly 1.0 for labeled pairs (Section 3.5.1).
    match_probability:
        The matcher's probability that the pair is a match (1.0 / 0.0 for
        labeled matches / non-matches).
    labeled:
        Whether the pair is already in the labeled training set.
    """

    node_id: int
    prediction: int
    confidence: float
    match_probability: float
    labeled: bool = False


class PairGraph:
    """Undirected weighted graph over candidate-pair nodes."""

    def __init__(self) -> None:
        self._nodes: dict[int, PairNode] = {}
        self._adjacency: dict[int, dict[int, float]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: PairNode) -> None:
        """Add ``node`` (replacing any previous node with the same id)."""
        self._nodes[node.node_id] = node
        self._adjacency.setdefault(node.node_id, {})

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add the undirected edge ``{u, v}`` with ``weight`` (idempotent)."""
        if u == v:
            raise ValueError("Self-loops are not allowed in a pair graph")
        if u not in self._nodes or v not in self._nodes:
            raise KeyError("Both endpoints must be added as nodes before the edge")
        self._adjacency[u][v] = float(weight)
        self._adjacency[v][u] = float(weight)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(neighbours) for neighbours in self._adjacency.values()) // 2

    def nodes(self) -> Iterator[PairNode]:
        """Iterate over node attribute objects."""
        return iter(self._nodes.values())

    def node_ids(self) -> list[int]:
        """All node identifiers."""
        return list(self._nodes)

    def node(self, node_id: int) -> PairNode:
        """Attributes of node ``node_id``."""
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adjacency.get(u, {})

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the edge ``{u, v}``."""
        return self._adjacency[u][v]

    def neighbors(self, node_id: int) -> dict[int, float]:
        """Mapping neighbour id → edge weight for ``node_id``."""
        return dict(self._adjacency.get(node_id, {}))

    def degree(self, node_id: int) -> int:
        return len(self._adjacency.get(node_id, {}))

    def edges(self) -> list[tuple[int, int, float]]:
        """All edges as ``(u, v, weight)`` with ``u < v``."""
        result = []
        for u, neighbours in self._adjacency.items():
            for v, weight in neighbours.items():
                if u < v:
                    result.append((u, v, weight))
        return result

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #
    def connected_components(self) -> list[set[int]]:
        """Connected components (largest first); isolated nodes are singletons."""
        edges = [(u, v) for u, v, _ in self.edges()]
        return connected_components(self.node_ids(), edges)

    def subgraph(self, node_ids: Iterable[int]) -> "PairGraph":
        """The induced subgraph on ``node_ids``."""
        keep = set(node_ids)
        graph = PairGraph()
        for node_id in keep:
            if node_id in self._nodes:
                graph.add_node(self._nodes[node_id])
        for node_id in keep:
            for neighbour, weight in self._adjacency.get(node_id, {}).items():
                if neighbour in keep and node_id < neighbour:
                    graph.add_edge(node_id, neighbour, weight)
        return graph


def coerce_builder_inputs(
    node_ids: Sequence[int],
    predictions: Sequence[int],
    confidences: Sequence[float],
    match_probabilities: Sequence[float],
    labeled_mask: Sequence[bool],
    cluster_labels: Sequence[int] | None,
    num_neighbors: int,
    extra_edge_ratio: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared coercion and validation for both pair-graph builders.

    Returns ``(node_ids, predictions, confidences, match_probabilities,
    labeled_mask, cluster_labels)`` as typed arrays.  Empty input returns
    empty arrays without validating the parameters (builders return an empty
    graph in that case).
    """
    node_ids = np.asarray(list(node_ids), dtype=np.int64)
    n = len(node_ids)
    if n == 0:
        return (node_ids, np.empty(0, dtype=np.int64), np.empty(0),
                np.empty(0), np.empty(0, dtype=bool), np.empty(0, dtype=np.int64))
    predictions = np.asarray(predictions, dtype=np.int64)
    confidences = np.asarray(confidences, dtype=np.float64)
    match_probabilities = np.asarray(match_probabilities, dtype=np.float64)
    labeled_mask = np.asarray(labeled_mask, dtype=bool)
    for name, array in (("predictions", predictions), ("confidences", confidences),
                        ("match_probabilities", match_probabilities),
                        ("labeled_mask", labeled_mask)):
        if len(array) != n:
            raise ValueError(f"{name} must have length {n}, got {len(array)}")
    if cluster_labels is None:
        cluster_labels = np.zeros(n, dtype=np.int64)
    else:
        cluster_labels = np.asarray(cluster_labels, dtype=np.int64)
        if len(cluster_labels) != n:
            raise ValueError(f"cluster_labels must have length {n}")
    if num_neighbors < 1:
        raise ValueError("num_neighbors must be >= 1")
    if not 0.0 <= extra_edge_ratio <= 1.0:
        raise ValueError("extra_edge_ratio must be in [0, 1]")
    return (node_ids, predictions, confidences, match_probabilities,
            labeled_mask, cluster_labels)


def build_pair_graph(
    representations: np.ndarray,
    node_ids: Sequence[int],
    predictions: Sequence[int],
    confidences: Sequence[float],
    match_probabilities: Sequence[float],
    labeled_mask: Sequence[bool],
    cluster_labels: Sequence[int] | None = None,
    num_neighbors: int = 15,
    extra_edge_ratio: float = 0.03,
    similarity_matrix: np.ndarray | None = None,
) -> PairGraph:
    """Build a pair graph following Section 3.3.2.

    Parameters
    ----------
    representations:
        Pair representations, one row per node (aligned with ``node_ids``).
    node_ids:
        Dataset-level indices of the pairs.
    predictions / confidences / match_probabilities / labeled_mask:
        Node attributes (see :class:`PairNode`).
    cluster_labels:
        Cluster assignment per node; edges are only created inside a cluster.
        ``None`` treats all nodes as one cluster.
    num_neighbors:
        ``q`` of the paper: every node is connected to its ``q`` nearest
        neighbours within its cluster.
    extra_edge_ratio:
        Fraction of the *remaining* intra-cluster node pairs (after the
        nearest-neighbour stage) added as extra edges, in descending
        similarity order.
    similarity_matrix:
        Optional pre-computed cosine similarity matrix aligned with
        ``node_ids`` (used by tests that specify similarities explicitly).
    """
    from repro.graphs.sparse import build_sparse_adjacency

    return build_sparse_adjacency(
        representations=representations,
        node_ids=node_ids,
        predictions=predictions,
        confidences=confidences,
        match_probabilities=match_probabilities,
        labeled_mask=labeled_mask,
        cluster_labels=cluster_labels,
        num_neighbors=num_neighbors,
        extra_edge_ratio=extra_edge_ratio,
        similarity_matrix=similarity_matrix,
    ).to_pair_graph()


def build_pair_graph_reference(
    representations: np.ndarray,
    node_ids: Sequence[int],
    predictions: Sequence[int],
    confidences: Sequence[float],
    match_probabilities: Sequence[float],
    labeled_mask: Sequence[bool],
    cluster_labels: Sequence[int] | None = None,
    num_neighbors: int = 15,
    extra_edge_ratio: float = 0.03,
    similarity_matrix: np.ndarray | None = None,
) -> PairGraph:
    """The original node-at-a-time builder (O(n^2) Python loops per cluster).

    Kept as the executable specification of Section 3.3.2: equivalence tests
    check the vectorized builder against it on random inputs, and the Figure 6
    micro-benchmarks time the two against each other.  Takes the same
    parameters as :func:`build_pair_graph`.
    """
    (node_ids, predictions, confidences, match_probabilities,
     labeled_mask, cluster_labels) = coerce_builder_inputs(
        node_ids, predictions, confidences, match_probabilities,
        labeled_mask, cluster_labels, num_neighbors, extra_edge_ratio)
    n = len(node_ids)
    if n == 0:
        return PairGraph()

    graph = PairGraph()
    for position, node_id in enumerate(node_ids):
        graph.add_node(PairNode(
            node_id=int(node_id),
            prediction=int(predictions[position]),
            confidence=float(confidences[position]),
            match_probability=float(match_probabilities[position]),
            labeled=bool(labeled_mask[position]),
        ))

    for cluster in np.unique(cluster_labels):
        positions = np.flatnonzero(cluster_labels == cluster)
        if len(positions) < 2:
            continue
        if similarity_matrix is not None:
            cluster_similarities = similarity_matrix[np.ix_(positions, positions)]
        else:
            cluster_similarities = cosine_similarity_matrix(representations[positions])
        _add_cluster_edges(graph, positions, node_ids, labeled_mask,
                           cluster_similarities, num_neighbors, extra_edge_ratio)
    return graph


def _add_cluster_edges(
    graph: PairGraph,
    positions: np.ndarray,
    node_ids: Sequence[int],
    labeled_mask: np.ndarray,
    similarities: np.ndarray,
    num_neighbors: int,
    extra_edge_ratio: float,
) -> None:
    """Create the q-NN edges and the extra top-similarity edges for one cluster."""
    size = len(positions)
    created: set[tuple[int, int]] = set()

    def is_allowed(local_u: int, local_v: int) -> bool:
        # Two already-labeled pairs are never connected directly (Example 4).
        return not (labeled_mask[positions[local_u]] and labeled_mask[positions[local_v]])

    # Stage 1: each node connects to its q nearest (allowed) neighbours.
    q = min(num_neighbors, size - 1)
    for local_u in range(size):
        order = np.argsort(-similarities[local_u])
        added = 0
        for local_v in order:
            if local_v == local_u or added >= q:
                if added >= q:
                    break
                continue
            if not is_allowed(local_u, local_v):
                continue
            key = (min(local_u, local_v), max(local_u, local_v))
            if key not in created:
                created.add(key)
                graph.add_edge(int(node_ids[positions[local_u]]),
                               int(node_ids[positions[local_v]]),
                               float(similarities[local_u, local_v]))
            added += 1

    # Stage 2: add the top extra_edge_ratio share of the remaining pairs.
    total_pairs = size * (size - 1) // 2
    remaining = total_pairs - len(created)
    extra_budget = int(np.floor(extra_edge_ratio * remaining))
    if extra_budget <= 0:
        return
    candidates: list[tuple[float, int, int]] = []
    for local_u in range(size):
        for local_v in range(local_u + 1, size):
            key = (local_u, local_v)
            if key in created or not is_allowed(local_u, local_v):
                continue
            candidates.append((float(similarities[local_u, local_v]), local_u, local_v))
    candidates.sort(key=lambda item: -item[0])
    for weight, local_u, local_v in candidates[:extra_budget]:
        graph.add_edge(int(node_ids[positions[local_u]]),
                       int(node_ids[positions[local_v]]), weight)
