"""Train / validation / test splits of candidate pair sets.

The paper evaluates on the benchmark-provided splits (ratios of 3:1:1 for the
Magellan datasets, 4:1 train/validation for WDC after holding out ~1,100 test
pairs).  The synthetic benchmarks reproduce those ratios with stratified
splitting so the positive rate is preserved in every part.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.data.pair import PairSet
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class SplitRatios:
    """Relative sizes of the train / validation / test parts."""

    train: float = 3.0
    validation: float = 1.0
    test: float = 1.0

    def __post_init__(self) -> None:
        if min(self.train, self.validation, self.test) < 0:
            raise DatasetError("Split ratios must be non-negative")
        if self.train <= 0:
            raise DatasetError("Train ratio must be positive")
        if self.total <= 0:
            raise DatasetError("At least one split ratio must be positive")

    @property
    def total(self) -> float:
        return self.train + self.validation + self.test

    def fractions(self) -> tuple[float, float, float]:
        """Normalized (train, validation, test) fractions summing to 1."""
        return (
            self.train / self.total,
            self.validation / self.total,
            self.test / self.total,
        )


@dataclass(frozen=True)
class DatasetSplit:
    """Positional indices of the three parts of a pair set."""

    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray

    def __post_init__(self) -> None:
        all_indices = np.concatenate([self.train, self.validation, self.test])
        if len(np.unique(all_indices)) != len(all_indices):
            raise DatasetError("Split parts overlap")

    @property
    def sizes(self) -> tuple[int, int, int]:
        return (len(self.train), len(self.validation), len(self.test))


def stratified_split(
    pairs: PairSet,
    ratios: SplitRatios | None = None,
    random_state: RandomState = None,
) -> DatasetSplit:
    """Split ``pairs`` into train/validation/test parts stratified by label.

    Unlabeled pairs are not allowed: the benchmarks carry gold labels for all
    candidate pairs and the oracle needs them.
    """
    ratios = ratios or SplitRatios()
    rng = ensure_rng(random_state)
    labels = pairs.labels()
    if np.any(labels < 0):
        raise DatasetError("stratified_split requires every pair to carry a gold label")

    train_fraction, validation_fraction, _ = ratios.fractions()
    train_parts: list[np.ndarray] = []
    validation_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for label_value in (0, 1):
        class_indices = np.flatnonzero(labels == label_value)
        rng.shuffle(class_indices)
        n = len(class_indices)
        n_train = int(round(n * train_fraction))
        n_validation = int(round(n * validation_fraction))
        n_train = min(n_train, n)
        n_validation = min(n_validation, n - n_train)
        train_parts.append(class_indices[:n_train])
        validation_parts.append(class_indices[n_train:n_train + n_validation])
        test_parts.append(class_indices[n_train + n_validation:])

    train = np.sort(np.concatenate(train_parts))
    validation = np.sort(np.concatenate(validation_parts))
    test = np.sort(np.concatenate(test_parts))
    return DatasetSplit(train=train, validation=validation, test=test)
