"""Data model: schemas, records, tables, candidate pairs, datasets, and IO."""

from repro.data.dataset import DatasetStatistics, EMDataset, build_pairset
from repro.data.pair import MATCH, NON_MATCH, CandidatePair, PairSet
from repro.data.record import Record, Table
from repro.data.schema import Attribute, AttributeType, Schema, bibliographic_schema, product_schema
from repro.data.serialization import (
    CLS_TOKEN,
    COL_TOKEN,
    SEP_TOKEN,
    VAL_TOKEN,
    SerializationConfig,
    deserialize_record,
    serialize_pair,
    serialize_record,
    split_pair_serialization,
    truncate_tokens,
)
from repro.data.splits import DatasetSplit, SplitRatios, stratified_split

__all__ = [
    "Attribute",
    "AttributeType",
    "CandidatePair",
    "CLS_TOKEN",
    "COL_TOKEN",
    "DatasetSplit",
    "DatasetStatistics",
    "EMDataset",
    "MATCH",
    "NON_MATCH",
    "PairSet",
    "Record",
    "Schema",
    "SEP_TOKEN",
    "SerializationConfig",
    "SplitRatios",
    "Table",
    "VAL_TOKEN",
    "bibliographic_schema",
    "build_pairset",
    "deserialize_record",
    "product_schema",
    "serialize_pair",
    "serialize_record",
    "split_pair_serialization",
    "stratified_split",
    "truncate_tokens",
]
