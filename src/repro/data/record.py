"""Records and tables.

A :class:`Record` is one tuple of an entity table: an identifier plus a mapping
from attribute name to (string) value.  A :class:`Table` is an ordered
collection of records sharing a :class:`~repro.data.schema.Schema`, as in the
clean-clean matching setting of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from repro.data.schema import Schema
from repro.exceptions import DatasetError, SchemaError


@dataclass(frozen=True)
class Record:
    """A single tuple of an entity table.

    Attributes
    ----------
    record_id:
        Identifier unique within the record's table.
    values:
        Mapping from attribute name to string value.  Missing attributes are
        simply absent (or mapped to an empty string).
    entity_id:
        Optional ground-truth identifier of the real-world entity this record
        describes.  Synthetic benchmarks populate it so a perfect oracle can be
        derived; real-world data may leave it ``None``.
    """

    record_id: str
    values: Mapping[str, str]
    entity_id: str | None = None

    def __post_init__(self) -> None:
        if not self.record_id:
            raise DatasetError("record_id must be a non-empty string")
        object.__setattr__(self, "values", dict(self.values))

    def value(self, attribute: str, default: str = "") -> str:
        """Return the value of ``attribute`` or ``default`` when missing."""
        raw = self.values.get(attribute, default)
        return default if raw is None else str(raw)

    def non_empty_attributes(self) -> tuple[str, ...]:
        """Names of attributes with a non-empty value."""
        return tuple(name for name, value in self.values.items() if str(value).strip())

    def text(self, attributes: Iterable[str] | None = None, separator: str = " ") -> str:
        """Concatenate attribute values into a single text blob."""
        names = tuple(attributes) if attributes is not None else tuple(self.values)
        parts = [self.value(name) for name in names]
        return separator.join(part for part in parts if part)


class Table:
    """An ordered, id-indexed collection of :class:`Record` objects."""

    def __init__(self, name: str, schema: Schema, records: Iterable[Record] = ()) -> None:
        if not name:
            raise DatasetError("Table name must be non-empty")
        self.name = name
        self.schema = schema
        self._records: list[Record] = []
        self._by_id: dict[str, int] = {}
        for record in records:
            self.add(record)

    def add(self, record: Record) -> None:
        """Append ``record``, validating its attributes against the schema."""
        try:
            self.schema.validate_values(dict(record.values))
        except SchemaError as exc:
            raise DatasetError(f"Record {record.record_id!r} does not fit table "
                               f"{self.name!r}: {exc}") from exc
        if record.record_id in self._by_id:
            raise DatasetError(
                f"Duplicate record_id {record.record_id!r} in table {self.name!r}"
            )
        self._by_id[record.record_id] = len(self._records)
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._by_id

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._records[self._by_id[record_id]]
        except KeyError:
            raise DatasetError(
                f"Table {self.name!r} has no record with id {record_id!r}"
            ) from None

    def get(self, record_id: str, default: Record | None = None) -> Record | None:
        """Return the record with ``record_id`` or ``default`` if absent."""
        index = self._by_id.get(record_id)
        return default if index is None else self._records[index]

    @property
    def record_ids(self) -> tuple[str, ...]:
        """All record identifiers in insertion order."""
        return tuple(record.record_id for record in self._records)

    def records(self) -> list[Record]:
        """A shallow copy of the record list."""
        return list(self._records)

    def filter(self, predicate: Callable[[Record], bool]) -> "Table":
        """Return a new table containing only records satisfying ``predicate``."""
        return Table(self.name, self.schema, (r for r in self._records if predicate(r)))

    def entity_ids(self) -> set[str]:
        """Distinct ground-truth entity identifiers present in the table."""
        return {r.entity_id for r in self._records if r.entity_id is not None}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table(name={self.name!r}, records={len(self)}, schema={self.schema.name!r})"
