"""Reading and writing tables and candidate pairs.

The Magellan / WDC benchmarks ship as CSV files (``tableA.csv``,
``tableB.csv``, ``train.csv`` with ``ltable_id, rtable_id, label`` columns).
This module provides the same on-disk layout so users with access to the real
benchmark downloads can load them into :class:`~repro.data.dataset.EMDataset`
objects, and so the synthetic benchmarks can be exported for inspection.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.data.dataset import EMDataset
from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table
from repro.data.schema import Schema
from repro.exceptions import DatasetError

_ID_COLUMN = "id"
_ENTITY_COLUMN = "entity_id"


def write_table_csv(table: Table, path: str | Path) -> Path:
    """Write ``table`` to ``path`` as CSV with ``id`` plus attribute columns."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = [_ID_COLUMN, *table.schema.attribute_names, _ENTITY_COLUMN]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in table:
            row = {_ID_COLUMN: record.record_id, _ENTITY_COLUMN: record.entity_id or ""}
            for name in table.schema.attribute_names:
                row[name] = record.value(name)
            writer.writerow(row)
    return path


def read_table_csv(path: str | Path, schema: Schema, name: str | None = None) -> Table:
    """Read a table written by :func:`write_table_csv` (or benchmark CSVs)."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"Table file does not exist: {path}")
    table = Table(name or path.stem, schema)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or _ID_COLUMN not in reader.fieldnames:
            raise DatasetError(f"Table CSV {path} must contain an {_ID_COLUMN!r} column")
        for row in reader:
            values = {
                attr: row.get(attr, "") or ""
                for attr in schema.attribute_names
                if attr in row
            }
            entity_id = row.get(_ENTITY_COLUMN) or None
            table.add(Record(record_id=row[_ID_COLUMN], values=values, entity_id=entity_id))
    return table


def write_pairs_csv(pairs: PairSet, path: str | Path) -> Path:
    """Write candidate pairs to CSV with ``ltable_id, rtable_id, label`` columns."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["pair_id", "ltable_id", "rtable_id", "label"])
        for pair in pairs:
            label = "" if pair.label is None else pair.label
            writer.writerow([pair.pair_id, pair.left_id, pair.right_id, label])
    return path


def read_pairs_csv(path: str | Path) -> PairSet:
    """Read candidate pairs written by :func:`write_pairs_csv`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"Pairs file does not exist: {path}")
    pairs = PairSet()
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        required = {"ltable_id", "rtable_id"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise DatasetError(
                f"Pairs CSV {path} must contain columns {sorted(required)}"
            )
        for index, row in enumerate(reader):
            raw_label = row.get("label", "")
            label = int(raw_label) if raw_label not in ("", None) else None
            pair_id = row.get("pair_id") or f"p{index}"
            pairs.add(CandidatePair(pair_id, row["ltable_id"], row["rtable_id"], label))
    return pairs


def export_dataset(dataset: EMDataset, directory: str | Path) -> dict[str, Path]:
    """Export an :class:`EMDataset` as the standard benchmark file layout.

    Returns a mapping from logical file name to the written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {
        "tableA": write_table_csv(dataset.left, directory / "tableA.csv"),
        "tableB": write_table_csv(dataset.right, directory / "tableB.csv"),
        "pairs": write_pairs_csv(dataset.pairs, directory / "pairs.csv"),
    }
    split_payload = {
        "train": dataset.split.train.tolist(),
        "validation": dataset.split.validation.tolist(),
        "test": dataset.split.test.tolist(),
    }
    split_path = directory / "split.json"
    split_path.write_text(json.dumps(split_payload, indent=2), encoding="utf-8")
    written["split"] = split_path
    return written


def write_serialized_pairs(dataset: EMDataset, path: str | Path,
                           indices: Iterable[int] | None = None) -> Path:
    """Write DITTO-style serializations (one per line, tab-separated label)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    index_list = list(indices) if indices is not None else list(range(len(dataset.pairs)))
    with path.open("w", encoding="utf-8") as handle:
        for index in index_list:
            pair = dataset.pairs[index]
            label = "" if pair.label is None else str(pair.label)
            handle.write(f"{dataset.serialize(pair)}\t{label}\n")
    return path
