"""Candidate pairs and labeled pair collections.

After blocking, entity matching classifies a set of *candidate pairs*
``(r1, r2) ∈ D1 × D2``.  :class:`CandidatePair` ties two record identifiers
together with an optional gold label; :class:`PairSet` is the ordered,
index-addressable collection the active-learning machinery operates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import DatasetError

#: Integer label of a matching pair.
MATCH = 1
#: Integer label of a non-matching pair.
NON_MATCH = 0


@dataclass(frozen=True)
class CandidatePair:
    """A candidate tuple pair produced by blocking.

    Attributes
    ----------
    pair_id:
        Unique identifier of the pair within its :class:`PairSet`.
    left_id / right_id:
        Record identifiers in the left / right table.
    label:
        Gold label (``1`` match, ``0`` non-match) or ``None`` when unknown.
    """

    pair_id: str
    left_id: str
    right_id: str
    label: int | None = None

    def __post_init__(self) -> None:
        if not self.pair_id:
            raise DatasetError("pair_id must be non-empty")
        if self.label is not None and self.label not in (MATCH, NON_MATCH):
            raise DatasetError(f"label must be 0, 1 or None; got {self.label!r}")

    @property
    def key(self) -> tuple[str, str]:
        """The ``(left_id, right_id)`` key of the pair."""
        return (self.left_id, self.right_id)

    def with_label(self, label: int) -> "CandidatePair":
        """Return a copy of this pair carrying ``label``."""
        return CandidatePair(self.pair_id, self.left_id, self.right_id, label)


class PairSet:
    """An ordered collection of :class:`CandidatePair` objects.

    Pairs are addressable both by integer position (the representation
    matrices produced by the matcher are aligned with positions) and by
    ``pair_id``.
    """

    def __init__(self, pairs: Iterable[CandidatePair] = ()) -> None:
        self._pairs: list[CandidatePair] = []
        self._by_id: dict[str, int] = {}
        self._by_key: dict[tuple[str, str], int] = {}
        for pair in pairs:
            self.add(pair)

    def add(self, pair: CandidatePair) -> None:
        """Append ``pair`` to the collection."""
        if pair.pair_id in self._by_id:
            raise DatasetError(f"Duplicate pair_id {pair.pair_id!r}")
        if pair.key in self._by_key:
            raise DatasetError(f"Duplicate candidate pair for key {pair.key!r}")
        index = len(self._pairs)
        self._pairs.append(pair)
        self._by_id[pair.pair_id] = index
        self._by_key[pair.key] = index

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[CandidatePair]:
        return iter(self._pairs)

    def __getitem__(self, index: int) -> CandidatePair:
        return self._pairs[index]

    def __contains__(self, pair_id: object) -> bool:
        return pair_id in self._by_id

    def by_id(self, pair_id: str) -> CandidatePair:
        """Return the pair with identifier ``pair_id``."""
        try:
            return self._pairs[self._by_id[pair_id]]
        except KeyError:
            raise DatasetError(f"No candidate pair with id {pair_id!r}") from None

    def by_key(self, left_id: str, right_id: str) -> CandidatePair:
        """Return the pair connecting ``left_id`` and ``right_id``."""
        try:
            return self._pairs[self._by_key[(left_id, right_id)]]
        except KeyError:
            raise DatasetError(
                f"No candidate pair for key ({left_id!r}, {right_id!r})"
            ) from None

    def index_of(self, pair_id: str) -> int:
        """Positional index of the pair with identifier ``pair_id``."""
        try:
            return self._by_id[pair_id]
        except KeyError:
            raise DatasetError(f"No candidate pair with id {pair_id!r}") from None

    def pair_ids(self) -> tuple[str, ...]:
        """All pair identifiers in positional order."""
        return tuple(pair.pair_id for pair in self._pairs)

    def labels(self, missing: int = -1) -> np.ndarray:
        """Gold labels as an integer array (``missing`` for unlabeled pairs)."""
        return np.array(
            [missing if pair.label is None else pair.label for pair in self._pairs],
            dtype=np.int64,
        )

    def labeled_fraction(self) -> float:
        """Fraction of pairs carrying a gold label."""
        if not self._pairs:
            return 0.0
        labeled = sum(1 for pair in self._pairs if pair.label is not None)
        return labeled / len(self._pairs)

    def positive_rate(self) -> float:
        """Fraction of labeled pairs that are matches."""
        labeled = [pair.label for pair in self._pairs if pair.label is not None]
        if not labeled:
            return 0.0
        return float(np.mean(labeled))

    def subset(self, indices: Sequence[int]) -> "PairSet":
        """A new :class:`PairSet` restricted to ``indices`` (order preserved)."""
        return PairSet(self._pairs[i] for i in indices)

    def split_by_label(self) -> tuple["PairSet", "PairSet", "PairSet"]:
        """Split into (matches, non-matches, unlabeled) pair sets."""
        matches = PairSet(p for p in self._pairs if p.label == MATCH)
        non_matches = PairSet(p for p in self._pairs if p.label == NON_MATCH)
        unlabeled = PairSet(p for p in self._pairs if p.label is None)
        return matches, non_matches, unlabeled

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PairSet(pairs={len(self)}, positive_rate={self.positive_rate():.3f})"
