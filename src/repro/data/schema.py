"""Relational schema description for entity tables.

Entity matching operates over tuples drawn from (usually two) tables.  Every
tuple is a set of ``(attribute, value)`` pairs (Section 2.1 of the paper).  A
:class:`Schema` declares the attribute names, their types, and which attribute
acts as the record identifier; :class:`Attribute` carries per-attribute
metadata used by the serializer, the similarity features, and the synthetic
data generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

from repro.exceptions import SchemaError


class AttributeType(str, Enum):
    """Value domain of an attribute.

    ``TEXT`` attributes hold free text (titles, descriptions), ``CATEGORICAL``
    hold short controlled vocabulary values (brand, venue), ``NUMERIC`` hold
    numbers serialized as strings (price, year).
    """

    TEXT = "text"
    CATEGORICAL = "categorical"
    NUMERIC = "numeric"


@dataclass(frozen=True)
class Attribute:
    """A single attribute of a table schema.

    Attributes
    ----------
    name:
        Attribute name as it appears in serialized pairs, e.g. ``"title"``.
    kind:
        The :class:`AttributeType` of the attribute.
    weight:
        Relative importance used by similarity-feature aggregation; the
        default of ``1.0`` treats all attributes equally.
    """

    name: str
    kind: AttributeType = AttributeType.TEXT
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise SchemaError("Attribute name must be a non-empty string")
        if self.weight <= 0:
            raise SchemaError(
                f"Attribute weight must be positive, got {self.weight} for {self.name!r}"
            )


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Attribute` objects.

    The order is significant: serialization (Example 3 in the paper) walks the
    attributes in schema order.
    """

    attributes: tuple[Attribute, ...]
    name: str = "schema"

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError("Schema must declare at least one attribute")
        names = [attribute.name for attribute in self.attributes]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"Duplicate attribute names in schema: {sorted(duplicates)}")

    @classmethod
    def from_names(
        cls,
        names: Iterable[str],
        kinds: dict[str, AttributeType] | None = None,
        name: str = "schema",
    ) -> "Schema":
        """Build a schema from attribute names, all ``TEXT`` unless overridden."""
        kinds = kinds or {}
        attributes = tuple(
            Attribute(name=attr_name, kind=kinds.get(attr_name, AttributeType.TEXT))
            for attr_name in names
        )
        return cls(attributes=attributes, name=name)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of all attributes in declaration order."""
        return tuple(attribute.name for attribute in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return any(attribute.name == name for attribute in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``.

        Raises
        ------
        SchemaError
            If no attribute with that name exists.
        """
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"Schema {self.name!r} has no attribute named {name!r}")

    def validate_values(self, values: dict[str, str]) -> None:
        """Check that ``values`` only uses attributes declared by this schema."""
        unknown = set(values) - set(self.attribute_names)
        if unknown:
            raise SchemaError(
                f"Values reference attributes not in schema {self.name!r}: {sorted(unknown)}"
            )


def product_schema(attribute_names: Iterable[str] | None = None) -> Schema:
    """Convenience factory for a typical product-matching schema."""
    names = tuple(attribute_names or ("title", "manufacturer", "price"))
    kinds = {"price": AttributeType.NUMERIC, "manufacturer": AttributeType.CATEGORICAL}
    return Schema.from_names(names, kinds={k: v for k, v in kinds.items() if k in names},
                             name="product")


def bibliographic_schema() -> Schema:
    """Convenience factory for a DBLP-Scholar style bibliographic schema."""
    return Schema(
        attributes=(
            Attribute("title", AttributeType.TEXT),
            Attribute("authors", AttributeType.TEXT),
            Attribute("venue", AttributeType.CATEGORICAL),
            Attribute("year", AttributeType.NUMERIC),
        ),
        name="bibliographic",
    )
