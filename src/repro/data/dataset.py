"""The :class:`EMDataset` container.

An entity-matching benchmark bundles two clean tables, the candidate pair set
produced by blocking, the gold labels, and a train/validation/test split.  The
active-learning experiments treat the *train* part as the initially unlabeled
dataset ``D`` (labels are hidden behind the oracle), use the validation part
for model selection, and report F1 on the held-out test part — mirroring
Section 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table
from repro.data.schema import Schema
from repro.data.serialization import SerializationConfig, serialize_pair
from repro.data.splits import DatasetSplit, SplitRatios, stratified_split
from repro.exceptions import DatasetError
from repro._rng import RandomState


@dataclass
class DatasetStatistics:
    """Summary statistics of a benchmark (the rows of Table 3)."""

    name: str
    num_pairs: int
    num_train_pairs: int
    positive_rate: float
    num_attributes: int
    num_left_records: int
    num_right_records: int

    def as_row(self) -> dict[str, object]:
        """Return the statistics as a flat dictionary for report tables."""
        return {
            "dataset": self.name,
            "size": self.num_train_pairs,
            "pos_rate": round(self.positive_rate, 4),
            "num_attributes": self.num_attributes,
            "pairs_total": self.num_pairs,
            "left_records": self.num_left_records,
            "right_records": self.num_right_records,
        }


class EMDataset:
    """A complete entity-matching benchmark.

    Parameters
    ----------
    name:
        Benchmark name, e.g. ``"walmart_amazon"``.
    left / right:
        The two clean entity tables.
    pairs:
        Candidate pairs, each carrying a gold label.
    split:
        Optional pre-computed train/validation/test split; when omitted a
        stratified 3:1:1 split is drawn.
    serialization:
        Serialization options shared by all consumers of this dataset (the WDC
        benchmarks restrict it to the ``title`` attribute, as in the paper).
    """

    def __init__(
        self,
        name: str,
        left: Table,
        right: Table,
        pairs: PairSet,
        split: DatasetSplit | None = None,
        serialization: SerializationConfig | None = None,
        split_ratios: SplitRatios | None = None,
        random_state: RandomState = None,
    ) -> None:
        if not name:
            raise DatasetError("Dataset name must be non-empty")
        if len(pairs) == 0:
            raise DatasetError(f"Dataset {name!r} has no candidate pairs")
        self.name = name
        self.left = left
        self.right = right
        self.pairs = pairs
        self.serialization = serialization or SerializationConfig()
        self._validate_pairs()
        if split is None:
            split = stratified_split(pairs, split_ratios, random_state)
        self.split = split

    def _validate_pairs(self) -> None:
        for pair in self.pairs:
            if pair.left_id not in self.left:
                raise DatasetError(
                    f"Pair {pair.pair_id!r} references missing left record {pair.left_id!r}"
                )
            if pair.right_id not in self.right:
                raise DatasetError(
                    f"Pair {pair.pair_id!r} references missing right record {pair.right_id!r}"
                )

    # ------------------------------------------------------------------ #
    # Record / pair access
    # ------------------------------------------------------------------ #
    def records_for(self, pair: CandidatePair) -> tuple[Record, Record]:
        """Return the (left, right) records of ``pair``."""
        return self.left[pair.left_id], self.right[pair.right_id]

    def serialize(self, pair: CandidatePair) -> str:
        """DITTO-style serialization of ``pair`` (Example 3 of the paper)."""
        left, right = self.records_for(pair)
        return serialize_pair(left, right, self.left.schema, self.right.schema,
                              self.serialization)

    def serialized_pairs(self, indices: Sequence[int] | None = None) -> list[str]:
        """Serializations of the pairs at ``indices`` (all pairs by default)."""
        if indices is None:
            indices = range(len(self.pairs))
        return [self.serialize(self.pairs[i]) for i in indices]

    def labels(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """Gold labels of the pairs at ``indices`` (all pairs by default)."""
        labels = self.pairs.labels()
        if np.any(labels < 0):
            raise DatasetError(f"Dataset {self.name!r} contains unlabeled pairs")
        if indices is None:
            return labels
        return labels[np.asarray(indices, dtype=np.int64)]

    # ------------------------------------------------------------------ #
    # Split views
    # ------------------------------------------------------------------ #
    @property
    def train_indices(self) -> np.ndarray:
        """Indices of the pool the active learner draws labels from."""
        return self.split.train

    @property
    def validation_indices(self) -> np.ndarray:
        """Indices used for matcher model selection (early stopping)."""
        return self.split.validation

    @property
    def test_indices(self) -> np.ndarray:
        """Held-out indices used only for reporting F1."""
        return self.split.test

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> DatasetStatistics:
        """Summary statistics in the shape of Table 3."""
        train_labels = self.labels(self.train_indices)
        return DatasetStatistics(
            name=self.name,
            num_pairs=len(self.pairs),
            num_train_pairs=len(self.train_indices),
            positive_rate=float(np.mean(train_labels)) if len(train_labels) else 0.0,
            num_attributes=len(self.serialization.attributes
                               if self.serialization.attributes is not None
                               else self.left.schema.attribute_names),
            num_left_records=len(self.left),
            num_right_records=len(self.right),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        stats = self.statistics()
        return (f"EMDataset(name={self.name!r}, pairs={stats.num_pairs}, "
                f"train={stats.num_train_pairs}, pos_rate={stats.positive_rate:.3f})")


def build_pairset(
    labeled_keys: Iterable[tuple[str, str, int]],
    prefix: str = "p",
) -> PairSet:
    """Create a :class:`PairSet` from ``(left_id, right_id, label)`` triples."""
    pairs = PairSet()
    for index, (left_id, right_id, label) in enumerate(labeled_keys):
        pairs.add(CandidatePair(f"{prefix}{index}", left_id, right_id, label))
    return pairs
