"""DITTO-style serialization of tuples and tuple pairs.

Following Section 2.1 / Example 3 of the paper, a tuple is serialized as a
sequence of ``[COL] attribute [VAL] value`` segments and a pair as::

    [CLS] <serialization of r1> [SEP] <serialization of r2>

The pre-trained language model of the paper consumes this text directly.  Our
NumPy matcher consumes the same serialization through a hashing featurizer, so
the serializer is shared between the matcher substrate, the examples, and the
dataset IO round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.data.record import Record
from repro.data.schema import Schema

#: Special tokens used by the serializer, mirroring DITTO.
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
COL_TOKEN = "[COL]"
VAL_TOKEN = "[VAL]"


@dataclass(frozen=True)
class SerializationConfig:
    """Options controlling pair serialization.

    Attributes
    ----------
    include_cls:
        Prepend the ``[CLS]`` token (the paper always does; turning it off is
        convenient for plain-text exports).
    lowercase:
        Lowercase attribute values, mirroring the paper's preprocessing.
    max_tokens:
        Truncate the serialized pair to this many whitespace tokens, emulating
        the 512-token limit of BERT-based models.
    attributes:
        Restrict serialization to these attributes (e.g. the WDC datasets use
        only ``title``).  ``None`` serializes every schema attribute.
    """

    include_cls: bool = True
    lowercase: bool = True
    max_tokens: int = 512
    attributes: tuple[str, ...] | None = None


def serialize_record(
    record: Record,
    schema: Schema,
    config: SerializationConfig | None = None,
) -> str:
    """Serialize a single record as ``[COL] a1 [VAL] v1 [COL] a2 [VAL] v2 ...``."""
    config = config or SerializationConfig()
    names: Iterable[str]
    if config.attributes is not None:
        names = [name for name in config.attributes if name in schema.attribute_names]
    else:
        names = schema.attribute_names
    segments: list[str] = []
    for name in names:
        value = record.value(name)
        if config.lowercase:
            value = value.lower()
        segments.append(f"{COL_TOKEN} {name} {VAL_TOKEN} {value}".strip())
    return " ".join(segments)


def serialize_pair(
    left: Record,
    right: Record,
    schema_left: Schema,
    schema_right: Schema | None = None,
    config: SerializationConfig | None = None,
) -> str:
    """Serialize a candidate pair in the DITTO input format (Example 3)."""
    config = config or SerializationConfig()
    schema_right = schema_right or schema_left
    left_text = serialize_record(left, schema_left, config)
    right_text = serialize_record(right, schema_right, config)
    if config.include_cls:
        serialized = f"{CLS_TOKEN} {left_text} {SEP_TOKEN} {right_text}"
    else:
        serialized = f"{left_text} {SEP_TOKEN} {right_text}"
    return truncate_tokens(serialized, config.max_tokens)


def truncate_tokens(text: str, max_tokens: int) -> str:
    """Truncate ``text`` to at most ``max_tokens`` whitespace-separated tokens."""
    if max_tokens <= 0:
        return ""
    tokens = text.split()
    if len(tokens) <= max_tokens:
        return " ".join(tokens)
    return " ".join(tokens[:max_tokens])


def deserialize_record(text: str) -> dict[str, str]:
    """Parse a ``[COL] ... [VAL] ...`` serialization back into a value mapping.

    Round-tripping is lossy with respect to character case (the serializer
    lowercases) but preserves the attribute/value structure, which is enough
    for debugging and for tests of the serializer itself.
    """
    values: dict[str, str] = {}
    chunks = text.split(COL_TOKEN)
    for chunk in chunks:
        chunk = chunk.strip()
        if not chunk or VAL_TOKEN not in chunk:
            continue
        name, _, value = chunk.partition(VAL_TOKEN)
        values[name.strip()] = value.replace(SEP_TOKEN, "").strip()
    return values


def split_pair_serialization(text: str) -> tuple[str, str]:
    """Split a serialized pair into the left and right record serializations."""
    body = text
    if body.startswith(CLS_TOKEN):
        body = body[len(CLS_TOKEN):].strip()
    left, _, right = body.partition(SEP_TOKEN)
    return left.strip(), right.strip()
