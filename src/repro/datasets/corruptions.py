"""Corruption pipeline used to derive noisy record variants.

A synthetic benchmark starts from a catalog of clean entities.  Each table
(e.g. the "Walmart" side and the "Amazon" side) receives a *variant* of every
entity it contains, produced by applying a configurable sequence of corruption
operators: typos, token drops and swaps, abbreviation substitution, missing
values, numeric perturbation, and token injection.  Matching pairs are exactly
the pairs whose records descend from the same entity, so corruption strength
controls how hard the matching task is — mirroring the difference between the
relatively clean Magellan data and the dirtier crawled sources (Google
Scholar, WDC e-shops) described in Section 4.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.datasets.vocabularies import ABBREVIATIONS

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class CorruptionConfig:
    """Per-attribute corruption strengths (all probabilities in ``[0, 1]``).

    Attributes
    ----------
    typo_rate:
        Probability of introducing a character-level typo in each token.
    token_drop_rate:
        Probability of dropping each token.
    token_swap_rate:
        Probability of swapping a token with its successor.
    abbreviation_rate:
        Probability of replacing a token (or phrase) with its abbreviation.
    missing_rate:
        Probability of blanking the whole attribute value.
    numeric_noise:
        Relative noise applied to numeric values (e.g. ``0.05`` perturbs a
        price by up to ±5%).
    injection_rate:
        Probability of appending a noise token (marketing filler, seller name).
    case_noise_rate:
        Probability of upper-casing a token (simulating inconsistent casing).
    """

    typo_rate: float = 0.02
    token_drop_rate: float = 0.05
    token_swap_rate: float = 0.02
    abbreviation_rate: float = 0.1
    missing_rate: float = 0.02
    numeric_noise: float = 0.03
    injection_rate: float = 0.05
    case_noise_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("typo_rate", "token_drop_rate", "token_swap_rate",
                     "abbreviation_rate", "missing_rate", "injection_rate",
                     "case_noise_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.numeric_noise < 0:
            raise ValueError(f"numeric_noise must be >= 0, got {self.numeric_noise}")

    def scaled(self, factor: float) -> "CorruptionConfig":
        """Return a config with all probabilities multiplied by ``factor`` (capped at 1)."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        clip = lambda value: min(1.0, value * factor)  # noqa: E731 - tiny local helper
        return CorruptionConfig(
            typo_rate=clip(self.typo_rate),
            token_drop_rate=clip(self.token_drop_rate),
            token_swap_rate=clip(self.token_swap_rate),
            abbreviation_rate=clip(self.abbreviation_rate),
            missing_rate=clip(self.missing_rate),
            numeric_noise=self.numeric_noise * factor,
            injection_rate=clip(self.injection_rate),
            case_noise_rate=clip(self.case_noise_rate),
        )


#: Corruption profile of a relatively clean curated source (e.g. DBLP, Walmart).
CLEAN_SOURCE = CorruptionConfig(
    typo_rate=0.005, token_drop_rate=0.02, token_swap_rate=0.01,
    abbreviation_rate=0.03, missing_rate=0.01, numeric_noise=0.0,
    injection_rate=0.02,
)

#: Corruption profile of a noisy crawled source (e.g. Google Scholar, e-shops).
DIRTY_SOURCE = CorruptionConfig(
    typo_rate=0.03, token_drop_rate=0.10, token_swap_rate=0.05,
    abbreviation_rate=0.20, missing_rate=0.08, numeric_noise=0.08,
    injection_rate=0.15, case_noise_rate=0.05,
)

_NOISE_TOKENS = (
    "new", "sale", "free shipping", "oem", "refurbished", "bundle", "original",
    "genuine", "official", "2 pack", "limited", "bestseller", "clearance",
)


def introduce_typo(token: str, rng: np.random.Generator) -> str:
    """Apply one random character edit (substitute / delete / transpose / insert)."""
    if not token:
        return token
    operation = rng.integers(0, 4)
    position = int(rng.integers(0, len(token)))
    replacement = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
    if operation == 0:  # substitute
        return token[:position] + replacement + token[position + 1:]
    if operation == 1:  # delete
        return token[:position] + token[position + 1:]
    if operation == 2 and len(token) > 1:  # transpose
        position = min(position, len(token) - 2)
        return (token[:position] + token[position + 1] + token[position]
                + token[position + 2:])
    return token[:position] + replacement + token[position:]  # insert


def corrupt_text(value: str, config: CorruptionConfig, rng: np.random.Generator) -> str:
    """Apply the textual corruption operators to a single attribute value."""
    if not value:
        return value
    if rng.random() < config.missing_rate:
        return ""

    text = value
    # Phrase-level abbreviations first (they may span several tokens).
    for phrase, abbreviation in ABBREVIATIONS.items():
        if " " in phrase and phrase in text and rng.random() < config.abbreviation_rate:
            text = text.replace(phrase, abbreviation)

    tokens = text.split()
    corrupted: list[str] = []
    for token in tokens:
        if rng.random() < config.token_drop_rate:
            continue
        if token in ABBREVIATIONS and rng.random() < config.abbreviation_rate:
            token = ABBREVIATIONS[token]
        if rng.random() < config.typo_rate:
            token = introduce_typo(token, rng)
        if config.case_noise_rate and rng.random() < config.case_noise_rate:
            token = token.upper()
        corrupted.append(token)

    # Token swaps.
    index = 0
    while index < len(corrupted) - 1:
        if rng.random() < config.token_swap_rate:
            corrupted[index], corrupted[index + 1] = corrupted[index + 1], corrupted[index]
            index += 2
        else:
            index += 1

    if config.injection_rate and rng.random() < config.injection_rate:
        noise = _NOISE_TOKENS[int(rng.integers(0, len(_NOISE_TOKENS)))]
        corrupted.append(noise)

    result = " ".join(corrupted)
    # Never let a value degenerate to empty purely through drops: keep one token.
    if not result and tokens:
        result = tokens[0]
    return result


def corrupt_numeric(value: str, config: CorruptionConfig, rng: np.random.Generator) -> str:
    """Perturb a numeric attribute value (price, year) multiplicatively."""
    if not value:
        return value
    if rng.random() < config.missing_rate:
        return ""
    try:
        number = float(value)
    except ValueError:
        return corrupt_text(value, config, rng)
    if config.numeric_noise <= 0:
        return value
    factor = 1.0 + rng.uniform(-config.numeric_noise, config.numeric_noise)
    perturbed = number * factor
    if float(value).is_integer() and abs(number) >= 100:
        return str(int(round(perturbed)))
    return f"{perturbed:.2f}"


def corrupt_values(
    values: Mapping[str, str],
    config: CorruptionConfig,
    rng_or_seed: RandomState,
    numeric_attributes: tuple[str, ...] = (),
) -> dict[str, str]:
    """Corrupt every attribute value of a record."""
    rng = ensure_rng(rng_or_seed)
    corrupted: dict[str, str] = {}
    for name, value in values.items():
        if name in numeric_attributes:
            corrupted[name] = corrupt_numeric(str(value), config, rng)
        else:
            corrupted[name] = corrupt_text(str(value), config, rng)
    return corrupted
