"""Benchmark registry: build any of the six paper benchmarks by name.

The numbers in :data:`PAPER_STATISTICS` are copied from Table 3 of the paper
and drive both the synthetic generator targets and the Table 3 reproduction
bench.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro._fingerprints import fingerprint_fields
from repro._rng import RandomState
from repro._suggest import unknown_name_message
from repro.config import ScaleProfile
from repro.data.dataset import EMDataset
from repro.data.schema import Attribute, AttributeType, Schema
from repro.data.splits import SplitRatios
from repro.datasets.base import BenchmarkSpec, build_benchmark
from repro.datasets.bibliographic import dblp_scholar_catalog
from repro.datasets.corruptions import CLEAN_SOURCE, DIRTY_SOURCE, CorruptionConfig
from repro.datasets.products import (
    abt_buy_catalog,
    amazon_google_catalog,
    walmart_amazon_catalog,
    wdc_cameras_catalog,
    wdc_shoes_catalog,
)
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class PaperDatasetStatistics:
    """One row of Table 3 in the paper."""

    name: str
    train_size: int
    positive_rate: float
    num_attributes: int


#: Table 3 of the paper (training-set sizes, positive rates, attribute counts).
PAPER_STATISTICS: dict[str, PaperDatasetStatistics] = {
    "walmart_amazon": PaperDatasetStatistics("walmart_amazon", 6144, 0.094, 5),
    "amazon_google": PaperDatasetStatistics("amazon_google", 6874, 0.102, 3),
    "wdc_cameras": PaperDatasetStatistics("wdc_cameras", 4081, 0.210, 1),
    "wdc_shoes": PaperDatasetStatistics("wdc_shoes", 4505, 0.209, 1),
    "abt_buy": PaperDatasetStatistics("abt_buy", 5743, 0.107, 3),
    "dblp_scholar": PaperDatasetStatistics("dblp_scholar", 17223, 0.186, 4),
}

_MODERATE_SOURCE = CorruptionConfig(
    typo_rate=0.02, token_drop_rate=0.06, token_swap_rate=0.03,
    abbreviation_rate=0.12, missing_rate=0.04, numeric_noise=0.05,
    injection_rate=0.08,
)

_WDC_SPLIT = SplitRatios(train=4.0, validation=1.0, test=1.25)


def _walmart_amazon_spec() -> BenchmarkSpec:
    schema = Schema(
        attributes=(
            Attribute("title", AttributeType.TEXT),
            Attribute("category", AttributeType.CATEGORICAL),
            Attribute("brand", AttributeType.CATEGORICAL),
            Attribute("modelno", AttributeType.TEXT),
            Attribute("price", AttributeType.NUMERIC),
        ),
        name="walmart_amazon",
    )
    stats = PAPER_STATISTICS["walmart_amazon"]
    return BenchmarkSpec(
        name=stats.name,
        schema=schema,
        catalog=walmart_amazon_catalog,
        paper_train_size=stats.train_size,
        positive_rate=stats.positive_rate,
        left_corruption=CLEAN_SOURCE,
        right_corruption=_MODERATE_SOURCE,
    )


def _amazon_google_spec() -> BenchmarkSpec:
    schema = Schema(
        attributes=(
            Attribute("title", AttributeType.TEXT),
            Attribute("manufacturer", AttributeType.CATEGORICAL),
            Attribute("price", AttributeType.NUMERIC),
        ),
        name="amazon_google",
    )
    stats = PAPER_STATISTICS["amazon_google"]
    return BenchmarkSpec(
        name=stats.name,
        schema=schema,
        catalog=amazon_google_catalog,
        paper_train_size=stats.train_size,
        positive_rate=stats.positive_rate,
        left_corruption=CLEAN_SOURCE,
        right_corruption=DIRTY_SOURCE,
    )


def _abt_buy_spec() -> BenchmarkSpec:
    schema = Schema(
        attributes=(
            Attribute("name", AttributeType.TEXT),
            Attribute("description", AttributeType.TEXT),
            Attribute("price", AttributeType.NUMERIC),
        ),
        name="abt_buy",
    )
    stats = PAPER_STATISTICS["abt_buy"]
    return BenchmarkSpec(
        name=stats.name,
        schema=schema,
        catalog=abt_buy_catalog,
        paper_train_size=stats.train_size,
        positive_rate=stats.positive_rate,
        left_corruption=CLEAN_SOURCE,
        right_corruption=_MODERATE_SOURCE,
    )


def _wdc_cameras_spec() -> BenchmarkSpec:
    schema = Schema(attributes=(Attribute("title", AttributeType.TEXT),), name="wdc_cameras")
    stats = PAPER_STATISTICS["wdc_cameras"]
    return BenchmarkSpec(
        name=stats.name,
        schema=schema,
        catalog=wdc_cameras_catalog,
        paper_train_size=stats.train_size,
        positive_rate=stats.positive_rate,
        left_corruption=_MODERATE_SOURCE,
        right_corruption=DIRTY_SOURCE,
        serialized_attributes=("title",),
        split_ratios=_WDC_SPLIT,
    )


def _wdc_shoes_spec() -> BenchmarkSpec:
    schema = Schema(attributes=(Attribute("title", AttributeType.TEXT),), name="wdc_shoes")
    stats = PAPER_STATISTICS["wdc_shoes"]
    return BenchmarkSpec(
        name=stats.name,
        schema=schema,
        catalog=wdc_shoes_catalog,
        paper_train_size=stats.train_size,
        positive_rate=stats.positive_rate,
        left_corruption=_MODERATE_SOURCE,
        right_corruption=DIRTY_SOURCE,
        serialized_attributes=("title",),
        split_ratios=_WDC_SPLIT,
    )


def _dblp_scholar_spec() -> BenchmarkSpec:
    schema = Schema(
        attributes=(
            Attribute("title", AttributeType.TEXT),
            Attribute("authors", AttributeType.TEXT),
            Attribute("venue", AttributeType.CATEGORICAL),
            Attribute("year", AttributeType.NUMERIC),
        ),
        name="dblp_scholar",
    )
    stats = PAPER_STATISTICS["dblp_scholar"]
    return BenchmarkSpec(
        name=stats.name,
        schema=schema,
        catalog=dblp_scholar_catalog,
        paper_train_size=stats.train_size,
        positive_rate=stats.positive_rate,
        left_corruption=CLEAN_SOURCE,
        right_corruption=DIRTY_SOURCE,
    )


_SPEC_FACTORIES = {
    "walmart_amazon": _walmart_amazon_spec,
    "amazon_google": _amazon_google_spec,
    "wdc_cameras": _wdc_cameras_spec,
    "wdc_shoes": _wdc_shoes_spec,
    "abt_buy": _abt_buy_spec,
    "dblp_scholar": _dblp_scholar_spec,
}


def available_benchmarks() -> tuple[str, ...]:
    """Names of all benchmarks the registry can build."""
    return tuple(_SPEC_FACTORIES)


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Return the :class:`BenchmarkSpec` for ``name``."""
    key = name.strip().lower().replace("-", "_")
    try:
        return _SPEC_FACTORIES[key]()
    except KeyError:
        raise DatasetError(
            unknown_name_message("benchmark", name, _SPEC_FACTORIES)) from None


def _vocabulary_fingerprint() -> str:
    """Content hash of every corruption/catalog vocabulary constant.

    The synthetic benchmarks are generated from the word lists in
    :mod:`repro.datasets.vocabularies`; editing any of them silently changes
    every generated dataset.  Folding their content into
    :func:`benchmark_fingerprint` makes that drift visible to manifest
    lockfiles.
    """
    from repro.datasets import vocabularies

    payload: dict[str, object] = {}
    for constant in sorted(dir(vocabularies)):
        if not constant.isupper():
            continue
        value = getattr(vocabularies, constant)
        if isinstance(value, tuple):
            payload[constant] = list(value)
        elif isinstance(value, dict):
            payload[constant] = dict(sorted(value.items()))
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def benchmark_fingerprint(name: str) -> str:
    """Content hash of everything that shapes the generated benchmark.

    Covers the spec (schema, Table 3 targets, per-source corruption configs,
    split ratios) and the generator vocabularies, but *not* the scale or the
    random seed — those are run-time inputs named by the experiment settings.
    Manifest lockfiles pin this value so a re-run can prove the referenced
    dataset still means the same thing.

    The payload values need per-field serialization (enum kinds, catalog
    names), so they stay hand-built — but the *coverage* is structural: the
    key set is checked against :func:`~repro._fingerprints.fingerprint_fields`
    of :class:`BenchmarkSpec`, so a spec field added without a matching
    payload entry fails here instead of silently not being hashed.
    """
    spec = benchmark_spec(name)
    payload = {
        "name": spec.name,
        "schema": [
            {"name": attribute.name, "kind": attribute.kind.value,
             "weight": attribute.weight}
            for attribute in spec.schema
        ],
        # Catalogs are module-level functions; falling back to the class
        # name (never an instance repr, which embeds a memory address)
        # keeps the hash content-only for callable objects too.
        "catalog": getattr(spec.catalog, "__qualname__",
                           type(spec.catalog).__qualname__),
        "paper_train_size": spec.paper_train_size,
        "positive_rate": spec.positive_rate,
        "left_corruption": dataclasses.asdict(spec.left_corruption),
        "right_corruption": dataclasses.asdict(spec.right_corruption),
        "serialized_attributes": (list(spec.serialized_attributes)
                                  if spec.serialized_attributes else None),
        "hard_negative_fraction": spec.hard_negative_fraction,
        "split_ratios": dataclasses.asdict(spec.split_ratios),
        "vocabularies": _vocabulary_fingerprint(),
    }
    covered = set(payload) - {"vocabularies"}
    required = set(fingerprint_fields(BenchmarkSpec))
    if covered != required:
        raise DatasetError(
            f"benchmark_fingerprint payload drifted from BenchmarkSpec: "
            f"missing {sorted(required - covered)}, "
            f"extra {sorted(covered - required)}")
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def load_benchmark(
    name: str,
    scale: ScaleProfile | str | None = None,
    random_state: RandomState = None,
) -> EMDataset:
    """Build the synthetic stand-in for the benchmark called ``name``.

    Parameters
    ----------
    name:
        One of :func:`available_benchmarks` (hyphens and case are ignored).
    scale:
        Scale profile or name; defaults to the ``REPRO_SCALE`` environment.
    random_state:
        Seed for fully reproducible generation.
    """
    spec = benchmark_spec(name)
    return build_benchmark(spec, scale=scale, random_state=random_state)
