"""Bibliographic catalog generator (DBLP-Scholar style).

DBLP is a curated bibliography while Google Scholar entries are crawled and
noisy (Section 4.1 of the paper).  The catalog produces clean publication
entities (title, authors, venue, year); the benchmark spec applies a clean
corruption profile to the "DBLP" table and a dirty profile — heavy
abbreviation, token drops, missing venues — to the "Scholar" table.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import EntityProfile
from repro.datasets.vocabularies import (
    AUTHOR_FIRST_NAMES,
    AUTHOR_LAST_NAMES,
    PAPER_CONTEXTS,
    PAPER_TITLE_PATTERNS,
    PAPER_TOPIC_MODIFIERS,
    PAPER_TOPICS,
    VENUES,
)


def _pick(rng: np.random.Generator, options: tuple) -> object:
    return options[int(rng.integers(0, len(options)))]


def _author_name(rng: np.random.Generator) -> str:
    first = _pick(rng, AUTHOR_FIRST_NAMES)
    last = _pick(rng, AUTHOR_LAST_NAMES)
    return f"{first} {last}"


def _author_list(rng: np.random.Generator) -> str:
    count = int(rng.integers(1, 5))
    return ", ".join(_author_name(rng) for _ in range(count))


def _paper_title(rng: np.random.Generator) -> tuple[str, str]:
    """Return ``(title, topic)``; the topic feeds the family key."""
    pattern = str(_pick(rng, PAPER_TITLE_PATTERNS))
    topic = str(_pick(rng, PAPER_TOPICS))
    modifier = str(_pick(rng, PAPER_TOPIC_MODIFIERS))
    context = str(_pick(rng, PAPER_CONTEXTS))
    title = pattern.format(modifier=modifier, topic=topic, context=context)
    return title, topic


def dblp_scholar_catalog(num_entities: int, rng: np.random.Generator) -> list[EntityProfile]:
    """Publication entities with title/authors/venue/year."""
    entities: list[EntityProfile] = []
    for index in range(num_entities):
        title, topic = _paper_title(rng)
        venue_variants = _pick(rng, VENUES)
        venue = str(venue_variants[0])
        year = str(int(rng.integers(1995, 2016)))
        values = {
            "title": title,
            "authors": _author_list(rng),
            "venue": venue,
            "year": year,
        }
        entities.append(EntityProfile(
            entity_id=f"dblp_e{index}",
            values=values,
            family=f"{topic}|{venue}",
        ))
    return entities
