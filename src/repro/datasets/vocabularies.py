"""Domain vocabularies used by the synthetic benchmark generators.

The real benchmarks (Magellan product data, WDC product corpus, DBLP-Scholar)
cannot be downloaded in this offline environment, so the generators in
:mod:`repro.datasets` synthesize catalogs from the vocabularies below.  The
lists are intentionally modest in size: what matters for reproducing the
paper's behaviour is the *structure* (brands shared across many products,
model numbers that differ by a character, noisy author/venue strings), not
lexical realism.
"""

from __future__ import annotations

#: Electronics / software brands (Amazon-Google style catalogs).
SOFTWARE_BRANDS = (
    "adobe", "microsoft", "apple", "intuit", "symantec", "corel", "mcafee",
    "aspyr media", "roxio", "nuance", "autodesk", "sage software", "avanquest",
    "broderbund", "encore software", "topics entertainment", "kaspersky",
    "panda software", "sonic solutions", "pinnacle systems", "global marketing",
    "ahead software", "fogware publishing", "individual software", "valuesoft",
)

#: Software / media product nouns.
SOFTWARE_NOUNS = (
    "photoshop elements", "office small business", "quickbooks pro",
    "antivirus", "internet security suite", "paint shop pro", "video studio",
    "dragon naturally speaking", "turbotax deluxe", "illustrator", "premiere",
    "acrobat standard", "creative suite", "works suite", "money plus",
    "studio moviebox", "typing instructor", "family tree maker", "mavis beacon",
    "sims glamour life stuff pack", "world atlas", "encyclopedia deluxe",
    "web design studio", "backup mymedia", "pdf converter professional",
    "language learning spanish", "math blaster", "reading rabbit",
)

#: General retail brands (Walmart-Amazon style catalogs).
RETAIL_BRANDS = (
    "sony", "samsung", "panasonic", "philips", "lg", "toshiba", "sharp",
    "canon", "nikon", "olympus", "fujifilm", "kodak", "hp", "dell", "lenovo",
    "logitech", "belkin", "netgear", "linksys", "sandisk", "kingston",
    "western digital", "seagate", "garmin", "tomtom", "jvc", "pioneer",
    "vtech", "fisher price", "graco", "black and decker", "hamilton beach",
)

#: Retail product nouns with category hints.
RETAIL_NOUNS = (
    "lcd hdtv", "plasma television", "blu ray disc player", "home theater system",
    "digital photo frame", "compact digital camera", "camcorder", "dvd player",
    "wireless router", "usb flash drive", "external hard drive", "memory card",
    "gps navigator", "portable dvd player", "soundbar speaker", "headphones",
    "laptop sleeve", "keyboard and mouse combo", "ink cartridge", "laser printer",
    "coffee maker", "slow cooker", "toaster oven", "vacuum cleaner",
    "baby monitor", "car seat", "stroller travel system", "cordless drill",
)

#: Camera brands and model families (WDC Cameras).
CAMERA_BRANDS = (
    "canon", "nikon", "sony", "fujifilm", "olympus", "panasonic", "pentax",
    "leica", "samsung", "casio", "kodak", "sigma", "ricoh", "hasselblad",
)

CAMERA_FAMILIES = (
    "eos rebel", "eos mark", "powershot sx", "powershot elph", "coolpix p",
    "coolpix s", "d series dslr", "alpha a", "cyber shot dsc", "finepix x",
    "finepix s", "lumix dmc", "om d e m", "pen e pl", "k series", "q series",
    "stylus tough", "exilim ex", "pixpro az",
)

CAMERA_QUALIFIERS = (
    "digital camera", "mirrorless camera", "dslr camera", "body only",
    "with 18 55mm lens", "with 55 200mm lens", "kit", "black", "silver",
    "16 megapixel", "20 megapixel", "24 megapixel", "full hd video",
    "4k video", "wifi enabled", "touchscreen",
)

#: Shoe brands and model families (WDC Shoes).
SHOE_BRANDS = (
    "nike", "adidas", "new balance", "asics", "brooks", "saucony", "puma",
    "reebok", "skechers", "merrell", "salomon", "timberland", "clarks",
    "converse", "vans", "under armour", "mizuno", "hoka one one",
)

SHOE_FAMILIES = (
    "air max", "air zoom pegasus", "free run", "revolution", "ultraboost",
    "superstar", "stan smith", "gel kayano", "gel nimbus", "gt 2000",
    "ghost", "adrenaline gts", "fresh foam", "990v", "ride iso", "guide iso",
    "classic leather", "chuck taylor all star", "old skool", "moab ventilator",
    "speedcross", "wave rider", "clifton",
)

SHOE_QUALIFIERS = (
    "running shoe", "trail running shoe", "walking shoe", "sneaker",
    "mens", "womens", "kids", "wide width", "black white", "grey blue",
    "size 9", "size 10", "size 11", "leather", "mesh upper", "waterproof",
)

#: Long-text description fragments (ABT-Buy style textual entries).
DESCRIPTION_FRAGMENTS = (
    "features a high resolution display for crisp and clear viewing",
    "includes rechargeable battery and charging cable in the box",
    "designed for everyday use with a durable lightweight construction",
    "delivers powerful performance for work and entertainment",
    "easy to set up and compatible with most operating systems",
    "offers expandable storage and fast data transfer speeds",
    "engineered with noise reduction technology for immersive sound",
    "energy efficient design that meets strict industry standards",
    "backed by a one year limited manufacturer warranty",
    "ships in certified frustration free packaging",
    "ideal for home office classroom or travel use",
    "sleek modern finish that complements any room decor",
)

#: Author first names for bibliographic data.
AUTHOR_FIRST_NAMES = (
    "wei", "jian", "maria", "anna", "john", "michael", "david", "rachel",
    "peter", "thomas", "laura", "susan", "james", "robert", "daniel",
    "kevin", "yong", "hector", "carlos", "elena", "sofia", "ahmed", "fatima",
    "hiroshi", "yuki", "olga", "ivan", "pierre", "claire", "lars", "ingrid",
)

AUTHOR_LAST_NAMES = (
    "chen", "wang", "zhang", "liu", "smith", "johnson", "garcia", "martinez",
    "brown", "mueller", "schmidt", "rossi", "ferrari", "tanaka", "suzuki",
    "kim", "park", "nguyen", "tran", "kumar", "patel", "singh", "ivanov",
    "petrov", "dubois", "lefevre", "jensen", "larsen", "andersson", "nilsson",
)

#: Research topic fragments for paper titles.
PAPER_TOPICS = (
    "query optimization", "entity resolution", "data integration",
    "schema matching", "approximate string joins", "stream processing",
    "distributed transactions", "graph pattern mining", "index structures",
    "similarity search", "data cleaning", "record linkage", "view maintenance",
    "workload forecasting", "cardinality estimation", "adaptive indexing",
    "crowdsourced labeling", "active learning", "transfer learning",
    "deep neural networks", "knowledge graphs", "provenance tracking",
    "privacy preserving analytics", "spatial keyword queries",
)

PAPER_TOPIC_MODIFIERS = (
    "scalable", "efficient", "robust", "incremental", "parallel",
    "distributed", "adaptive", "interactive", "learned", "probabilistic",
    "streaming", "online", "declarative", "self tuning", "low resource",
)

PAPER_TITLE_PATTERNS = (
    "{modifier} {topic} for {context}",
    "towards {modifier} {topic}",
    "a {modifier} approach to {topic}",
    "{topic} in {context}",
    "on the {modifier} evaluation of {topic}",
    "{topic}: a {modifier} perspective",
)

PAPER_CONTEXTS = (
    "relational databases", "large scale web data", "data lakes",
    "column stores", "main memory systems", "cloud platforms",
    "heterogeneous sources", "sensor networks", "social networks",
    "scientific workflows", "multi tenant systems", "key value stores",
)

#: Publication venues with their informal (crawled) variants.
VENUES = (
    ("sigmod", "sigmod conference", "acm sigmod", "proc sigmod"),
    ("vldb", "pvldb", "very large data bases", "proc vldb endow"),
    ("icde", "ieee icde", "int conf data engineering", "icde conf"),
    ("kdd", "acm sigkdd", "knowledge discovery and data mining", "sigkdd"),
    ("edbt", "extending database technology", "edbt conf", "proc edbt"),
    ("cikm", "conf information knowledge management", "acm cikm", "cikm proc"),
    ("tods", "acm trans database syst", "transactions on database systems", "acm tods"),
    ("tkde", "ieee trans knowl data eng", "knowledge and data engineering", "ieee tkde"),
    ("www", "the web conference", "world wide web conf", "www conf"),
    ("icdm", "ieee icdm", "int conf data mining", "icdm conf"),
)

#: Common abbreviation replacements applied by the corruption pipeline.
ABBREVIATIONS = {
    "incorporated": "inc",
    "corporation": "corp",
    "company": "co",
    "international": "intl",
    "professional": "pro",
    "deluxe": "dlx",
    "edition": "ed",
    "version": "ver",
    "digital": "dig",
    "camera": "cam",
    "television": "tv",
    "wireless": "wl",
    "rechargeable": "rechg",
    "conference": "conf",
    "proceedings": "proc",
    "transactions": "trans",
    "international journal": "intl j",
    "engineering": "eng",
    "systems": "syst",
    "management": "mgmt",
}
