"""Benchmark construction machinery for the synthetic datasets.

The pipeline is:

1.  A *catalog generator* produces clean :class:`EntityProfile` objects, each
    describing one real-world entity (a product, a paper) and a *family key*
    grouping entities that are lexically similar (same brand and model family,
    same topic and venue).  Family keys are what make non-match pairs hard:
    blocking would place entities of the same family in the same block.
2.  :func:`build_benchmark` materializes two tables by corrupting each
    entity's values with source-specific :class:`CorruptionConfig` profiles,
    then creates candidate pairs: every entity present in both tables yields a
    match pair, and non-match pairs are drawn preferentially *within* families
    (hard negatives) and topped up with random cross-family pairs until the
    target positive rate of the paper's Table 3 is met.
3.  The pair set is split 3:1:1 (train/validation/test), stratified by label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.config import ScaleProfile, get_scale, scaled_size
from repro.data.dataset import EMDataset
from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table
from repro.data.schema import AttributeType, Schema
from repro.data.serialization import SerializationConfig
from repro.data.splits import SplitRatios
from repro.datasets.corruptions import CorruptionConfig, corrupt_values
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class EntityProfile:
    """A clean real-world entity produced by a catalog generator.

    Attributes
    ----------
    entity_id:
        Unique identifier of the entity.
    values:
        Clean attribute values.
    family:
        Grouping key for hard-negative generation; entities in the same
        family describe *different* real-world objects that are nevertheless
        lexically close (e.g. two camera models of the same product line).
    """

    entity_id: str
    values: dict[str, str]
    family: str


#: Signature of a catalog generator: ``(num_entities, rng) -> list[EntityProfile]``.
CatalogGenerator = Callable[[int, np.random.Generator], list[EntityProfile]]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Everything needed to synthesize one benchmark.

    Attributes
    ----------
    name:
        Benchmark name, e.g. ``"walmart_amazon"``.
    schema:
        Schema shared by both tables.
    catalog:
        Catalog generator producing clean entities.
    paper_train_size:
        Number of training pairs reported in Table 3 of the paper.
    positive_rate:
        Fraction of match pairs reported in Table 3.
    left_corruption / right_corruption:
        Noise profiles of the two sources.
    serialized_attributes:
        Attributes exposed to the matcher (``None`` means all; the WDC
        benchmarks expose only ``title``).
    hard_negative_fraction:
        Share of non-match pairs drawn within entity families.
    split_ratios:
        Train/validation/test ratios (3:1:1 for Magellan-style benchmarks,
        4:1:1.25 for the WDC ones, matching Section 4.1).
    """

    name: str
    schema: Schema
    catalog: CatalogGenerator
    paper_train_size: int
    positive_rate: float
    left_corruption: CorruptionConfig
    right_corruption: CorruptionConfig
    serialized_attributes: tuple[str, ...] | None = None
    hard_negative_fraction: float = 0.7
    split_ratios: SplitRatios = field(default_factory=SplitRatios)

    def __post_init__(self) -> None:
        if not 0.0 < self.positive_rate < 1.0:
            raise DatasetError(
                f"positive_rate must be in (0, 1), got {self.positive_rate}"
            )
        if not 0.0 <= self.hard_negative_fraction <= 1.0:
            raise DatasetError("hard_negative_fraction must be in [0, 1]")
        if self.paper_train_size <= 0:
            raise DatasetError("paper_train_size must be positive")

    @property
    def numeric_attributes(self) -> tuple[str, ...]:
        """Names of numeric attributes (perturbed multiplicatively)."""
        return tuple(
            attribute.name
            for attribute in self.schema
            if attribute.kind is AttributeType.NUMERIC
        )


def _materialize_record(
    entity: EntityProfile,
    record_id: str,
    corruption: CorruptionConfig,
    rng: np.random.Generator,
    numeric_attributes: tuple[str, ...],
) -> Record:
    """Create one corrupted record describing ``entity``."""
    values = corrupt_values(entity.values, corruption, rng, numeric_attributes)
    return Record(record_id=record_id, values=values, entity_id=entity.entity_id)


def _sample_negative_keys(
    entities: Sequence[EntityProfile],
    num_negatives: int,
    hard_fraction: float,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Sample index pairs of *distinct* entities to serve as non-match pairs."""
    families: dict[str, list[int]] = {}
    for index, entity in enumerate(entities):
        families.setdefault(entity.family, []).append(index)

    chosen: set[tuple[int, int]] = set()
    hard_target = int(round(num_negatives * hard_fraction))

    # Hard negatives: pairs within a family.
    family_groups = [members for members in families.values() if len(members) >= 2]
    attempts = 0
    max_attempts = max(20 * num_negatives, 1000)
    while family_groups and len(chosen) < hard_target and attempts < max_attempts:
        attempts += 1
        group = family_groups[int(rng.integers(0, len(family_groups)))]
        i, j = rng.choice(len(group), size=2, replace=False)
        key = (group[int(i)], group[int(j)])
        if key[0] == key[1]:
            continue
        chosen.add(key)

    # Random negatives fill the remainder.
    attempts = 0
    n = len(entities)
    while len(chosen) < num_negatives and attempts < max_attempts:
        attempts += 1
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, n))
        if i == j:
            continue
        chosen.add((i, j))

    return list(chosen)[:num_negatives]


def build_benchmark(
    spec: BenchmarkSpec,
    scale: ScaleProfile | str | None = None,
    random_state: RandomState = None,
) -> EMDataset:
    """Synthesize an :class:`EMDataset` according to ``spec``.

    Parameters
    ----------
    spec:
        Benchmark specification.
    scale:
        Scale profile (or its name); ``None`` resolves ``REPRO_SCALE``.
    random_state:
        Seed or generator controlling every random choice, so the same seed
        always produces the identical benchmark.
    """
    if isinstance(scale, str) or scale is None:
        scale = get_scale(scale)
    rng = ensure_rng(random_state)
    catalog_rng, left_rng, right_rng, pair_rng, split_rng = spawn_rng(rng, 5)

    # Table 3 sizes refer to the training split; scale the full pair set so the
    # train part of a 3:1:1 (or spec-specific) split has roughly that size.
    train_fraction = spec.split_ratios.fractions()[0]
    target_train_pairs = scaled_size(spec.paper_train_size, scale)
    total_pairs = max(int(round(target_train_pairs / train_fraction)), 50)
    num_positive = max(int(round(total_pairs * spec.positive_rate)), 10)
    num_negative = max(total_pairs - num_positive, 10)

    # Shared entities yield the match pairs; extra entities enrich the pool of
    # potential hard negatives (entities that exist on only one side).
    num_shared = num_positive
    num_extra = max(int(round(num_shared * 0.3)), 10)
    entities = spec.catalog(num_shared + num_extra, catalog_rng)
    if len(entities) < num_shared:
        raise DatasetError(
            f"Catalog generator produced {len(entities)} entities; "
            f"{num_shared} are required"
        )
    shared_entities = entities[:num_shared]

    # Materialize both tables.  Every entity appears in both tables so that
    # within-family negatives can cross tables; only the shared prefix
    # contributes match pairs.
    left_table = Table(f"{spec.name}_left", spec.schema)
    right_table = Table(f"{spec.name}_right", spec.schema)
    numeric_attributes = spec.numeric_attributes
    for index, entity in enumerate(entities):
        left_table.add(_materialize_record(entity, f"l{index}", spec.left_corruption,
                                           left_rng, numeric_attributes))
        right_table.add(_materialize_record(entity, f"r{index}", spec.right_corruption,
                                            right_rng, numeric_attributes))

    # Candidate pairs.
    pairs = PairSet()
    pair_counter = 0
    for index in range(len(shared_entities)):
        pairs.add(CandidatePair(f"{spec.name}_p{pair_counter}", f"l{index}", f"r{index}", 1))
        pair_counter += 1

    negative_keys = _sample_negative_keys(entities, num_negative,
                                          spec.hard_negative_fraction, pair_rng)
    for left_index, right_index in negative_keys:
        pairs.add(CandidatePair(f"{spec.name}_p{pair_counter}",
                                f"l{left_index}", f"r{right_index}", 0))
        pair_counter += 1

    serialization = SerializationConfig(attributes=spec.serialized_attributes)
    return EMDataset(
        name=spec.name,
        left=left_table,
        right=right_table,
        pairs=pairs,
        serialization=serialization,
        split_ratios=spec.split_ratios,
        random_state=split_rng,
    )
