"""Pool-skew transforms: reshape the active-learning pool of a benchmark.

The benchmarks draw their train pool i.i.d. from the generated pair set, but
real labeling campaigns rarely see such a balanced pool: a crawled source may
be dominated by a handful of popular product families, and a high-precision
blocker can leave a pool with almost no matches in it.  A *pool transform*
rewrites only the train split of an :class:`~repro.data.dataset.EMDataset`
(validation and test stay untouched, so reported F1 remains comparable
across transforms) and is the pool-skew axis of the scenario matrix
(:mod:`repro.scenarios`).

Transforms are pure: they return a new dataset sharing the tables and pair
set of the input, never mutating it.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro._suggest import unknown_name_message
from repro.data.dataset import EMDataset
from repro.data.splits import DatasetSplit
from repro.exceptions import DatasetError

#: Signature of a pool transform: ``(dataset, rng) -> dataset``.
PoolTransform = Callable[[EMDataset, np.random.Generator], EMDataset]

#: Train pools are never shrunk below this size (seed + one selection round
#: must remain possible at the tiny scale).
_MIN_POOL_SIZE = 12


def _with_train_pool(dataset: EMDataset, train_indices: np.ndarray) -> EMDataset:
    """Rebuild ``dataset`` with ``train_indices`` as its train split."""
    train_indices = np.sort(np.asarray(train_indices, dtype=np.int64))
    if len(train_indices) == 0:
        raise DatasetError(
            f"Pool transform left {dataset.name!r} with an empty train pool")
    labels = dataset.labels(train_indices)
    if not (labels == 1).any() or not (labels == 0).any():
        raise DatasetError(
            f"Pool transform left {dataset.name!r} without both classes in "
            "the train pool; the labeled seed needs matches and non-matches")
    split = DatasetSplit(train=train_indices,
                         validation=dataset.validation_indices,
                         test=dataset.test_indices)
    return EMDataset(
        name=dataset.name,
        left=dataset.left,
        right=dataset.right,
        pairs=dataset.pairs,
        split=split,
        serialization=dataset.serialization,
    )


def _guarantee_both_classes(
    dataset: EMDataset,
    keep: np.ndarray,
    rng: np.random.Generator,
    minimum_per_class: int = 2,
) -> np.ndarray:
    """Top ``keep`` up with random train pairs until both classes are present."""
    keep_set = set(int(index) for index in keep)
    train = np.asarray(dataset.train_indices, dtype=np.int64)
    train_labels = dataset.labels(train)
    for label_value in (0, 1):
        class_indices = train[train_labels == label_value]
        missing = minimum_per_class - sum(1 for index in class_indices
                                          if int(index) in keep_set)
        if missing <= 0:
            continue
        candidates = np.array([index for index in class_indices
                               if int(index) not in keep_set], dtype=np.int64)
        chosen = rng.choice(candidates, size=min(missing, len(candidates)),
                            replace=False)
        keep_set.update(int(index) for index in chosen)
    return np.array(sorted(keep_set), dtype=np.int64)


def skewed_cluster_pool(
    dataset: EMDataset,
    rng: np.random.Generator,
    dominant_fraction: float = 0.3,
    minority_keep_rate: float = 0.15,
) -> EMDataset:
    """Skew the pool toward a minority of entity clusters.

    Train pairs are grouped by the entity of their left record; a random
    ``dominant_fraction`` of those entity groups keeps every pair, while the
    remaining groups keep each pair only with ``minority_keep_rate``.  The
    resulting pool mimics a crawl dominated by a few popular families —
    exactly the regime where the battleship selector's per-component budget
    distribution should outperform pool-global criteria.
    """
    if not 0.0 < dominant_fraction <= 1.0:
        raise DatasetError("dominant_fraction must be in (0, 1]")
    if not 0.0 <= minority_keep_rate <= 1.0:
        raise DatasetError("minority_keep_rate must be in [0, 1]")
    train = np.asarray(dataset.train_indices, dtype=np.int64)
    groups: dict[str, list[int]] = {}
    for index in train:
        pair = dataset.pairs[int(index)]
        entity = dataset.left[pair.left_id].entity_id
        groups.setdefault(entity, []).append(int(index))

    entity_keys = sorted(groups)
    num_dominant = max(int(round(len(entity_keys) * dominant_fraction)), 1)
    dominant = set(rng.choice(entity_keys, size=min(num_dominant, len(entity_keys)),
                              replace=False).tolist())
    keep: list[int] = []
    for entity in entity_keys:
        if entity in dominant:
            keep.extend(groups[entity])
        else:
            keep.extend(index for index in groups[entity]
                        if rng.random() < minority_keep_rate)

    if len(keep) < _MIN_POOL_SIZE:
        remainder = np.array([int(i) for i in train if int(i) not in set(keep)],
                             dtype=np.int64)
        top_up = rng.choice(remainder,
                            size=min(_MIN_POOL_SIZE - len(keep), len(remainder)),
                            replace=False)
        keep.extend(int(index) for index in top_up)
    keep_array = _guarantee_both_classes(dataset, np.array(keep, dtype=np.int64), rng)
    return _with_train_pool(dataset, keep_array)


def positive_starved_pool(
    dataset: EMDataset,
    rng: np.random.Generator,
    keep_positive_fraction: float = 0.25,
) -> EMDataset:
    """Starve the pool of matches.

    Only ``keep_positive_fraction`` of the train matches survive (at least
    two, so the labeled seed can still contain a match); non-matches are kept
    in full.  This models an over-aggressive blocker or an inherently sparse
    matching task, where selectors that rely on finding match clusters have
    little signal to work with.
    """
    if not 0.0 <= keep_positive_fraction <= 1.0:
        raise DatasetError("keep_positive_fraction must be in [0, 1]")
    train = np.asarray(dataset.train_indices, dtype=np.int64)
    labels = dataset.labels(train)
    positives = train[labels == 1]
    negatives = train[labels == 0]
    num_keep = max(int(round(len(positives) * keep_positive_fraction)), 2)
    num_keep = min(num_keep, len(positives))
    kept_positives = rng.choice(positives, size=num_keep, replace=False)
    keep = np.concatenate([kept_positives, negatives])
    return _with_train_pool(dataset, keep)


POOL_TRANSFORMS: Dict[str, PoolTransform] = {
    "skewed-cluster": skewed_cluster_pool,
    "positive-starved": positive_starved_pool,
}


def available_pool_transforms() -> tuple[str, ...]:
    """Names of the registered pool transforms."""
    return tuple(POOL_TRANSFORMS)


def apply_pool_transform(
    name: str,
    dataset: EMDataset,
    rng: np.random.Generator,
) -> EMDataset:
    """Apply the registered pool transform called ``name`` to ``dataset``."""
    try:
        transform = POOL_TRANSFORMS[name]
    except KeyError:
        raise DatasetError(
            unknown_name_message("pool transform", name, POOL_TRANSFORMS)
        ) from None
    return transform(dataset, rng)
