"""Product catalog generators for the five product benchmarks.

Each generator synthesizes clean product entities in the style of one of the
paper's benchmarks (Section 4.1 / Table 3):

* ``walmart_amazon_catalog`` — general retail electronics, 5 attributes.
* ``amazon_google_catalog`` — software products, 3 attributes.
* ``abt_buy_catalog`` — electronics with a long free-text description.
* ``wdc_cameras_catalog`` / ``wdc_shoes_catalog`` — title-only product offers.

Entities within the same *family* (brand + model family) differ only in model
number, capacity, or qualifier tokens, which makes cross-family blocking easy
but within-family discrimination hard — the property that drives the paper's
observation that match pairs concentrate in specific latent-space regions
while hard non-matches surround them.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import EntityProfile
from repro.datasets.vocabularies import (
    CAMERA_BRANDS,
    CAMERA_FAMILIES,
    CAMERA_QUALIFIERS,
    DESCRIPTION_FRAGMENTS,
    RETAIL_BRANDS,
    RETAIL_NOUNS,
    SHOE_BRANDS,
    SHOE_FAMILIES,
    SHOE_QUALIFIERS,
    SOFTWARE_BRANDS,
    SOFTWARE_NOUNS,
)


def _pick(rng: np.random.Generator, options: tuple[str, ...]) -> str:
    """Uniformly pick one element of ``options``."""
    return options[int(rng.integers(0, len(options)))]


def _model_number(rng: np.random.Generator) -> str:
    """A short alphanumeric model designator, e.g. ``sx740`` or ``a6400``."""
    letters = "abcdefghjkmnpqrstuvwxz"
    prefix = letters[int(rng.integers(0, len(letters)))]
    digits = int(rng.integers(10, 9999))
    return f"{prefix}{digits}"


def _price(rng: np.random.Generator, low: float, high: float) -> str:
    """A price string drawn uniformly from ``[low, high]``."""
    return f"{rng.uniform(low, high):.2f}"


def _year(rng: np.random.Generator, low: int = 2004, high: int = 2015) -> str:
    return str(int(rng.integers(low, high + 1)))


def walmart_amazon_catalog(num_entities: int, rng: np.random.Generator) -> list[EntityProfile]:
    """Retail electronics entities with title/category/brand/modelno/price."""
    entities: list[EntityProfile] = []
    for index in range(num_entities):
        brand = _pick(rng, RETAIL_BRANDS)
        noun = _pick(rng, RETAIL_NOUNS)
        model = _model_number(rng)
        size = int(rng.integers(7, 70))
        title = f"{brand} {model} {size} inch {noun}"
        category = noun.split()[-1]
        values = {
            "title": title,
            "category": category,
            "brand": brand,
            "modelno": model,
            "price": _price(rng, 15, 900),
        }
        entities.append(EntityProfile(
            entity_id=f"wa_e{index}",
            values=values,
            family=f"{brand}|{noun}",
        ))
    return entities


def amazon_google_catalog(num_entities: int, rng: np.random.Generator) -> list[EntityProfile]:
    """Software product entities with title/manufacturer/price (Amazon-Google)."""
    entities: list[EntityProfile] = []
    for index in range(num_entities):
        brand = _pick(rng, SOFTWARE_BRANDS)
        noun = _pick(rng, SOFTWARE_NOUNS)
        version = int(rng.integers(1, 13))
        platform = _pick(rng, ("windows", "mac", "windows mac", "pc"))
        title = f"{brand} {noun} {version}.0 {platform}"
        values = {
            "title": title,
            "manufacturer": brand,
            "price": _price(rng, 9, 500),
        }
        entities.append(EntityProfile(
            entity_id=f"ag_e{index}",
            values=values,
            family=f"{brand}|{noun}",
        ))
    return entities


def abt_buy_catalog(num_entities: int, rng: np.random.Generator) -> list[EntityProfile]:
    """Electronics entities with a long textual description (ABT-Buy style)."""
    entities: list[EntityProfile] = []
    for index in range(num_entities):
        brand = _pick(rng, RETAIL_BRANDS)
        noun = _pick(rng, RETAIL_NOUNS)
        model = _model_number(rng)
        name = f"{brand} {noun} {model}"
        fragment_count = int(rng.integers(2, 5))
        fragments = [
            DESCRIPTION_FRAGMENTS[int(rng.integers(0, len(DESCRIPTION_FRAGMENTS)))]
            for _ in range(fragment_count)
        ]
        description = f"{name} {' '.join(fragments)}"
        values = {
            "name": name,
            "description": description,
            "price": _price(rng, 25, 1500),
        }
        entities.append(EntityProfile(
            entity_id=f"ab_e{index}",
            values=values,
            family=f"{brand}|{noun}",
        ))
    return entities


def wdc_cameras_catalog(num_entities: int, rng: np.random.Generator) -> list[EntityProfile]:
    """Camera offers described only by a title (WDC Cameras style)."""
    entities: list[EntityProfile] = []
    for index in range(num_entities):
        brand = _pick(rng, CAMERA_BRANDS)
        family = _pick(rng, CAMERA_FAMILIES)
        model = _model_number(rng)
        qualifier_count = int(rng.integers(1, 4))
        qualifiers = " ".join(
            CAMERA_QUALIFIERS[int(rng.integers(0, len(CAMERA_QUALIFIERS)))]
            for _ in range(qualifier_count)
        )
        title = f"{brand} {family} {model} {qualifiers}"
        entities.append(EntityProfile(
            entity_id=f"cam_e{index}",
            values={"title": title},
            family=f"{brand}|{family}",
        ))
    return entities


def wdc_shoes_catalog(num_entities: int, rng: np.random.Generator) -> list[EntityProfile]:
    """Shoe offers described only by a title (WDC Shoes style)."""
    entities: list[EntityProfile] = []
    for index in range(num_entities):
        brand = _pick(rng, SHOE_BRANDS)
        family = _pick(rng, SHOE_FAMILIES)
        version = int(rng.integers(1, 40))
        qualifier_count = int(rng.integers(1, 4))
        qualifiers = " ".join(
            SHOE_QUALIFIERS[int(rng.integers(0, len(SHOE_QUALIFIERS)))]
            for _ in range(qualifier_count)
        )
        title = f"{brand} {family} {version} {qualifiers}"
        entities.append(EntityProfile(
            entity_id=f"shoe_e{index}",
            values={"title": title},
            family=f"{brand}|{family}",
        ))
    return entities
