"""Synthetic benchmark generators mirroring the paper's six datasets."""

from repro.datasets.base import BenchmarkSpec, EntityProfile, build_benchmark
from repro.datasets.bibliographic import dblp_scholar_catalog
from repro.datasets.corruptions import (
    CLEAN_SOURCE,
    DIRTY_SOURCE,
    CorruptionConfig,
    corrupt_numeric,
    corrupt_text,
    corrupt_values,
    introduce_typo,
)
from repro.datasets.products import (
    abt_buy_catalog,
    amazon_google_catalog,
    walmart_amazon_catalog,
    wdc_cameras_catalog,
    wdc_shoes_catalog,
)
from repro.datasets.registry import (
    PAPER_STATISTICS,
    PaperDatasetStatistics,
    available_benchmarks,
    benchmark_spec,
    load_benchmark,
)
from repro.datasets.transforms import (
    POOL_TRANSFORMS,
    PoolTransform,
    apply_pool_transform,
    available_pool_transforms,
    positive_starved_pool,
    skewed_cluster_pool,
)

__all__ = [
    "BenchmarkSpec",
    "CLEAN_SOURCE",
    "CorruptionConfig",
    "DIRTY_SOURCE",
    "EntityProfile",
    "PAPER_STATISTICS",
    "POOL_TRANSFORMS",
    "PaperDatasetStatistics",
    "PoolTransform",
    "abt_buy_catalog",
    "amazon_google_catalog",
    "apply_pool_transform",
    "available_benchmarks",
    "available_pool_transforms",
    "benchmark_spec",
    "build_benchmark",
    "corrupt_numeric",
    "corrupt_text",
    "corrupt_values",
    "dblp_scholar_catalog",
    "introduce_typo",
    "load_benchmark",
    "positive_starved_pool",
    "skewed_cluster_pool",
    "walmart_amazon_catalog",
    "wdc_cameras_catalog",
    "wdc_shoes_catalog",
]
