"""Confidence calibration utilities.

Section 3.5.1 of the paper argues that transformer matchers produce
*dichotomous* confidence values (close to 0 or 1) that are poorly calibrated,
which is why the battleship approach replaces plain conditional entropy with a
spatial certainty measure.  This module provides the tools used to quantify
and manipulate that phenomenon in the reproduction:

* :func:`expected_calibration_error` measures mis-calibration,
* :class:`TemperatureScaler` is the standard post-hoc fix (fit on validation),
* :func:`sharpen_probabilities` exaggerates over-confidence, which the matcher
  uses to emulate the dichotomous behaviour of a fully fine-tuned PLM even
  when the underlying MLP is comparatively well calibrated.
"""

from __future__ import annotations

import numpy as np

from repro.neural.activations import sigmoid

_EPSILON = 1e-12


def logit(probabilities: np.ndarray) -> np.ndarray:
    """Inverse sigmoid, clipped away from 0 and 1 for numerical stability."""
    p = np.clip(np.asarray(probabilities, dtype=np.float64), _EPSILON, 1.0 - _EPSILON)
    return np.log(p / (1.0 - p))


def sharpen_probabilities(probabilities: np.ndarray, temperature: float = 0.5) -> np.ndarray:
    """Sharpen probabilities by dividing logits by ``temperature`` (< 1 sharpens).

    With ``temperature`` below 1 the output distribution is pushed towards the
    extremes, emulating the over-confident behaviour of fine-tuned PLMs.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return sigmoid(logit(probabilities) / temperature)


def expected_calibration_error(probabilities: np.ndarray, labels: np.ndarray,
                               num_bins: int = 10) -> float:
    """Expected calibration error over equal-width confidence bins."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if probabilities.shape != labels.shape:
        raise ValueError("probabilities and labels must have the same shape")
    if len(probabilities) == 0:
        return 0.0
    confidences = np.where(probabilities >= 0.5, probabilities, 1.0 - probabilities)
    predictions = (probabilities >= 0.5).astype(np.float64)
    accuracies = (predictions == labels).astype(np.float64)
    bins = np.linspace(0.0, 1.0, num_bins + 1)
    error = 0.0
    for low, high in zip(bins[:-1], bins[1:]):
        mask = (confidences > low) & (confidences <= high)
        if not np.any(mask):
            continue
        error += np.abs(accuracies[mask].mean() - confidences[mask].mean()) * mask.mean()
    return float(error)


class TemperatureScaler:
    """Post-hoc temperature scaling fitted by grid search on validation NLL."""

    def __init__(self, temperatures: np.ndarray | None = None) -> None:
        self.temperatures = (temperatures if temperatures is not None
                             else np.geomspace(0.05, 20.0, 200))
        self.temperature_: float | None = None

    def fit(self, probabilities: np.ndarray, labels: np.ndarray) -> "TemperatureScaler":
        """Pick the temperature minimizing negative log likelihood."""
        logits = logit(probabilities)
        labels = np.asarray(labels, dtype=np.float64)
        best_temperature, best_nll = 1.0, np.inf
        for temperature in self.temperatures:
            scaled = sigmoid(logits / temperature)
            scaled = np.clip(scaled, _EPSILON, 1.0 - _EPSILON)
            nll = float(-np.mean(labels * np.log(scaled)
                                 + (1.0 - labels) * np.log(1.0 - scaled)))
            if nll < best_nll:
                best_nll, best_temperature = nll, float(temperature)
        self.temperature_ = best_temperature
        return self

    def transform(self, probabilities: np.ndarray) -> np.ndarray:
        """Rescale probabilities with the fitted temperature."""
        if self.temperature_ is None:
            raise RuntimeError("TemperatureScaler.fit must be called before transform")
        return sigmoid(logit(probabilities) / self.temperature_)
