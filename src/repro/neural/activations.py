"""Activation functions and their derivatives (pure NumPy)."""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU with respect to its input."""
    return (x > 0).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def sigmoid_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of the sigmoid with respect to its input."""
    s = sigmoid(x)
    return s * (1.0 - s)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def tanh_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of tanh with respect to its input."""
    t = np.tanh(x)
    return 1.0 - t * t


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


ACTIVATIONS = {
    "relu": (relu, relu_grad),
    "sigmoid": (sigmoid, sigmoid_grad),
    "tanh": (tanh, tanh_grad),
}
