"""A feed-forward network assembled from :mod:`repro.neural.layers`.

The network mirrors the role of DITTO's transformer encoder + classification
head: a stack of hidden blocks (Linear → LayerNorm → ReLU → Dropout) produces
the *pair representation* (the analogue of the ``[CLS]`` embedding), and a
final Linear layer maps it to a single match logit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.neural.layers import Activation, Dropout, Layer, LayerNorm, Linear


@dataclass(frozen=True)
class NetworkConfig:
    """Architecture of the matcher network.

    Attributes
    ----------
    input_dim:
        Width of the featurized pair vector.
    hidden_dims:
        Sizes of the hidden blocks; the last entry is the dimensionality of the
        pair representation (the paper's ``[CLS]`` vector has 768 dimensions;
        the default here is 128 to stay CPU-friendly).
    dropout:
        Dropout rate applied after each hidden activation.
    use_layer_norm:
        Whether hidden blocks include layer normalization.
    """

    input_dim: int
    hidden_dims: tuple[int, ...] = (256, 128)
    dropout: float = 0.1
    use_layer_norm: bool = True

    def __post_init__(self) -> None:
        if self.input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if not self.hidden_dims:
            raise ValueError("hidden_dims must contain at least one layer size")
        if any(dim <= 0 for dim in self.hidden_dims):
            raise ValueError("hidden layer sizes must be positive")

    @property
    def representation_dim(self) -> int:
        """Dimensionality of the pair representation (last hidden width)."""
        return self.hidden_dims[-1]


class FeedForwardNetwork:
    """Hidden blocks + scalar output head with manual backpropagation."""

    def __init__(self, config: NetworkConfig, random_state: RandomState = None) -> None:
        self.config = config
        rng = ensure_rng(random_state)
        layer_rngs = iter(spawn_rng(rng, 2 * len(config.hidden_dims) + 1))

        self.hidden_layers: list[Layer] = []
        in_dim = config.input_dim
        for hidden_dim in config.hidden_dims:
            self.hidden_layers.append(Linear(in_dim, hidden_dim, next(layer_rngs)))
            if config.use_layer_norm:
                self.hidden_layers.append(LayerNorm(hidden_dim))
            self.hidden_layers.append(Activation("relu"))
            if config.dropout > 0:
                self.hidden_layers.append(Dropout(config.dropout, next(layer_rngs)))
            in_dim = hidden_dim
        self.output_layer = Linear(in_dim, 1, next(layer_rngs))

    @property
    def layers(self) -> list[Layer]:
        """All layers, hidden blocks first, output head last."""
        return [*self.hidden_layers, self.output_layer]

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(layer.num_parameters for layer in self.layers)

    def representation(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Pair representations: activations after the last hidden block."""
        h = np.asarray(x, dtype=np.float64)
        for layer in self.hidden_layers:
            h = layer.forward(h, training=training)
        return h

    def forward(self, x: np.ndarray, training: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(logits, representations)`` for input ``x``."""
        representation = self.representation(x, training=training)
        logits = self.output_layer.forward(representation, training=training).reshape(-1)
        return logits, representation

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate the gradient of the loss w.r.t. the output logits."""
        grad = np.asarray(grad_logits, dtype=np.float64).reshape(-1, 1)
        grad = self.output_layer.backward(grad)
        for layer in reversed(self.hidden_layers):
            grad = layer.backward(grad)

    def zero_gradients(self) -> None:
        """Reset gradients in every layer."""
        for layer in self.layers:
            layer.zero_gradients()
