"""Loss functions for the matcher network."""

from __future__ import annotations

import numpy as np

from repro.neural.activations import sigmoid

_EPSILON = 1e-12


def binary_cross_entropy_with_logits(
    logits: np.ndarray,
    targets: np.ndarray,
    positive_weight: float = 1.0,
) -> tuple[float, np.ndarray]:
    """Binary cross entropy on raw logits.

    Returns the mean loss and the gradient of the loss with respect to the
    logits.  ``positive_weight`` lets the matcher counteract class imbalance
    by up-weighting the (rare) match class, a standard device when training
    with very few positive labels.
    """
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if logits.shape != targets.shape:
        raise ValueError(f"Shape mismatch: logits {logits.shape} vs targets {targets.shape}")
    probabilities = sigmoid(logits)
    weights = np.where(targets > 0.5, positive_weight, 1.0)
    losses = -(
        targets * np.log(probabilities + _EPSILON)
        + (1.0 - targets) * np.log(1.0 - probabilities + _EPSILON)
    )
    loss = float(np.mean(weights * losses))
    grad = weights * (probabilities - targets) / len(logits)
    return loss, grad


def binary_cross_entropy(probabilities: np.ndarray, targets: np.ndarray) -> float:
    """Mean binary cross entropy on probabilities (no gradient)."""
    probabilities = np.clip(np.asarray(probabilities, dtype=np.float64), _EPSILON, 1 - _EPSILON)
    targets = np.asarray(targets, dtype=np.float64)
    return float(np.mean(
        -(targets * np.log(probabilities) + (1.0 - targets) * np.log(1.0 - probabilities))
    ))
