"""The neural matcher: DITTO's stand-in.

:class:`NeuralMatcher` plays the role the fine-tuned DITTO model plays in the
paper (Section 3.2): given featurized candidate pairs it is trained on the
current labeled set, selects the best epoch by validation F1, and afterwards
provides — for *every* pair in the dataset — a match probability and a pair
representation (the analogue of the ``[CLS]`` embedding) used by the
battleship selection mechanism.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.exceptions import NotFittedError
from repro.neural.activations import sigmoid
from repro.neural.calibration import sharpen_probabilities
from repro.neural.losses import binary_cross_entropy_with_logits
from repro.neural.network import FeedForwardNetwork, NetworkConfig
from repro.neural.optimizers import AdamW


@dataclass(frozen=True)
class MatcherConfig:
    """Hyper-parameters of :class:`NeuralMatcher`.

    The defaults mirror the spirit of Section 4.2: AdamW, a fixed epoch
    budget, model selection by validation F1, and a batch size small enough
    for low-resource training sets.
    """

    hidden_dims: tuple[int, ...] = (256, 128)
    dropout: float = 0.1
    use_layer_norm: bool = True
    learning_rate: float = 1e-3
    weight_decay: float = 0.01
    epochs: int = 12
    batch_size: int = 12
    positive_weight: float | None = None
    confidence_temperature: float = 0.5
    random_state: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.positive_weight is not None and self.positive_weight <= 0:
            raise ValueError("positive_weight must be positive when given")
        if self.confidence_temperature <= 0:
            raise ValueError("confidence_temperature must be positive")


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics."""

    train_loss: list[float] = field(default_factory=list)
    validation_f1: list[float] = field(default_factory=list)
    best_epoch: int = -1

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)


def _binary_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """F1 of the positive class (local helper to avoid importing evaluation)."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    true_positive = np.sum(y_true & y_pred)
    if true_positive == 0:
        return 0.0
    precision = true_positive / max(np.sum(y_pred), 1)
    recall = true_positive / max(np.sum(y_true), 1)
    return float(2 * precision * recall / (precision + recall))


class NeuralMatcher:
    """Feed-forward matcher with pair representations and confidences."""

    def __init__(self, input_dim: int, config: MatcherConfig | None = None) -> None:
        if input_dim <= 0:
            raise ValueError("input_dim must be positive")
        self.config = config or MatcherConfig()
        self.input_dim = input_dim
        self._network: FeedForwardNetwork | None = None
        self._best_parameters: list[dict[str, np.ndarray]] | None = None
        self.history: TrainingHistory | None = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed at least once."""
        return self._network is not None

    @property
    def representation_dim(self) -> int:
        """Dimensionality of the pair representation."""
        return self.config.hidden_dims[-1]

    def _build_network(self, rng: np.random.Generator) -> FeedForwardNetwork:
        network_config = NetworkConfig(
            input_dim=self.input_dim,
            hidden_dims=self.config.hidden_dims,
            dropout=self.config.dropout,
            use_layer_norm=self.config.use_layer_norm,
        )
        return FeedForwardNetwork(network_config, random_state=rng)

    def _positive_weight(self, y: np.ndarray) -> float:
        if self.config.positive_weight is not None:
            return self.config.positive_weight
        positives = float(np.sum(y))
        negatives = float(len(y) - positives)
        if positives == 0:
            return 1.0
        # Balance the classes, capped so a handful of positives does not blow
        # up the gradient scale.
        return float(np.clip(negatives / positives, 1.0, 10.0))

    def _snapshot_parameters(self, network: FeedForwardNetwork) -> list[dict[str, np.ndarray]]:
        return [copy.deepcopy(layer.parameters) for layer in network.layers]

    def _restore_parameters(self, network: FeedForwardNetwork,
                            snapshot: list[dict[str, np.ndarray]]) -> None:
        for layer, parameters in zip(network.layers, snapshot):
            for name, value in parameters.items():
                layer.parameters[name][...] = value

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation_features: np.ndarray | None = None,
        validation_labels: np.ndarray | None = None,
    ) -> TrainingHistory:
        """Train from scratch on ``(features, labels)``.

        The paper re-initializes DITTO in every active-learning iteration
        rather than warm-starting from the previous model; ``fit`` therefore
        always rebuilds the network.  When validation data is supplied the
        epoch with the best validation F1 is restored at the end.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if features.ndim != 2 or features.shape[1] != self.input_dim:
            raise ValueError(
                f"features must have shape (n, {self.input_dim}), got {features.shape}"
            )
        if len(features) != len(labels):
            raise ValueError("features and labels must have the same length")
        if len(features) == 0:
            raise ValueError("Cannot fit a matcher on an empty training set")

        rng = ensure_rng(self.config.random_state)
        network_rng, shuffle_rng = spawn_rng(rng, 2)
        network = self._build_network(network_rng)
        optimizer = AdamW(network.layers, learning_rate=self.config.learning_rate,
                          weight_decay=self.config.weight_decay)
        positive_weight = self._positive_weight(labels)

        history = TrainingHistory()
        best_f1 = -1.0
        best_snapshot = self._snapshot_parameters(network)

        has_validation = (validation_features is not None and validation_labels is not None
                          and len(validation_features) > 0)
        n = len(features)
        batch_size = min(self.config.batch_size, n)

        for epoch in range(self.config.epochs):
            order = shuffle_rng.permutation(n)
            epoch_losses: list[float] = []
            for start in range(0, n, batch_size):
                batch = order[start:start + batch_size]
                x_batch, y_batch = features[batch], labels[batch]
                logits, _ = network.forward(x_batch, training=True)
                loss, grad = binary_cross_entropy_with_logits(logits, y_batch, positive_weight)
                network.zero_gradients()
                network.backward(grad)
                optimizer.step()
                epoch_losses.append(loss)
            history.train_loss.append(float(np.mean(epoch_losses)))

            if has_validation:
                self._network = network  # temporary, for predict during training
                probabilities = self._raw_probabilities(np.asarray(validation_features))
                f1 = _binary_f1(np.asarray(validation_labels), probabilities >= 0.5)
                history.validation_f1.append(f1)
                if f1 > best_f1:
                    best_f1 = f1
                    best_snapshot = self._snapshot_parameters(network)
                    history.best_epoch = epoch
            else:
                history.validation_f1.append(float("nan"))
                best_snapshot = self._snapshot_parameters(network)
                history.best_epoch = epoch

        self._restore_parameters(network, best_snapshot)
        self._network = network
        self._best_parameters = best_snapshot
        self.history = history
        return history

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _require_network(self) -> FeedForwardNetwork:
        if self._network is None:
            raise NotFittedError("NeuralMatcher.fit must be called before inference")
        return self._network

    def _raw_probabilities(self, features: np.ndarray) -> np.ndarray:
        network = self._require_network()
        logits, _ = network.forward(np.asarray(features, dtype=np.float64), training=False)
        return sigmoid(logits)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Match probabilities, sharpened to emulate PLM over-confidence."""
        probabilities = self._raw_probabilities(features)
        return sharpen_probabilities(probabilities, self.config.confidence_temperature)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard match / non-match predictions."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    def embed(self, features: np.ndarray) -> np.ndarray:
        """Pair representations (the ``[CLS]`` analogue), one row per pair."""
        network = self._require_network()
        return network.representation(np.asarray(features, dtype=np.float64), training=False)

    def predict_with_representations(
        self, features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(probabilities, representations)`` in a single forward pass."""
        network = self._require_network()
        logits, representations = network.forward(
            np.asarray(features, dtype=np.float64), training=False)
        probabilities = sharpen_probabilities(sigmoid(logits),
                                              self.config.confidence_temperature)
        return probabilities, representations
