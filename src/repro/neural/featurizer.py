"""Featurization of candidate pairs for the NumPy matcher.

DITTO feeds the serialized pair text through a subword tokenizer and a
transformer.  The stand-in matcher feeds the same serialization through
feature hashing plus attribute-wise similarity features:

* hashed token/q-gram vectors of the left and right record texts,
* their element-wise product and absolute difference (interaction features,
  the main carrier of "do these two records talk about the same thing"),
* classic per-attribute similarity scores (Jaccard, q-gram Jaccard, overlap,
  token cosine, and an edit-based or numeric measure depending on the
  attribute type).

The featurizer is stateless (feature hashing requires no fitting), so feature
matrices are identical across active-learning iterations and can be computed
once per dataset.

Two implementations produce the same matrix:

:meth:`PairFeaturizer.transform`
    The batched pipeline.  Records are deduplicated (every record typically
    participates in many candidate pairs), each unique record text is
    vectorized exactly once through the bulk
    :meth:`~repro.text.vectorizers.HashingVectorizer.transform` path, the raw
    and interaction blocks are assembled by fancy-indexing the per-record
    matrix, and per-attribute similarity features are computed once per
    unique ``(left_value, right_value)`` pair with token/q-gram sets cached
    per unique value.

:meth:`PairFeaturizer.transform_reference`
    The seed-era per-pair loop, kept as the correctness oracle.  The batch
    path is bit-identical to it (asserted by tests and the featurizer
    micro-benchmark), so artifact stores and recorded curves produced by
    either path are interchangeable.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.dataset import EMDataset
from repro.data.pair import CandidatePair
from repro.data.record import Record
from repro.data.schema import AttributeType, Schema
from repro.text.similarity import (
    bitparallel_levenshtein,
    character_positions,
    cosine_token_similarity,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    numeric_similarity,
    overlap_coefficient,
    qgram_jaccard_similarity,
)
from repro.text.tokenization import normalize, tokenize
from repro.text.vectorizers import HashingVectorizer, HashingVectorizerConfig

#: Values longer than this fall back from edit distance to Jaccard (cost control).
_EDIT_DISTANCE_MAX_LENGTH = 48


@dataclass(frozen=True)
class FeaturizerConfig:
    """Options for :class:`PairFeaturizer`.

    Attributes
    ----------
    hash_dim:
        Width of each hashed text vector.
    include_raw:
        Include the raw hashed vectors of both records (doubles the width but
        lets the representation encode *where* in product space a pair lives,
        which strengthens the latent-space clustering the battleship approach
        exploits).
    include_interactions:
        Include element-wise product and absolute difference of the hashed
        vectors.
    include_similarities:
        Include per-attribute similarity scores.
    """

    hash_dim: int = 192
    include_raw: bool = True
    include_interactions: bool = True
    include_similarities: bool = True
    qgram_size: int = 3

    def __post_init__(self) -> None:
        if self.hash_dim <= 0:
            raise ValueError("hash_dim must be positive")
        if not (self.include_raw or self.include_interactions or self.include_similarities):
            raise ValueError("At least one feature family must be enabled")


def _attribute_similarities(left_value: str, right_value: str,
                            kind: AttributeType, qgram_size: int) -> list[float]:
    """Similarity features for one attribute of a pair (reference path)."""
    features = [
        jaccard_similarity(left_value, right_value),
        qgram_jaccard_similarity(left_value, right_value, q=qgram_size),
        overlap_coefficient(left_value, right_value),
        cosine_token_similarity(left_value, right_value),
    ]
    if kind is AttributeType.NUMERIC:
        features.append(numeric_similarity(left_value, right_value))
    elif max(len(left_value), len(right_value)) <= _EDIT_DISTANCE_MAX_LENGTH:
        features.append(levenshtein_similarity(left_value, right_value))
    else:
        features.append(jaro_winkler_similarity(left_value[:_EDIT_DISTANCE_MAX_LENGTH],
                                                right_value[:_EDIT_DISTANCE_MAX_LENGTH]))
    missing = float(not left_value.strip() or not right_value.strip())
    features.append(missing)
    return features


class _ValueEntry:
    """Cached per-value artifacts feeding the set-based similarity measures.

    One entry per unique attribute value per :meth:`PairFeaturizer.transform`
    call; the token set/counts, q-gram set, count-vector norm, and normalized
    string are computed once (single tokenize pass, single normalize pass)
    and reused by every pair the value appears in.  All cached artifacts are
    exactly what :func:`~repro.text.tokenization.token_set` /
    :func:`~repro.text.tokenization.token_counts` /
    :func:`~repro.text.tokenization.qgram_set` would rebuild from the string.
    """

    __slots__ = ("value", "tokens", "qgrams", "counts", "norm", "blank",
                 "normalized", "positions")

    def __init__(self, value: str, qgram_size: int) -> None:
        self.value = value
        token_list = tokenize(value)
        self.tokens = set(token_list)
        self.counts = Counter(token_list)
        normalized = normalize(value)
        self.normalized = normalized
        # Inline qgram_set(value, q=qgram_size): same padding construction
        # on the already-normalized string.
        if not normalized:
            self.qgrams: set[str] = set()
        else:
            if qgram_size > 1:
                padding = "#" * (qgram_size - 1)
                padded = f"{padding}{normalized}{padding}"
            else:
                padded = normalized
            if len(padded) < qgram_size:
                self.qgrams = {padded}
            else:
                self.qgrams = {padded[i:i + qgram_size]
                               for i in range(len(padded) - qgram_size + 1)}
        # Same expression cosine_token_similarity evaluates per call; the
        # counts are ints, so the sum (and therefore the sqrt) is exact.
        self.norm = math.sqrt(sum(count * count for count in self.counts.values()))
        self.blank = not value.strip()
        #: Lazily built Myers bitmask table of ``normalized`` (edit path).
        self.positions: dict[str, int] | None = None

    def character_positions(self) -> dict[str, int]:
        """The value's Myers table, built once and shared across comparisons."""
        if self.positions is None:
            self.positions = character_positions(self.normalized)
        return self.positions


def _normalized_levenshtein(left: _ValueEntry, right: _ValueEntry) -> float:
    """``levenshtein_similarity`` on cached normalized strings.

    Uses the bit-parallel core directly with the shorter value's cached
    Myers table (``levenshtein_distance`` would rebuild it per call); the
    distance is the same integer, so the similarity float is identical.
    """
    a, b = left.normalized, right.normalized
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    longest = max(len(a), len(b))
    if len(a) <= len(b):
        pattern, text = left, right
    else:
        pattern, text = right, left
    if len(pattern.normalized) > 64:
        # Unicode lowercasing can lengthen strings past one bit-parallel
        # word even under the featurizer's 48-char raw cutoff.
        distance = levenshtein_distance(a, b)
    else:
        distance = bitparallel_levenshtein(
            pattern.character_positions(), len(pattern.normalized),
            text.normalized)
    return 1.0 - distance / longest


def _cached_similarities(left: _ValueEntry, right: _ValueEntry,
                         kind: AttributeType, qgram_size: int) -> list[float]:
    """Similarity features from cached value entries.

    Mirrors :func:`_attribute_similarities` exactly — every formula operates
    on the same sets/counts the string-based measures would rebuild (the
    token intersection is computed once and shared by Jaccard, overlap, and
    cosine; ``len(a | b)`` becomes the equal integer ``len(a) + len(b) -
    len(a & b)``), so the resulting floats are bit-identical.
    """
    left_value, right_value = left.value, right.value
    tokens_l, tokens_r = left.tokens, right.tokens
    if not tokens_l and not tokens_r:
        token_jaccard = overlap = cosine = 1.0
    elif not tokens_l or not tokens_r:
        token_jaccard = overlap = cosine = 0.0
    else:
        shared_tokens = tokens_l & tokens_r
        num_shared = len(shared_tokens)
        union = len(tokens_l) + len(tokens_r) - num_shared
        token_jaccard = num_shared / union
        overlap = num_shared / min(len(tokens_l), len(tokens_r))
        if num_shared:
            counts_l, counts_r = left.counts, right.counts
            dot = sum(counts_l[token] * counts_r[token]
                      for token in shared_tokens)
            cosine = dot / (left.norm * right.norm)
        else:
            # An integer dot of 0 divided by the positive norms is exactly 0.
            cosine = 0.0
    qgrams_l, qgrams_r = left.qgrams, right.qgrams
    if not qgrams_l and not qgrams_r:
        qgram_jaccard = 1.0
    else:
        num_shared_q = len(qgrams_l & qgrams_r)
        union_q = len(qgrams_l) + len(qgrams_r) - num_shared_q
        qgram_jaccard = num_shared_q / union_q if union_q else 0.0
    features = [token_jaccard, qgram_jaccard, overlap, cosine]
    if kind is AttributeType.NUMERIC:
        features.append(numeric_similarity(left_value, right_value))
    elif max(len(left_value), len(right_value)) <= _EDIT_DISTANCE_MAX_LENGTH:
        features.append(_normalized_levenshtein(left, right))
    else:
        features.append(jaro_winkler_similarity(left_value[:_EDIT_DISTANCE_MAX_LENGTH],
                                                right_value[:_EDIT_DISTANCE_MAX_LENGTH]))
    features.append(float(left.blank or right.blank))
    return features


class PairFeaturizer:
    """Transforms candidate pairs of an :class:`EMDataset` into feature vectors."""

    #: Number of similarity features emitted per attribute.
    SIMILARITIES_PER_ATTRIBUTE = 6

    def __init__(self, config: FeaturizerConfig | None = None) -> None:
        self.config = config or FeaturizerConfig()
        self._hasher = HashingVectorizer(HashingVectorizerConfig(
            num_features=self.config.hash_dim,
            qgram_size=self.config.qgram_size,
        ))

    def feature_dim(self, dataset: EMDataset) -> int:
        """Width of the feature vectors produced for ``dataset``."""
        dim = 0
        if self.config.include_raw:
            dim += 2 * self.config.hash_dim
        if self.config.include_interactions:
            dim += 2 * self.config.hash_dim
        if self.config.include_similarities:
            dim += self.SIMILARITIES_PER_ATTRIBUTE * len(self._serialized_attributes(dataset))
        return dim

    @staticmethod
    def _serialized_attributes(dataset: EMDataset) -> tuple[str, ...]:
        if dataset.serialization.attributes is not None:
            return tuple(name for name in dataset.serialization.attributes
                         if name in dataset.left.schema.attribute_names)
        return dataset.left.schema.attribute_names

    def _record_text(self, record: Record, attributes: Sequence[str]) -> str:
        return " ".join(record.value(name) for name in attributes)

    # ------------------------------------------------------------------ #
    # Reference (per-pair) path
    # ------------------------------------------------------------------ #
    def _pair_features(self, dataset: EMDataset, pair: CandidatePair,
                       attributes: Sequence[str], schema: Schema) -> np.ndarray:
        left, right = dataset.records_for(pair)
        parts: list[np.ndarray] = []

        if self.config.include_raw or self.config.include_interactions:
            left_vector = self._hasher.transform_one(self._record_text(left, attributes))
            right_vector = self._hasher.transform_one(self._record_text(right, attributes))
            if self.config.include_raw:
                parts.extend((left_vector, right_vector))
            if self.config.include_interactions:
                parts.append(left_vector * right_vector)
                parts.append(np.abs(left_vector - right_vector))

        if self.config.include_similarities:
            similarities: list[float] = []
            for name in attributes:
                kind = schema.attribute(name).kind
                similarities.extend(_attribute_similarities(
                    left.value(name), right.value(name), kind, self.config.qgram_size))
            parts.append(np.asarray(similarities, dtype=np.float64))

        return np.concatenate(parts)

    def transform_reference(self, dataset: EMDataset,
                            indices: Sequence[int] | None = None) -> np.ndarray:
        """Per-pair feature matrix (the seed-era loop, kept as the oracle).

        Every pair re-hashes both record texts and recomputes every
        similarity measure from the raw strings.  :meth:`transform` must stay
        bit-identical to this method.
        """
        if indices is None:
            indices = range(len(dataset.pairs))
        attributes = self._serialized_attributes(dataset)
        schema = dataset.left.schema
        rows = [
            self._pair_features(dataset, dataset.pairs[int(i)], attributes, schema)
            for i in indices
        ]
        if not rows:
            return np.zeros((0, self.feature_dim(dataset)), dtype=np.float64)
        return np.vstack(rows)

    # ------------------------------------------------------------------ #
    # Batched path
    # ------------------------------------------------------------------ #
    def transform(self, dataset: EMDataset,
                  indices: Sequence[int] | None = None) -> np.ndarray:
        """Feature matrix for the pairs at ``indices`` (all pairs by default).

        Batched pipeline, bit-identical to :meth:`transform_reference`:

        1. the records referenced by the requested pairs are deduplicated
           (first by record identity, then by serialized text, so duplicated
           records collapse too) and each unique text is vectorized once via
           the bulk hashing path;
        2. the raw and interaction blocks are assembled by fancy-indexing the
           per-record matrix;
        3. per-attribute similarity features are computed once per unique
           ``(left_value, right_value)`` combination, with token/q-gram
           sets and count norms cached per unique value.
        """
        if indices is None:
            indices = range(len(dataset.pairs))
        index_list = [int(i) for i in indices]
        num_pairs = len(index_list)
        if num_pairs == 0:
            return np.zeros((0, self.feature_dim(dataset)), dtype=np.float64)
        attributes = self._serialized_attributes(dataset)
        schema = dataset.left.schema
        pairs = [dataset.pairs[i] for i in index_list]
        left_records = [dataset.left[pair.left_id] for pair in pairs]
        right_records = [dataset.right[pair.right_id] for pair in pairs]

        blocks: list[np.ndarray] = []
        if self.config.include_raw or self.config.include_interactions:
            left_rows, right_rows, unique_texts = self._record_rows(
                pairs, left_records, right_records, attributes)
            record_matrix = self._hasher.transform(unique_texts)
            left_block = record_matrix[left_rows]
            right_block = record_matrix[right_rows]
            if self.config.include_raw:
                blocks.extend((left_block, right_block))
            if self.config.include_interactions:
                blocks.append(left_block * right_block)
                blocks.append(np.abs(left_block - right_block))

        if self.config.include_similarities:
            blocks.append(self._similarity_block(
                left_records, right_records, attributes, schema))

        return np.concatenate(blocks, axis=1) if len(blocks) > 1 else blocks[0]

    def _record_rows(
        self,
        pairs: Sequence[CandidatePair],
        left_records: Sequence[Record],
        right_records: Sequence[Record],
        attributes: Sequence[str],
    ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Map every pair side to a row of the unique-record-text matrix.

        Two memo levels: record identity (``(side, record_id)``) avoids
        re-serializing a record that appears in many pairs, and the text
        itself collapses distinct records with identical serialized values.
        """
        unique_texts: list[str] = []
        text_rows: dict[str, int] = {}
        record_rows: dict[tuple[int, str], int] = {}

        def row_of(side: int, record_id: str, record: Record) -> int:
            key = (side, record_id)
            row = record_rows.get(key)
            if row is None:
                text = self._record_text(record, attributes)
                row = text_rows.get(text)
                if row is None:
                    row = len(unique_texts)
                    unique_texts.append(text)
                    text_rows[text] = row
                record_rows[key] = row
            return row

        left_rows = np.fromiter(
            (row_of(0, pair.left_id, record)
             for pair, record in zip(pairs, left_records)),
            dtype=np.int64, count=len(pairs))
        right_rows = np.fromiter(
            (row_of(1, pair.right_id, record)
             for pair, record in zip(pairs, right_records)),
            dtype=np.int64, count=len(pairs))
        return left_rows, right_rows, unique_texts

    def _similarity_block(
        self,
        left_records: Sequence[Record],
        right_records: Sequence[Record],
        attributes: Sequence[str],
        schema: Schema,
    ) -> np.ndarray:
        """Per-attribute similarity features for every pair, value-pair cached."""
        num_pairs = len(left_records)
        per_attribute = self.SIMILARITIES_PER_ATTRIBUTE
        block = np.empty((num_pairs, per_attribute * len(attributes)),
                         dtype=np.float64)
        qgram_size = self.config.qgram_size
        value_entries: dict[str, _ValueEntry] = {}

        def entry_of(value: str) -> _ValueEntry:
            entry = value_entries.get(value)
            if entry is None:
                entry = _ValueEntry(value, qgram_size)
                value_entries[value] = entry
            return entry

        for attribute_index, name in enumerate(attributes):
            kind = schema.attribute(name).kind
            start = attribute_index * per_attribute
            keys = [(left.value(name), right.value(name))
                    for left, right in zip(left_records, right_records)]
            pair_cache: dict[tuple[str, str], list[float]] = {}
            for key in keys:
                if key not in pair_cache:
                    pair_cache[key] = _cached_similarities(
                        entry_of(key[0]), entry_of(key[1]), kind, qgram_size)
            # One vectorized conversion per attribute instead of one slice
            # assignment per pair.
            block[:, start:start + per_attribute] = [pair_cache[key]
                                                     for key in keys]
        return block
