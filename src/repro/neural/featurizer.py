"""Featurization of candidate pairs for the NumPy matcher.

DITTO feeds the serialized pair text through a subword tokenizer and a
transformer.  The stand-in matcher feeds the same serialization through
feature hashing plus attribute-wise similarity features:

* hashed token/q-gram vectors of the left and right record texts,
* their element-wise product and absolute difference (interaction features,
  the main carrier of "do these two records talk about the same thing"),
* classic per-attribute similarity scores (Jaccard, q-gram Jaccard, overlap,
  token cosine, and an edit-based or numeric measure depending on the
  attribute type).

The featurizer is stateless (feature hashing requires no fitting), so feature
matrices are identical across active-learning iterations and can be computed
once per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.dataset import EMDataset
from repro.data.pair import CandidatePair
from repro.data.record import Record
from repro.data.schema import AttributeType, Schema
from repro.text.similarity import (
    cosine_token_similarity,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    numeric_similarity,
    overlap_coefficient,
    qgram_jaccard_similarity,
)
from repro.text.vectorizers import HashingVectorizer, HashingVectorizerConfig

#: Values longer than this fall back from edit distance to Jaccard (cost control).
_EDIT_DISTANCE_MAX_LENGTH = 48


@dataclass(frozen=True)
class FeaturizerConfig:
    """Options for :class:`PairFeaturizer`.

    Attributes
    ----------
    hash_dim:
        Width of each hashed text vector.
    include_raw:
        Include the raw hashed vectors of both records (doubles the width but
        lets the representation encode *where* in product space a pair lives,
        which strengthens the latent-space clustering the battleship approach
        exploits).
    include_interactions:
        Include element-wise product and absolute difference of the hashed
        vectors.
    include_similarities:
        Include per-attribute similarity scores.
    """

    hash_dim: int = 192
    include_raw: bool = True
    include_interactions: bool = True
    include_similarities: bool = True
    qgram_size: int = 3

    def __post_init__(self) -> None:
        if self.hash_dim <= 0:
            raise ValueError("hash_dim must be positive")
        if not (self.include_raw or self.include_interactions or self.include_similarities):
            raise ValueError("At least one feature family must be enabled")


def _attribute_similarities(left_value: str, right_value: str,
                            kind: AttributeType, qgram_size: int) -> list[float]:
    """Similarity features for one attribute of a pair."""
    features = [
        jaccard_similarity(left_value, right_value),
        qgram_jaccard_similarity(left_value, right_value, q=qgram_size),
        overlap_coefficient(left_value, right_value),
        cosine_token_similarity(left_value, right_value),
    ]
    if kind is AttributeType.NUMERIC:
        features.append(numeric_similarity(left_value, right_value))
    elif max(len(left_value), len(right_value)) <= _EDIT_DISTANCE_MAX_LENGTH:
        features.append(levenshtein_similarity(left_value, right_value))
    else:
        features.append(jaro_winkler_similarity(left_value[:_EDIT_DISTANCE_MAX_LENGTH],
                                                right_value[:_EDIT_DISTANCE_MAX_LENGTH]))
    missing = float(not left_value.strip() or not right_value.strip())
    features.append(missing)
    return features


class PairFeaturizer:
    """Transforms candidate pairs of an :class:`EMDataset` into feature vectors."""

    #: Number of similarity features emitted per attribute.
    SIMILARITIES_PER_ATTRIBUTE = 6

    def __init__(self, config: FeaturizerConfig | None = None) -> None:
        self.config = config or FeaturizerConfig()
        self._hasher = HashingVectorizer(HashingVectorizerConfig(
            num_features=self.config.hash_dim,
            qgram_size=self.config.qgram_size,
        ))

    def feature_dim(self, dataset: EMDataset) -> int:
        """Width of the feature vectors produced for ``dataset``."""
        dim = 0
        if self.config.include_raw:
            dim += 2 * self.config.hash_dim
        if self.config.include_interactions:
            dim += 2 * self.config.hash_dim
        if self.config.include_similarities:
            dim += self.SIMILARITIES_PER_ATTRIBUTE * len(self._serialized_attributes(dataset))
        return dim

    @staticmethod
    def _serialized_attributes(dataset: EMDataset) -> tuple[str, ...]:
        if dataset.serialization.attributes is not None:
            return tuple(name for name in dataset.serialization.attributes
                         if name in dataset.left.schema.attribute_names)
        return dataset.left.schema.attribute_names

    def _record_text(self, record: Record, attributes: Sequence[str]) -> str:
        return " ".join(record.value(name) for name in attributes)

    def _pair_features(self, dataset: EMDataset, pair: CandidatePair,
                       attributes: Sequence[str], schema: Schema) -> np.ndarray:
        left, right = dataset.records_for(pair)
        parts: list[np.ndarray] = []

        if self.config.include_raw or self.config.include_interactions:
            left_vector = self._hasher.transform_one(self._record_text(left, attributes))
            right_vector = self._hasher.transform_one(self._record_text(right, attributes))
            if self.config.include_raw:
                parts.extend((left_vector, right_vector))
            if self.config.include_interactions:
                parts.append(left_vector * right_vector)
                parts.append(np.abs(left_vector - right_vector))

        if self.config.include_similarities:
            similarities: list[float] = []
            for name in attributes:
                kind = schema.attribute(name).kind
                similarities.extend(_attribute_similarities(
                    left.value(name), right.value(name), kind, self.config.qgram_size))
            parts.append(np.asarray(similarities, dtype=np.float64))

        return np.concatenate(parts)

    def transform(self, dataset: EMDataset,
                  indices: Sequence[int] | None = None) -> np.ndarray:
        """Feature matrix for the pairs at ``indices`` (all pairs by default)."""
        if indices is None:
            indices = range(len(dataset.pairs))
        attributes = self._serialized_attributes(dataset)
        schema = dataset.left.schema
        rows = [
            self._pair_features(dataset, dataset.pairs[int(i)], attributes, schema)
            for i in indices
        ]
        if not rows:
            return np.zeros((0, self.feature_dim(dataset)), dtype=np.float64)
        return np.vstack(rows)
