"""Neural network layers with manual forward/backward passes.

Each layer exposes ``forward(x, training)`` and ``backward(grad_output)``;
parameters and their gradients live in ``layer.parameters`` /
``layer.gradients`` dictionaries keyed by parameter name so the optimizers in
:mod:`repro.neural.optimizers` can update any layer uniformly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.neural.activations import ACTIVATIONS


class Layer(abc.ABC):
    """Base class for all layers."""

    def __init__(self) -> None:
        self.parameters: dict[str, np.ndarray] = {}
        self.gradients: dict[str, np.ndarray] = {}

    @abc.abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the gradient w.r.t. the input."""

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars in the layer."""
        return int(sum(p.size for p in self.parameters.values()))

    def zero_gradients(self) -> None:
        """Reset accumulated gradients to zero."""
        for name, parameter in self.parameters.items():
            self.gradients[name] = np.zeros_like(parameter)


class Linear(Layer):
    """Fully connected layer ``y = x W + b`` with He-style initialization."""

    def __init__(self, in_features: int, out_features: int,
                 random_state: RandomState = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = ensure_rng(random_state)
        scale = np.sqrt(2.0 / in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.parameters["weight"] = rng.normal(0.0, scale, size=(in_features, out_features))
        self.parameters["bias"] = np.zeros(out_features)
        self.zero_gradients()
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x if training else None
        return x @ self.parameters["weight"] + self.parameters["bias"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before a training forward pass")
        self.gradients["weight"] = self._input.T @ grad_output
        self.gradients["bias"] = grad_output.sum(axis=0)
        return grad_output @ self.parameters["weight"].T


class Activation(Layer):
    """Element-wise activation layer (relu / sigmoid / tanh)."""

    def __init__(self, name: str = "relu") -> None:
        super().__init__()
        if name not in ACTIVATIONS:
            raise ValueError(f"Unknown activation {name!r}; expected one of {sorted(ACTIVATIONS)}")
        self.name = name
        self._function, self._gradient = ACTIVATIONS[name]
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x if training else None
        return self._function(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad_output * self._gradient(self._input)


class Dropout(Layer):
    """Inverted dropout: active only during training."""

    def __init__(self, rate: float = 0.1, random_state: RandomState = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"Dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = ensure_rng(random_state)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class LayerNorm(Layer):
    """Layer normalization over the feature dimension."""

    def __init__(self, num_features: int, epsilon: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.epsilon = epsilon
        self.parameters["gamma"] = np.ones(num_features)
        self.parameters["beta"] = np.zeros(num_features)
        self.zero_gradients()
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        variance = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(variance + self.epsilon)
        normalized = (x - mean) * inv_std
        if training:
            self._cache = (normalized, inv_std, x)
        else:
            self._cache = None
        return normalized * self.parameters["gamma"] + self.parameters["beta"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        normalized, inv_std, _ = self._cache
        gamma = self.parameters["gamma"]
        self.gradients["gamma"] = (grad_output * normalized).sum(axis=0)
        self.gradients["beta"] = grad_output.sum(axis=0)
        n = normalized.shape[-1]
        grad_normalized = grad_output * gamma
        # Standard layer-norm backward pass.
        grad_input = (
            grad_normalized
            - grad_normalized.mean(axis=-1, keepdims=True)
            - normalized * (grad_normalized * normalized).mean(axis=-1, keepdims=True)
        ) * inv_std
        return grad_input
