"""Neural matcher substrate: the NumPy stand-in for the paper's DITTO model."""

from repro.neural.activations import relu, sigmoid, softmax, tanh
from repro.neural.calibration import (
    TemperatureScaler,
    expected_calibration_error,
    logit,
    sharpen_probabilities,
)
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer
from repro.neural.layers import Activation, Dropout, Layer, LayerNorm, Linear
from repro.neural.losses import binary_cross_entropy, binary_cross_entropy_with_logits
from repro.neural.matcher import MatcherConfig, NeuralMatcher, TrainingHistory
from repro.neural.network import FeedForwardNetwork, NetworkConfig
from repro.neural.optimizers import SGD, Adam, AdamW, Optimizer

__all__ = [
    "Activation",
    "Adam",
    "AdamW",
    "Dropout",
    "FeaturizerConfig",
    "FeedForwardNetwork",
    "Layer",
    "LayerNorm",
    "Linear",
    "MatcherConfig",
    "NetworkConfig",
    "NeuralMatcher",
    "Optimizer",
    "PairFeaturizer",
    "SGD",
    "TemperatureScaler",
    "TrainingHistory",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "expected_calibration_error",
    "logit",
    "relu",
    "sharpen_probabilities",
    "sigmoid",
    "softmax",
    "tanh",
]
