"""Gradient-descent optimizers (SGD, Adam, AdamW).

The paper trains DITTO with AdamW at a learning rate of ``3e-5``
(Section 4.2); :class:`AdamW` here follows Loshchilov & Hutter's decoupled
weight decay formulation.  Optimizers operate on the ``parameters`` /
``gradients`` dictionaries exposed by :class:`repro.neural.layers.Layer`.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from repro.neural.layers import Layer


class Optimizer(abc.ABC):
    """Base class for optimizers operating on a list of layers."""

    def __init__(self, layers: Iterable[Layer], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.layers = [layer for layer in layers if layer.parameters]
        self.learning_rate = learning_rate

    @abc.abstractmethod
    def step(self) -> None:
        """Apply one update using the gradients currently stored in the layers."""

    def zero_gradients(self) -> None:
        """Reset the gradients of every managed layer."""
        for layer in self.layers:
            layer.zero_gradients()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, layers: Iterable[Layer], learning_rate: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(layers, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: list[dict[str, np.ndarray]] = [
            {name: np.zeros_like(parameter) for name, parameter in layer.parameters.items()}
            for layer in self.layers
        ]

    def step(self) -> None:
        for layer, velocity in zip(self.layers, self._velocity):
            for name, parameter in layer.parameters.items():
                gradient = layer.gradients[name]
                if self.momentum > 0:
                    velocity[name] = self.momentum * velocity[name] - self.learning_rate * gradient
                    parameter += velocity[name]
                else:
                    parameter -= self.learning_rate * gradient


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, layers: Iterable[Layer], learning_rate: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        super().__init__(layers, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._first_moment = self._init_state()
        self._second_moment = self._init_state()

    def _init_state(self) -> list[dict[str, np.ndarray]]:
        return [
            {name: np.zeros_like(parameter) for name, parameter in layer.parameters.items()}
            for layer in self.layers
        ]

    def _update_parameter(self, layer_index: int, name: str,
                          parameter: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Compute the Adam update direction for one parameter tensor."""
        m = self._first_moment[layer_index][name]
        v = self._second_moment[layer_index][name]
        m[:] = self.beta1 * m + (1.0 - self.beta1) * gradient
        v[:] = self.beta2 * v + (1.0 - self.beta2) * gradient * gradient
        m_hat = m / (1.0 - self.beta1 ** self._step_count)
        v_hat = v / (1.0 - self.beta2 ** self._step_count)
        return self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def step(self) -> None:
        self._step_count += 1
        for layer_index, layer in enumerate(self.layers):
            for name, parameter in layer.parameters.items():
                update = self._update_parameter(layer_index, name, parameter,
                                                layer.gradients[name])
                parameter -= update


class AdamW(Adam):
    """Adam with decoupled weight decay (the paper's optimizer for DITTO)."""

    def __init__(self, layers: Iterable[Layer], learning_rate: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, epsilon: float = 1e-8,
                 weight_decay: float = 0.01) -> None:
        super().__init__(layers, learning_rate, beta1, beta2, epsilon)
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.weight_decay = weight_decay

    def step(self) -> None:
        self._step_count += 1
        for layer_index, layer in enumerate(self.layers):
            for name, parameter in layer.parameters.items():
                update = self._update_parameter(layer_index, name, parameter,
                                                layer.gradients[name])
                # Decoupled weight decay: applied directly to the weights,
                # never to bias or normalization parameters.
                if self.weight_decay > 0 and name == "weight":
                    parameter -= self.learning_rate * self.weight_decay * parameter
                parameter -= update
