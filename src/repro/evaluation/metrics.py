"""Classification metrics for entity matching (positive class = match)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts with match (1) as the positive class."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return (self.true_positive + self.false_positive
                + self.true_negative + self.false_negative)

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionMatrix:
    """Compute the binary confusion matrix."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    return ConfusionMatrix(
        true_positive=int(np.sum(y_true & y_pred)),
        false_positive=int(np.sum(~y_true & y_pred)),
        true_negative=int(np.sum(~y_true & ~y_pred)),
        false_negative=int(np.sum(y_true & ~y_pred)),
    )


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Precision of the match class (0 when nothing is predicted positive)."""
    cm = confusion_matrix(y_true, y_pred)
    denominator = cm.true_positive + cm.false_positive
    return cm.true_positive / denominator if denominator else 0.0


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Recall of the match class (0 when there are no true matches)."""
    cm = confusion_matrix(y_true, y_pred)
    denominator = cm.true_positive + cm.false_negative
    return cm.true_positive / denominator if denominator else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """F1 of the match class, the paper's headline metric."""
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class MatchingMetrics:
    """Precision / recall / F1 bundle reported for a matcher on a test set."""

    precision: float
    recall: float
    f1: float
    num_examples: int

    def as_row(self) -> dict[str, float]:
        """Flat dictionary used by the reporting tables."""
        return {
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "num_examples": self.num_examples,
        }

    def to_dict(self) -> dict[str, float | int]:
        """Lossless JSON-ready representation (unlike the rounded ``as_row``)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "num_examples": self.num_examples,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, float | int]) -> "MatchingMetrics":
        """Inverse of :meth:`to_dict`."""
        return cls(
            precision=float(payload["precision"]),
            recall=float(payload["recall"]),
            f1=float(payload["f1"]),
            num_examples=int(payload["num_examples"]),
        )


def matching_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> MatchingMetrics:
    """Precision / recall / F1 for ``y_pred`` against ``y_true``."""
    return MatchingMetrics(
        precision=precision_score(y_true, y_pred),
        recall=recall_score(y_true, y_pred),
        f1=f1_score(y_true, y_pred),
        num_examples=int(len(np.asarray(y_true))),
    )
