"""Evaluation: matching metrics, learning curves, AUC, and report formatting."""

from repro.evaluation.curves import LearningCurve, auc_table, average_curves
from repro.evaluation.metrics import (
    ConfusionMatrix,
    MatchingMetrics,
    confusion_matrix,
    f1_score,
    matching_metrics,
    precision_score,
    recall_score,
)
from repro.evaluation.reporting import format_learning_curves, format_table, paper_comparison_row

__all__ = [
    "ConfusionMatrix",
    "LearningCurve",
    "MatchingMetrics",
    "auc_table",
    "average_curves",
    "confusion_matrix",
    "f1_score",
    "format_learning_curves",
    "format_table",
    "matching_metrics",
    "paper_comparison_row",
    "precision_score",
    "recall_score",
]
