"""Plain-text report formatting for tables and figure data.

The benchmark harness prints the same rows/series the paper reports; these
helpers render lists of dictionaries as aligned text tables and learning
curves as simple series dumps, so the benches need no plotting dependencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.evaluation.curves import LearningCurve


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None,
                 float_format: str = "{:.2f}") -> str:
    """Render ``rows`` (dicts sharing keys) as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
                     for line in rendered)
    parts = [header, separator, body]
    if title:
        parts.insert(0, title)
    return "\n".join(parts)


def format_learning_curves(curves: Mapping[str, LearningCurve], title: str | None = None,
                           percentage: bool = True) -> str:
    """Render learning curves as one row per method (Figure 5-style series)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    for method, curve in curves.items():
        scale = 100.0 if percentage else 1.0
        points = ", ".join(
            f"{count}:{f1 * scale:.1f}"
            for count, f1 in zip(curve.labeled_counts, curve.f1_scores)
        )
        lines.append(f"{method:>14}  {points}")
    return "\n".join(lines)


def paper_comparison_row(name: str, paper_value: float, measured_value: float,
                         unit: str = "F1") -> dict[str, object]:
    """One row of an EXPERIMENTS.md-style paper-vs-measured comparison."""
    delta = measured_value - paper_value
    return {
        "experiment": name,
        "metric": unit,
        "paper": round(paper_value, 2),
        "measured": round(measured_value, 2),
        "delta": round(delta, 2),
    }
