"""Learning curves and their area under the curve (Table 5 of the paper).

The paper summarizes the whole active-learning course of a method by the area
under its F1-versus-labeled-samples curve (citing Baram et al.).  The AUC here
is the trapezoidal area of the F1 curve (percentage points) against the number
of labeled samples, normalized by the span of the x axis — the same
within-dataset comparison the paper's Table 5 performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class LearningCurve:
    """An F1-versus-labels learning curve for one method on one dataset."""

    labeled_counts: list[int] = field(default_factory=list)
    f1_scores: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.labeled_counts) != len(self.f1_scores):
            raise ValueError("labeled_counts and f1_scores must have equal length")

    def add(self, labeled_count: int, f1: float) -> None:
        """Append one measurement to the curve."""
        if self.labeled_counts and labeled_count < self.labeled_counts[-1]:
            raise ValueError("labeled_counts must be non-decreasing")
        self.labeled_counts.append(int(labeled_count))
        self.f1_scores.append(float(f1))

    @property
    def final_f1(self) -> float:
        """F1 at the end of the learning course."""
        return self.f1_scores[-1] if self.f1_scores else 0.0

    def f1_at(self, labeled_count: int) -> float:
        """F1 at the largest recorded count not exceeding ``labeled_count``.

        Used to reproduce Table 4's "F1 with 500 / 900 labeled samples" rows.
        Budgets below the first measurement yield 0.0: no model has been
        trained at that point, so there is no F1 to report.
        """
        eligible = [f1 for count, f1 in zip(self.labeled_counts, self.f1_scores)
                    if count <= labeled_count]
        return eligible[-1] if eligible else 0.0

    def auc(self, percentage: bool = True) -> float:
        """Trapezoidal area under the curve, normalized by the x-axis span.

        With ``percentage`` the F1 values are scaled to 0–100 (the paper's
        Table 5 reports values in the hundreds, consistent with percentage F1
        averaged over the labeled-sample axis and scaled by the number of
        iterations).
        """
        if len(self.labeled_counts) < 2:
            return 0.0
        x = np.asarray(self.labeled_counts, dtype=np.float64)
        y = np.asarray(self.f1_scores, dtype=np.float64)
        if percentage:
            y = y * 100.0
        area = float(np.trapezoid(y, x))
        span = float(x[-1] - x[0])
        if span <= 0:
            return 0.0
        # Average height times the number of segments: matches the magnitude
        # of the paper's AUC values (hundreds) while staying scale-free in x.
        return area / span * (len(x) - 1)


def auc_table(curves: dict[str, LearningCurve]) -> dict[str, float]:
    """AUC per method (one row of Table 5)."""
    return {method: curve.auc() for method, curve in curves.items()}


def average_curves(curves: Sequence[LearningCurve]) -> LearningCurve:
    """Average several curves measured at the same checkpoints.

    The paper averages the battleship curves over three α values; this helper
    performs that aggregation.  Runs under a perfect oracle share the exact
    labeled-count axis; an abstaining oracle makes the acquired-label counts
    seed-dependent, so curves of equal *length* (the checkpoints are still
    one per iteration) are aligned positionally and the labeled-count axis is
    averaged along with the F1 values.  Curves with different checkpoint
    counts cannot be aggregated meaningfully and still raise.
    """
    if not curves:
        return LearningCurve()
    length = len(curves[0].labeled_counts)
    for curve in curves[1:]:
        if len(curve.labeled_counts) != length:
            raise ValueError(
                "All curves must record the same number of checkpoints")
    counts = np.mean([curve.labeled_counts for curve in curves], axis=0)
    scores = np.mean([curve.f1_scores for curve in curves], axis=0)
    return LearningCurve(labeled_counts=[int(round(c)) for c in counts],
                         f1_scores=[float(s) for s in scores])
