"""Random-number-generation helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalizes
these into a ``Generator`` so call sites never have to branch.  Child
generators derived with :func:`spawn_rng` are independent streams, which keeps
experiments reproducible even when components consume randomness in different
orders.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RandomState = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` (fresh default-seeded generator), an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).
    """
    if random_state is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, an int, or a numpy Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**31 - 1, size=n)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def seed_everything(seed: int) -> np.random.Generator:
    """Return a generator seeded with ``seed`` and seed the legacy NumPy RNG.

    The legacy global RNG is seeded as well because a few third-party helpers
    (and user code in examples) may still rely on ``np.random``.
    """
    np.random.seed(seed)
    return np.random.default_rng(seed)
