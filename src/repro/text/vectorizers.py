"""Text vectorizers implemented with NumPy.

Two vectorizers are provided:

:class:`HashingVectorizer`
    Stateless feature hashing of tokens (and optionally character q-grams)
    into a fixed-width vector.  It is the front end of the neural matcher
    substrate (:mod:`repro.neural`): the DITTO model of the paper consumes the
    serialized pair text through a subword tokenizer; we consume the same text
    through feature hashing, which needs no vocabulary fitting and therefore
    behaves identically across active-learning iterations.

:class:`TfidfVectorizer`
    A classic fit/transform TF-IDF vectorizer used by the ZeroER baseline and
    the blocking evaluation utilities.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from itertools import chain
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import NotFittedError
from repro.text.tokenization import qgrams, tokenize


def _stable_hash(token: str, seed: int = 0) -> int:
    """Deterministic 64-bit hash of ``token`` (stable across processes)."""
    digest = hashlib.blake2b(f"{seed}:{token}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class HashingVectorizerConfig:
    """Options for :class:`HashingVectorizer`."""

    num_features: int = 1024
    use_qgrams: bool = True
    qgram_size: int = 3
    signed: bool = True
    normalize: bool = True
    seed: int = 17


class HashingVectorizer:
    """Hash tokens (and q-grams) of a text into a fixed-width vector.

    :meth:`transform` is the batched entry point: it hashes every *distinct*
    feature string exactly once through a shared feature → ``(column, sign)``
    table (kept on the instance, so repeated calls keep amortizing), scatters
    all occurrences in one :func:`numpy.bincount` pass, and normalizes
    row-wise.  Its output is bit-identical to stacking :meth:`transform_one`
    over the same texts: the scattered values are ±1, whose float64 sums are
    exact in any order, and each row is normalized with the very same
    ``np.linalg.norm(row)`` / in-place division the one-text path uses.
    """

    def __init__(self, config: HashingVectorizerConfig | None = None) -> None:
        self.config = config or HashingVectorizerConfig()
        if self.config.num_features <= 0:
            raise ValueError("num_features must be positive")
        #: feature string → ±(column + 1) (sign of the entry is the scatter
        #: sign); filled lazily by transform().
        self._feature_table: dict[str, int] = {}

    @property
    def num_features(self) -> int:
        """Width of the produced vectors."""
        return self.config.num_features

    def _features(self, text: str) -> list[str]:
        features = tokenize(text)
        if self.config.use_qgrams:
            features.extend(qgrams(text, q=self.config.qgram_size))
        return features

    def _intern_feature(self, feature: str) -> None:
        """Hash ``feature`` into the column table (at most once ever)."""
        hashed = _stable_hash(feature, self.config.seed)
        index = hashed % self.config.num_features
        if self.config.signed and not ((hashed >> 32) & 1):
            self._feature_table[feature] = -(index + 1)
        else:
            self._feature_table[feature] = index + 1

    def transform_one(self, text: str) -> np.ndarray:
        """Vectorize a single text (the seed-era per-occurrence-hash path)."""
        vector = np.zeros(self.config.num_features, dtype=np.float64)
        for feature in self._features(text):
            hashed = _stable_hash(feature, self.config.seed)
            index = hashed % self.config.num_features
            if self.config.signed:
                sign = 1.0 if (hashed >> 32) & 1 else -1.0
            else:
                sign = 1.0
            vector[index] += sign
        if self.config.normalize:
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector /= norm
        return vector

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Vectorize a sequence of texts into a ``(n, num_features)`` matrix.

        Bit-identical to ``np.vstack([self.transform_one(t) for t in texts])``
        but hashes each distinct feature string once instead of once per
        occurrence.
        """
        num_features = self.config.num_features
        n = len(texts)
        if n == 0:
            return np.zeros((0, num_features), dtype=np.float64)
        table = self._feature_table
        intern = self._intern_feature
        per_text = [self._features(text) for text in texts]
        lengths = np.fromiter(map(len, per_text), dtype=np.int64, count=n)
        total = int(lengths.sum())
        if total:
            for features in per_text:
                for feature in features:
                    if feature not in table:
                        intern(feature)
            # Translate features through the table at C speed; the sign of a
            # packed entry is the scatter sign, its magnitude - 1 the column.
            packed = np.fromiter(
                map(table.__getitem__, chain.from_iterable(per_text)),
                dtype=np.int64, count=total)
            rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
            columns = np.abs(packed) - 1
            signs = np.where(packed > 0, 1.0, -1.0)
            flat = np.bincount(rows * num_features + columns, weights=signs,
                               minlength=n * num_features)
            matrix = flat.reshape(n, num_features)
        else:
            matrix = np.zeros((n, num_features), dtype=np.float64)
        if self.config.normalize:
            # Per-row np.linalg.norm: the exact computation transform_one
            # runs, so normalized rows match it bit for bit.
            for row in range(n):
                norm = np.linalg.norm(matrix[row])
                if norm > 0:
                    matrix[row] /= norm
        return matrix


class TfidfVectorizer:
    """A minimal TF-IDF vectorizer (fit on a corpus, then transform)."""

    def __init__(self, min_df: int = 1, max_features: int | None = None) -> None:
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        self.min_df = min_df
        self.max_features = max_features
        self._vocabulary: dict[str, int] | None = None
        self._idf: np.ndarray | None = None

    @property
    def vocabulary(self) -> dict[str, int]:
        """Token → column index mapping (after :meth:`fit`)."""
        if self._vocabulary is None:
            raise NotFittedError("TfidfVectorizer.fit must be called before use")
        return self._vocabulary

    def fit(self, texts: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and inverse document frequencies from ``texts``."""
        document_frequency: dict[str, int] = {}
        for text in texts:
            # dict.fromkeys dedups per document in first-occurrence order, so
            # document_frequency's insertion order derives from the corpus
            # rather than from set iteration order (the counts themselves are
            # order-independent; the explicit sorts below own the ordering).
            for token in dict.fromkeys(tokenize(text)):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        items = [(token, df) for token, df in document_frequency.items() if df >= self.min_df]
        # Keep the most frequent tokens when max_features caps the vocabulary.
        items.sort(key=lambda item: (-item[1], item[0]))
        if self.max_features is not None:
            items = items[: self.max_features]
        items.sort(key=lambda item: item[0])
        self._vocabulary = {token: index for index, (token, _) in enumerate(items)}
        n_documents = max(len(texts), 1)
        idf = np.zeros(len(self._vocabulary), dtype=np.float64)
        for token, index in self._vocabulary.items():
            idf[index] = math.log((1 + n_documents) / (1 + document_frequency[token])) + 1.0
        self._idf = idf
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Transform ``texts`` into an L2-normalized TF-IDF matrix.

        Token counts are accumulated per row first and only the nonzero
        columns are written, so the cost scales with the tokens actually
        present instead of ``n_texts × vocabulary``; the IDF scaling and the
        normalization happen in place, eliminating the full-matrix multiply
        pass and the second dense ``matrix / norms`` allocation of the seed
        implementation.  Values are identical: a count accumulated as
        repeated ``+= 1.0`` equals the integer count cast to float, and the
        row norms are computed by the same ``np.linalg.norm`` call.
        """
        if self._vocabulary is None or self._idf is None:
            raise NotFittedError("TfidfVectorizer.fit must be called before transform")
        vocabulary = self._vocabulary
        matrix = np.zeros((len(texts), len(vocabulary)), dtype=np.float64)
        for row, text in enumerate(texts):
            counts: dict[int, int] = {}
            for token in tokenize(text):
                column = vocabulary.get(token)
                if column is not None:
                    counts[column] = counts.get(column, 0) + 1
            if counts:
                columns = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
                values = np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
                matrix[row, columns] = values * self._idf[columns]
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        matrix /= norms
        return matrix

    def fit_transform(self, texts: Sequence[str]) -> np.ndarray:
        """Equivalent to ``fit(texts).transform(texts)``."""
        return self.fit(texts).transform(texts)


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Pairwise cosine similarities between rows of ``a`` and rows of ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = a if b is None else np.asarray(b, dtype=np.float64)
    a_norms = np.linalg.norm(a, axis=1, keepdims=True)
    b_norms = np.linalg.norm(b, axis=1, keepdims=True)
    a_norms[a_norms == 0] = 1.0
    b_norms[b_norms == 0] = 1.0
    return (a / a_norms) @ (b / b_norms).T
