"""Text vectorizers implemented with NumPy.

Two vectorizers are provided:

:class:`HashingVectorizer`
    Stateless feature hashing of tokens (and optionally character q-grams)
    into a fixed-width vector.  It is the front end of the neural matcher
    substrate (:mod:`repro.neural`): the DITTO model of the paper consumes the
    serialized pair text through a subword tokenizer; we consume the same text
    through feature hashing, which needs no vocabulary fitting and therefore
    behaves identically across active-learning iterations.

:class:`TfidfVectorizer`
    A classic fit/transform TF-IDF vectorizer used by the ZeroER baseline and
    the blocking evaluation utilities.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import NotFittedError
from repro.text.tokenization import qgrams, tokenize


def _stable_hash(token: str, seed: int = 0) -> int:
    """Deterministic 64-bit hash of ``token`` (stable across processes)."""
    digest = hashlib.blake2b(f"{seed}:{token}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class HashingVectorizerConfig:
    """Options for :class:`HashingVectorizer`."""

    num_features: int = 1024
    use_qgrams: bool = True
    qgram_size: int = 3
    signed: bool = True
    normalize: bool = True
    seed: int = 17


class HashingVectorizer:
    """Hash tokens (and q-grams) of a text into a fixed-width vector."""

    def __init__(self, config: HashingVectorizerConfig | None = None) -> None:
        self.config = config or HashingVectorizerConfig()
        if self.config.num_features <= 0:
            raise ValueError("num_features must be positive")

    @property
    def num_features(self) -> int:
        """Width of the produced vectors."""
        return self.config.num_features

    def _features(self, text: str) -> list[str]:
        features = tokenize(text)
        if self.config.use_qgrams:
            features.extend(qgrams(text, q=self.config.qgram_size))
        return features

    def transform_one(self, text: str) -> np.ndarray:
        """Vectorize a single text."""
        vector = np.zeros(self.config.num_features, dtype=np.float64)
        for feature in self._features(text):
            hashed = _stable_hash(feature, self.config.seed)
            index = hashed % self.config.num_features
            if self.config.signed:
                sign = 1.0 if (hashed >> 32) & 1 else -1.0
            else:
                sign = 1.0
            vector[index] += sign
        if self.config.normalize:
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector /= norm
        return vector

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Vectorize a sequence of texts into a ``(n, num_features)`` matrix."""
        if len(texts) == 0:
            return np.zeros((0, self.config.num_features), dtype=np.float64)
        return np.vstack([self.transform_one(text) for text in texts])


class TfidfVectorizer:
    """A minimal TF-IDF vectorizer (fit on a corpus, then transform)."""

    def __init__(self, min_df: int = 1, max_features: int | None = None) -> None:
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        self.min_df = min_df
        self.max_features = max_features
        self._vocabulary: dict[str, int] | None = None
        self._idf: np.ndarray | None = None

    @property
    def vocabulary(self) -> dict[str, int]:
        """Token → column index mapping (after :meth:`fit`)."""
        if self._vocabulary is None:
            raise NotFittedError("TfidfVectorizer.fit must be called before use")
        return self._vocabulary

    def fit(self, texts: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and inverse document frequencies from ``texts``."""
        document_frequency: dict[str, int] = {}
        for text in texts:
            for token in set(tokenize(text)):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        items = [(token, df) for token, df in document_frequency.items() if df >= self.min_df]
        # Keep the most frequent tokens when max_features caps the vocabulary.
        items.sort(key=lambda item: (-item[1], item[0]))
        if self.max_features is not None:
            items = items[: self.max_features]
        items.sort(key=lambda item: item[0])
        self._vocabulary = {token: index for index, (token, _) in enumerate(items)}
        n_documents = max(len(texts), 1)
        idf = np.zeros(len(self._vocabulary), dtype=np.float64)
        for token, index in self._vocabulary.items():
            idf[index] = math.log((1 + n_documents) / (1 + document_frequency[token])) + 1.0
        self._idf = idf
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Transform ``texts`` into an L2-normalized TF-IDF matrix."""
        if self._vocabulary is None or self._idf is None:
            raise NotFittedError("TfidfVectorizer.fit must be called before transform")
        matrix = np.zeros((len(texts), len(self._vocabulary)), dtype=np.float64)
        for row, text in enumerate(texts):
            for token in tokenize(text):
                column = self._vocabulary.get(token)
                if column is not None:
                    matrix[row, column] += 1.0
        matrix *= self._idf
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return matrix / norms

    def fit_transform(self, texts: Sequence[str]) -> np.ndarray:
        """Equivalent to ``fit(texts).transform(texts)``."""
        return self.fit(texts).transform(texts)


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Pairwise cosine similarities between rows of ``a`` and rows of ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = a if b is None else np.asarray(b, dtype=np.float64)
    a_norms = np.linalg.norm(a, axis=1, keepdims=True)
    b_norms = np.linalg.norm(b, axis=1, keepdims=True)
    a_norms[a_norms == 0] = 1.0
    b_norms[b_norms == 0] = 1.0
    return (a / a_norms) @ (b / b_norms).T
