"""String and attribute similarity measures.

Traditional entity-matching systems (and the ZeroER baseline reimplemented in
:mod:`repro.baselines.zeroer`) describe a candidate pair with a vector of
similarity scores between corresponding attribute values.  This module
implements the widely used measures from scratch: Levenshtein, Jaro,
Jaro-Winkler, Jaccard (token and q-gram), overlap and Dice coefficients,
Monge-Elkan, cosine similarity over token counts, plus numeric and exact-match
helpers.  All measures return values in ``[0, 1]`` with 1 meaning identical.
"""

from __future__ import annotations

import math

from repro.text.tokenization import normalize, qgram_set, token_counts, token_set, tokenize


def character_positions(pattern: str) -> dict[str, int]:
    """Bitmask of the positions of every character of ``pattern``.

    The table feeding :func:`bitparallel_levenshtein`; callers that compare
    one string against many (the batched featurizer) build it once per
    string and reuse it across comparisons.
    """
    positions: dict[str, int] = {}
    bit = 1
    for char in pattern:
        positions[char] = positions.get(char, 0) | bit
        bit <<= 1
    return positions


def bitparallel_levenshtein(positions: dict[str, int], length: int,
                            text: str) -> int:
    """Myers' bit-parallel exact edit distance (pattern of <= 64 chars).

    Encodes a whole DP column in the bits of one integer (Myers 1999, in
    Hyyrö's formulation), so each text character costs a handful of integer
    operations instead of a Python inner loop over the pattern.  Takes the
    pattern pre-digested as its :func:`character_positions` table plus its
    ``length``; returns the same integer as the dynamic program.
    """
    mask = (1 << length) - 1
    high = 1 << (length - 1)
    vp = mask
    vn = 0
    distance = length
    get_positions = positions.get
    for char in text:
        pm = get_positions(char, 0)
        d0 = ((((pm & vp) + vp) ^ vp) | pm | vn) & mask
        hp = vn | (~(d0 | vp) & mask)
        hn = d0 & vp
        if hp & high:
            distance += 1
        if hn & high:
            distance -= 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = hn | (~(d0 | hp) & mask)
        vn = hp & d0
    return distance


def _levenshtein_bitparallel(pattern: str, text: str) -> int:
    """Exact edit distance via the bit-parallel core (pattern <= 64 chars)."""
    return bitparallel_levenshtein(character_positions(pattern), len(pattern),
                                   text)


def levenshtein_distance(a: str, b: str, upper_bound: int | None = None) -> int:
    """Edit distance between ``a`` and ``b`` (insert / delete / substitute).

    Parameters
    ----------
    a / b:
        The strings to compare.
    upper_bound:
        Optional early-exit threshold (the caller's current best distance).
        When given, the function may stop as soon as it can prove the true
        distance is ``>= upper_bound`` and return any value ``>= upper_bound``
        (the length-difference lower bound, or ``upper_bound`` itself when a
        DP row's minimum reaches it).  With ``upper_bound=None`` the exact
        distance is always returned.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    length_gap = len(a) - len(b)
    if upper_bound is not None and length_gap >= upper_bound:
        # The distance is at least the length difference; no DP needed to
        # know it cannot beat the caller's current best.
        return length_gap
    if len(b) <= 64:
        # The shorter string fits one bit-parallel word; exact and much
        # faster than the row DP.
        return _levenshtein_bitparallel(b, a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        if upper_bound is not None and min(current) >= upper_bound:
            # Row minima never decrease, so the final distance is >= the
            # bound already; abandon the remaining rows.
            return upper_bound
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalized into a similarity in ``[0, 1]``."""
    a, b = normalize(a), normalize(b)
    if not a and not b:
        return 1.0
    if not a or not b:
        # distance == max length exactly, so the similarity is 0; skip the DP.
        return 0.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity between ``a`` and ``b``."""
    a, b = normalize(a), normalize(b)
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)
    a_matches = [False] * len(a)
    b_matches = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(b))
        for j in range(start, end):
            if b_matches[j] or b[j] != char_a:
                continue
            a_matches[i] = True
            b_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matches):
        if not matched:
            continue
        while not b_matches[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (matches / len(a) + matches / len(b) + (matches - transpositions) / matches) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by the length of the common prefix."""
    jaro = jaro_similarity(a, b)
    a, b = normalize(a), normalize(b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def jaccard_similarity(a: str, b: str) -> float:
    """Jaccard similarity over word tokens."""
    set_a, set_b = token_set(a), token_set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def qgram_jaccard_similarity(a: str, b: str, q: int = 3) -> float:
    """Jaccard similarity over character q-grams."""
    set_a, set_b = qgram_set(a, q=q), qgram_set(b, q=q)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def overlap_coefficient(a: str, b: str) -> float:
    """Token overlap coefficient: ``|A ∩ B| / min(|A|, |B|)``."""
    set_a, set_b = token_set(a), token_set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def dice_coefficient(a: str, b: str) -> float:
    """Sørensen-Dice coefficient over word tokens."""
    set_a, set_b = token_set(a), token_set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))


def cosine_token_similarity(a: str, b: str) -> float:
    """Cosine similarity between token count vectors."""
    counts_a, counts_b = token_counts(a), token_counts(b)
    if not counts_a and not counts_b:
        return 1.0
    if not counts_a or not counts_b:
        return 0.0
    shared = set(counts_a) & set(counts_b)
    dot = sum(counts_a[token] * counts_b[token] for token in shared)
    norm_a = math.sqrt(sum(value * value for value in counts_a.values()))
    norm_b = math.sqrt(sum(value * value for value in counts_b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


def monge_elkan_similarity(a: str, b: str) -> float:
    """Monge-Elkan similarity: average best Jaro-Winkler match per token of ``a``."""
    tokens_a, tokens_b = tokenize(a), tokenize(b)
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(jaro_winkler_similarity(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)


def exact_match(a: str, b: str) -> float:
    """1.0 when the normalized strings are identical, else 0.0."""
    return 1.0 if normalize(a) == normalize(b) else 0.0


def numeric_similarity(a: str, b: str) -> float:
    """Similarity between numeric strings: ``1 - |x - y| / max(|x|, |y|)``.

    Non-numeric input falls back to :func:`levenshtein_similarity`; both
    missing yields 1.0, one missing yields 0.0.
    """
    a, b = a.strip(), b.strip()
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    try:
        x, y = float(a.replace(",", "")), float(b.replace(",", ""))
    except ValueError:
        return levenshtein_similarity(a, b)
    if x == y:
        return 1.0
    denominator = max(abs(x), abs(y))
    if denominator == 0:
        return 1.0
    return max(0.0, 1.0 - abs(x - y) / denominator)


#: Name → callable registry used by feature extractors and ZeroER.
SIMILARITY_FUNCTIONS = {
    "levenshtein": levenshtein_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "jaccard": jaccard_similarity,
    "qgram_jaccard": qgram_jaccard_similarity,
    "overlap": overlap_coefficient,
    "dice": dice_coefficient,
    "cosine": cosine_token_similarity,
    "monge_elkan": monge_elkan_similarity,
    "exact": exact_match,
    "numeric": numeric_similarity,
}
