"""Tokenization utilities shared by blocking, featurization, and similarity.

All functions are pure and operate on plain strings; there is no global state.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")
_WHITESPACE_PATTERN = re.compile(r"\s+")


def normalize(text: str) -> str:
    """Lowercase ``text`` and collapse whitespace runs to single spaces."""
    return _WHITESPACE_PATTERN.sub(" ", text.strip().lower())


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric tokens."""
    return _TOKEN_PATTERN.findall(text.lower())


def token_set(text: str) -> set[str]:
    """The set of distinct tokens of ``text``."""
    return set(tokenize(text))


def token_counts(text: str) -> Counter:
    """Token multiset of ``text`` as a :class:`collections.Counter`."""
    return Counter(tokenize(text))


def qgrams(text: str, q: int = 3, pad: bool = True) -> list[str]:
    """Character q-grams of ``text``.

    Parameters
    ----------
    text:
        Input string; normalized (lowercased, whitespace collapsed) first.
    q:
        Gram length; must be positive.
    pad:
        Pad the string with ``q - 1`` ``#`` characters on both ends so that
        prefixes/suffixes generate grams, which is the standard construction
        for q-gram blocking.
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    normalized = normalize(text)
    if not normalized:
        return []
    if pad and q > 1:
        padding = "#" * (q - 1)
        normalized = f"{padding}{normalized}{padding}"
    if len(normalized) < q:
        return [normalized]
    return [normalized[i:i + q] for i in range(len(normalized) - q + 1)]


def qgram_set(text: str, q: int = 3, pad: bool = True) -> set[str]:
    """The set of distinct character q-grams of ``text``."""
    return set(qgrams(text, q=q, pad=pad))


def token_sets(texts: Iterable[str]) -> list[set[str]]:
    """Token sets of many texts, extracting each *distinct* text once.

    Blocking-scale tables repeat values heavily (catalogs share brands,
    models, and templated titles), so memoizing on the exact text string
    turns the bulk extraction cost into one regex pass per distinct value.
    The returned sets are shared between duplicate texts; callers must not
    mutate them.
    """
    cache: dict[str, set[str]] = {}
    result = []
    for text in texts:
        features = cache.get(text)
        if features is None:
            features = token_set(text)
            cache[text] = features
        result.append(features)
    return result


def qgram_sets(texts: Iterable[str], q: int = 3, pad: bool = True) -> list[set[str]]:
    """Q-gram sets of many texts, extracting each *distinct* text once.

    The bulk counterpart of :func:`qgram_set`; see :func:`token_sets` for the
    memoization contract (shared sets, do not mutate).
    """
    cache: dict[str, set[str]] = {}
    result = []
    for text in texts:
        features = cache.get(text)
        if features is None:
            features = qgram_set(text, q=q, pad=pad)
            cache[text] = features
        result.append(features)
    return result


def word_ngrams(text: str, n: int = 2) -> list[str]:
    """Word n-grams (joined with underscores) of ``text``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    tokens = tokenize(text)
    if len(tokens) < n:
        return ["_".join(tokens)] if tokens else []
    return ["_".join(tokens[i:i + n]) for i in range(len(tokens) - n + 1)]


def vocabulary(texts: Iterable[str], min_count: int = 1) -> dict[str, int]:
    """Token → index mapping over ``texts``, keeping tokens seen >= ``min_count`` times."""
    counts: Counter = Counter()
    for text in texts:
        counts.update(tokenize(text))
    kept = sorted(token for token, count in counts.items() if count >= min_count)
    return {token: index for index, token in enumerate(kept)}
