"""Global configuration knobs for the reproduction.

The paper's experiments run six benchmarks with thousands of candidate pairs on
a 2-GPU server.  This reproduction replaces the GPU matcher with a NumPy one,
so full-scale runs are possible but slow on a laptop.  The ``REPRO_SCALE``
environment variable selects how large the synthetic benchmarks and experiment
sweeps are:

``small``  (default)
    Reduced dataset sizes and fewer active-learning iterations.  The whole
    benchmark harness finishes in minutes; used by CI and ``pytest``.
``medium``
    Roughly a quarter of the paper's sizes.
``paper``
    Full Table 3 sizes and the paper's iteration counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro._suggest import unknown_name_message
from repro.exceptions import ConfigurationError

_SCALE_ENV_VAR = "REPRO_SCALE"

#: Multiplicative factor applied to dataset sizes for each scale name.
_SCALE_FACTORS = {
    "tiny": 0.04,
    "small": 0.12,
    "medium": 0.30,
    "paper": 1.00,
}

#: Number of active-learning iterations run for each scale name.  The paper
#: uses 8 iterations with a budget of 100 labels per iteration.
_SCALE_ITERATIONS = {
    "tiny": 3,
    "small": 4,
    "medium": 6,
    "paper": 8,
}

#: Labeling budget per iteration for each scale name.
_SCALE_BUDGETS = {
    "tiny": 20,
    "small": 40,
    "medium": 60,
    "paper": 100,
}


@dataclass(frozen=True)
class ScaleProfile:
    """Resolved experiment scale.

    Attributes
    ----------
    name:
        One of ``tiny``, ``small``, ``medium``, ``paper``.
    size_factor:
        Fraction of the paper's dataset sizes to generate.
    iterations:
        Number of active-learning iterations per experiment.
    budget_per_iteration:
        Labels requested from the oracle in each iteration.
    """

    name: str
    size_factor: float
    iterations: int
    budget_per_iteration: int

    @property
    def seed_size(self) -> int:
        """Size of the labeled initialization seed (half matches, half not)."""
        return self.budget_per_iteration


def available_scales() -> tuple[str, ...]:
    """Return the names of the supported scale profiles."""
    return tuple(_SCALE_FACTORS)


def get_scale(name: str | None = None) -> ScaleProfile:
    """Resolve a :class:`ScaleProfile`.

    Parameters
    ----------
    name:
        Explicit scale name.  When ``None`` the ``REPRO_SCALE`` environment
        variable is consulted, defaulting to ``small``.
    """
    if name is None:
        name = os.environ.get(_SCALE_ENV_VAR, "small")
    name = name.strip().lower()
    if name not in _SCALE_FACTORS:
        raise ConfigurationError(
            unknown_name_message("scale", name, _SCALE_FACTORS))
    return ScaleProfile(
        name=name,
        size_factor=_SCALE_FACTORS[name],
        iterations=_SCALE_ITERATIONS[name],
        budget_per_iteration=_SCALE_BUDGETS[name],
    )


def scaled_size(paper_size: int, scale: ScaleProfile, minimum: int = 200) -> int:
    """Scale a paper-reported dataset size down to the active profile.

    The result never drops below ``minimum`` so that tiny profiles still have
    enough pairs for clustering and graph construction to be meaningful.
    """
    if paper_size <= 0:
        raise ConfigurationError(f"paper_size must be positive, got {paper_size}")
    return max(minimum, int(round(paper_size * scale.size_factor)))
