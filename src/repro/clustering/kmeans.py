"""K-Means clustering with k-means++ initialization (pure NumPy)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.exceptions import ConvergenceError


@dataclass
class KMeansResult:
    """Outcome of a K-Means run.

    Attributes
    ----------
    labels:
        Cluster index of each point.
    centroids:
        Cluster centroids, shape ``(k, dim)``.
    inertia:
        Sum of squared distances of points to their assigned centroid.
    num_iterations:
        Iterations executed before convergence (or the iteration cap).
    converged:
        Whether assignments stopped changing before the iteration cap.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    num_iterations: int
    converged: bool

    @property
    def num_clusters(self) -> int:
        return len(self.centroids)

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.num_clusters)


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every point and every centroid."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2
    point_norms = np.sum(points * points, axis=1, keepdims=True)
    centroid_norms = np.sum(centroids * centroids, axis=1)
    distances = point_norms - 2.0 * points @ centroids.T + centroid_norms
    np.maximum(distances, 0.0, out=distances)
    return distances


def kmeans_plus_plus_init(points: np.ndarray, num_clusters: int,
                          rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to distance."""
    n = len(points)
    centroids = np.empty((num_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n))
    centroids[0] = points[first]
    closest = _squared_distances(points, centroids[:1]).reshape(-1)
    for index in range(1, num_clusters):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with an existing centroid.
            choice = int(rng.integers(0, n))
        else:
            probabilities = closest / total
            choice = int(rng.choice(n, p=probabilities))
        centroids[index] = points[choice]
        distances = _squared_distances(points, centroids[index:index + 1]).reshape(-1)
        np.minimum(closest, distances, out=closest)
    return centroids


class KMeans:
    """Lloyd's algorithm with k-means++ initialization.

    Parameters
    ----------
    num_clusters:
        Number of clusters ``k``.
    max_iterations:
        Iteration cap for Lloyd's loop.
    tolerance:
        Relative centroid-movement threshold for convergence.
    num_init:
        Number of independent restarts; the run with the lowest inertia wins.
    """

    def __init__(self, num_clusters: int, max_iterations: int = 100,
                 tolerance: float = 1e-4, num_init: int = 3,
                 random_state: RandomState = None) -> None:
        if num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if num_init <= 0:
            raise ValueError("num_init must be positive")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.num_init = num_init
        self.random_state = random_state

    def _single_run(self, points: np.ndarray, rng: np.random.Generator) -> KMeansResult:
        centroids = kmeans_plus_plus_init(points, self.num_clusters, rng)
        labels = np.zeros(len(points), dtype=np.int64)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            distances = _squared_distances(points, centroids)
            new_labels = np.argmin(distances, axis=1)
            new_centroids = centroids.copy()
            for cluster in range(self.num_clusters):
                members = points[new_labels == cluster]
                if len(members) > 0:
                    new_centroids[cluster] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centroids - centroids))
            scale = float(np.linalg.norm(centroids)) or 1.0
            centroids = new_centroids
            if np.array_equal(new_labels, labels) or shift / scale < self.tolerance:
                labels = new_labels
                converged = True
                break
            labels = new_labels

        distances = _squared_distances(points, centroids)
        inertia = float(distances[np.arange(len(points)), labels].sum())
        return KMeansResult(labels=labels, centroids=centroids, inertia=inertia,
                            num_iterations=iteration, converged=converged)

    def fit(self, points: np.ndarray) -> KMeansResult:
        """Cluster ``points`` and return the best of ``num_init`` restarts."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be a 2-dimensional array")
        if len(points) < self.num_clusters:
            raise ConvergenceError(
                f"Cannot form {self.num_clusters} clusters from {len(points)} points"
            )
        rng = ensure_rng(self.random_state)
        best: KMeansResult | None = None
        for _ in range(self.num_init):
            result = self._single_run(points, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best


def average_cluster_sse(points: np.ndarray, result: KMeansResult) -> float:
    """Average over clusters of the mean squared member-to-centroid distance."""
    points = np.asarray(points, dtype=np.float64)
    values = []
    for cluster in range(result.num_clusters):
        members = points[result.labels == cluster]
        if len(members) == 0:
            continue
        centroid = result.centroids[cluster]
        values.append(float(np.mean(np.sum((members - centroid) ** 2, axis=1))))
    return float(np.mean(values)) if values else 0.0
