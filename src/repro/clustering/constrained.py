"""Constrained K-Means: cluster sizes bounded between a minimum and a maximum.

The paper (Section 3.3.1) uses the constrained K-Means of Bradley, Bennett &
Demiriz to avoid clusters too small to be represented under the budget
distribution or too large to compare affordably; cluster sizes are constrained
to 5%–15% of the point count (Section 4.2).

The original formulation solves a minimum-cost flow problem for the assignment
step.  This implementation uses a greedy capacity-constrained assignment that
preserves the two guarantees the battleship algorithm relies on — no cluster
exceeds ``max_size`` and no cluster falls below ``min_size`` — while remaining
dependency-free and fast:

1. points are assigned in order of assignment confidence (margin between the
   best and second-best centroid) to their nearest centroid with remaining
   capacity;
2. clusters still below ``min_size`` afterwards steal the closest points from
   clusters that can spare them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.clustering.kmeans import KMeansResult, _squared_distances, kmeans_plus_plus_init
from repro.exceptions import ConfigurationError, ConvergenceError


@dataclass(frozen=True)
class SizeConstraints:
    """Bounds on the size of every cluster."""

    min_size: int
    max_size: int

    def __post_init__(self) -> None:
        if self.min_size < 0:
            raise ConfigurationError("min_size must be >= 0")
        if self.max_size < max(self.min_size, 1):
            raise ConfigurationError("max_size must be >= max(min_size, 1)")

    def feasible(self, num_points: int, num_clusters: int) -> bool:
        """Whether ``num_points`` can be split into ``num_clusters`` clusters."""
        return (num_clusters * self.min_size <= num_points
                <= num_clusters * self.max_size)

    @classmethod
    def from_fractions(cls, num_points: int, min_fraction: float = 0.05,
                       max_fraction: float = 0.15) -> "SizeConstraints":
        """Bounds as fractions of the point count (the paper uses 0.05–0.15)."""
        if not 0.0 <= min_fraction <= max_fraction <= 1.0:
            raise ConfigurationError("Require 0 <= min_fraction <= max_fraction <= 1")
        min_size = int(np.floor(num_points * min_fraction))
        max_size = max(int(np.ceil(num_points * max_fraction)), 1)
        return cls(min_size=min_size, max_size=max_size)


class ConstrainedKMeans:
    """K-Means with per-cluster size bounds."""

    def __init__(self, num_clusters: int, constraints: SizeConstraints,
                 max_iterations: int = 50, random_state: RandomState = None) -> None:
        if num_clusters <= 0:
            raise ConfigurationError("num_clusters must be positive")
        self.num_clusters = num_clusters
        self.constraints = constraints
        self.max_iterations = max_iterations
        self.random_state = random_state

    # ------------------------------------------------------------------ #
    # Assignment steps
    # ------------------------------------------------------------------ #
    def _capacity_assign(self, distances: np.ndarray) -> np.ndarray:
        """Greedy assignment respecting ``max_size`` capacities."""
        n, k = distances.shape
        max_size = self.constraints.max_size
        order_scores = np.sort(distances, axis=1)
        # Margin between best and second-best centroid: confident points first.
        margins = (order_scores[:, 1] - order_scores[:, 0]) if k > 1 else order_scores[:, 0]
        order = np.argsort(-margins)
        labels = np.full(n, -1, dtype=np.int64)
        capacities = np.full(k, max_size, dtype=np.int64)
        for point in order:
            preference = np.argsort(distances[point])
            for cluster in preference:
                if capacities[cluster] > 0:
                    labels[point] = cluster
                    capacities[cluster] -= 1
                    break
            if labels[point] < 0:
                # All capacities exhausted; put the point in its nearest
                # cluster anyway (only possible when constraints are
                # infeasible, which fit() guards against).
                labels[point] = int(preference[0])
        return labels

    def _enforce_min_sizes(self, points: np.ndarray, labels: np.ndarray,
                           centroids: np.ndarray) -> np.ndarray:
        """Move nearest spare points into clusters below ``min_size``."""
        min_size = self.constraints.min_size
        if min_size <= 0:
            return labels
        labels = labels.copy()
        for cluster in range(self.num_clusters):
            deficit = min_size - int(np.sum(labels == cluster))
            while deficit > 0:
                distances = _squared_distances(points, centroids[cluster:cluster + 1]).reshape(-1)
                candidate_order = np.argsort(distances)
                moved = False
                for candidate in candidate_order:
                    source = labels[candidate]
                    if source == cluster:
                        continue
                    if np.sum(labels == source) - 1 >= min_size:
                        labels[candidate] = cluster
                        deficit -= 1
                        moved = True
                        break
                if not moved:
                    # No donor cluster can spare a point; constraints are tight.
                    break
        return labels

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> KMeansResult:
        """Cluster ``points`` subject to the size constraints."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be 2-dimensional")
        n = len(points)
        if n < self.num_clusters:
            raise ConvergenceError(
                f"Cannot form {self.num_clusters} clusters from {n} points"
            )
        if not self.constraints.feasible(n, self.num_clusters):
            raise ConfigurationError(
                f"Size constraints [{self.constraints.min_size}, "
                f"{self.constraints.max_size}] are infeasible for {n} points and "
                f"{self.num_clusters} clusters"
            )

        rng = ensure_rng(self.random_state)
        centroids = kmeans_plus_plus_init(points, self.num_clusters, rng)
        labels = np.zeros(n, dtype=np.int64)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            distances = _squared_distances(points, centroids)
            new_labels = self._capacity_assign(distances)
            new_labels = self._enforce_min_sizes(points, new_labels, centroids)
            for cluster in range(self.num_clusters):
                members = points[new_labels == cluster]
                if len(members) > 0:
                    centroids[cluster] = members.mean(axis=0)
            if np.array_equal(new_labels, labels):
                labels = new_labels
                converged = True
                break
            labels = new_labels

        distances = _squared_distances(points, centroids)
        inertia = float(distances[np.arange(n), labels].sum())
        return KMeansResult(labels=labels, centroids=centroids, inertia=inertia,
                            num_iterations=iteration, converged=converged)
