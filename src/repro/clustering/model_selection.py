"""Choosing the number of clusters as described in Section 3.3.1.

Candidate values of ``k`` are those for which the cluster-size constraints
(5%–15% of the point count by default) are feasible.  For each candidate a
plain K-Means run records the average within-cluster sum of squared distances;
the Kneedle algorithm picks the elbow of that curve, and if it fails, the
candidate with the highest silhouette score wins.  The final clustering is
produced by :class:`~repro.clustering.constrained.ConstrainedKMeans` with the
selected ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.clustering.constrained import ConstrainedKMeans, SizeConstraints
from repro.clustering.kmeans import KMeans, KMeansResult, average_cluster_sse
from repro.clustering.kneedle import find_knee_index
from repro.clustering.silhouette import silhouette_score
from repro.exceptions import ConfigurationError

#: Upper bound on the number of candidate k values evaluated during selection.
_MAX_CANDIDATES = 8
#: Silhouette computation is O(n^2); subsample beyond this many points.
_SILHOUETTE_SAMPLE_LIMIT = 1500


@dataclass
class ClusterSelection:
    """Outcome of the cluster-count selection procedure."""

    num_clusters: int
    method: str
    candidates: list[int] = field(default_factory=list)
    sse_curve: list[float] = field(default_factory=list)
    silhouette_curve: list[float] = field(default_factory=list)


def candidate_cluster_counts(num_points: int, min_fraction: float = 0.05,
                             max_fraction: float = 0.15,
                             max_candidates: int = _MAX_CANDIDATES) -> list[int]:
    """Feasible ``k`` values under the fractional size constraints."""
    if num_points < 2:
        return [1]
    if not 0.0 < min_fraction <= max_fraction <= 1.0:
        raise ConfigurationError("Require 0 < min_fraction <= max_fraction <= 1")
    lowest = max(2, int(np.ceil(1.0 / max_fraction)))
    highest = max(lowest, int(np.floor(1.0 / min_fraction)))
    highest = min(highest, num_points)
    lowest = min(lowest, highest)
    candidates = list(range(lowest, highest + 1))
    if len(candidates) > max_candidates:
        positions = np.linspace(0, len(candidates) - 1, max_candidates)
        candidates = sorted({candidates[int(round(p))] for p in positions})
    return candidates


def select_num_clusters(points: np.ndarray, min_fraction: float = 0.05,
                        max_fraction: float = 0.15,
                        random_state: RandomState = None) -> ClusterSelection:
    """Select ``k`` with Kneedle over the SSE curve, silhouette as fallback."""
    points = np.ascontiguousarray(points, dtype=np.float64)
    rng = ensure_rng(random_state)
    candidates = candidate_cluster_counts(len(points), min_fraction, max_fraction)
    if len(candidates) == 1:
        return ClusterSelection(num_clusters=candidates[0], method="single_candidate",
                                candidates=candidates)

    sweep_rng, silhouette_rng = spawn_rng(rng, 2)
    sse_curve: list[float] = []
    silhouette_curve: list[float] = []
    labelings: list[np.ndarray] = []

    if len(points) > _SILHOUETTE_SAMPLE_LIMIT:
        sample = silhouette_rng.choice(len(points), _SILHOUETTE_SAMPLE_LIMIT, replace=False)
    else:
        sample = np.arange(len(points))

    for k in candidates:
        result = KMeans(num_clusters=k, num_init=1, random_state=sweep_rng).fit(points)
        labelings.append(result.labels)
        sse_curve.append(average_cluster_sse(points, result))
        sample_labels = result.labels[sample]
        if len(np.unique(sample_labels)) >= 2:
            silhouette_curve.append(silhouette_score(points[sample], sample_labels))
        else:
            silhouette_curve.append(-1.0)

    knee_index = find_knee_index(np.asarray(candidates, dtype=float),
                                 np.asarray(sse_curve), decreasing=True)
    if knee_index is not None:
        return ClusterSelection(num_clusters=candidates[knee_index], method="kneedle",
                                candidates=candidates, sse_curve=sse_curve,
                                silhouette_curve=silhouette_curve)

    best = int(np.argmax(silhouette_curve))
    return ClusterSelection(num_clusters=candidates[best], method="silhouette",
                            candidates=candidates, sse_curve=sse_curve,
                            silhouette_curve=silhouette_curve)


def cluster_representations(points: np.ndarray, min_fraction: float = 0.05,
                            max_fraction: float = 0.15,
                            random_state: RandomState = None,
                            num_clusters: int | None = None,
                            ) -> tuple[KMeansResult, ClusterSelection]:
    """Select ``k`` and run constrained K-Means, as the battleship pipeline does.

    ``points`` is converted to one contiguous float64 block here and passed
    through unchanged to the sweep and the final fit, so callers handing over
    a representation matrix (e.g. the battleship selector, which reuses the
    same block for the vectorized graph builder) pay for at most one copy.
    ``num_clusters`` skips the Kneedle/silhouette sweep and clusters with the
    given ``k`` directly.  Falls back to plain K-Means when the size
    constraints are infeasible for the selected ``k`` (possible for very small
    pools in the last iterations).
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    rng = ensure_rng(random_state)
    selection_rng, final_rng = spawn_rng(rng, 2)

    if num_clusters is not None:
        if num_clusters < 1:
            raise ConfigurationError("num_clusters must be >= 1")
        if num_clusters > max(len(points), 1):
            raise ConfigurationError(
                f"num_clusters={num_clusters} exceeds the {len(points)} points")

    if len(points) < 4:
        if num_clusters is not None and num_clusters > 1:
            # Tiny pools can still honor an explicit k.
            model = KMeans(num_clusters, random_state=final_rng)
            return model.fit(points), ClusterSelection(
                num_clusters=num_clusters, method="fixed",
                candidates=[num_clusters])
        # Degenerate pools: a single cluster containing everything.
        labels = np.zeros(len(points), dtype=np.int64)
        centroid = points.mean(axis=0, keepdims=True) if len(points) else np.zeros((1, 1))
        result = KMeansResult(labels=labels, centroids=centroid, inertia=0.0,
                              num_iterations=0, converged=True)
        return result, ClusterSelection(num_clusters=1, method="degenerate")

    if num_clusters is not None:
        selection = ClusterSelection(num_clusters=num_clusters, method="fixed",
                                     candidates=[num_clusters])
    else:
        selection = select_num_clusters(points, min_fraction, max_fraction,
                                        selection_rng)
    constraints = SizeConstraints.from_fractions(len(points), min_fraction, max_fraction)
    if constraints.feasible(len(points), selection.num_clusters):
        model = ConstrainedKMeans(selection.num_clusters, constraints,
                                  random_state=final_rng)
    else:
        model = KMeans(selection.num_clusters, random_state=final_rng)
    return model.fit(points), selection
