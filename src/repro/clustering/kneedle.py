"""The Kneedle knee/elbow detection algorithm (Satopää et al., 2011).

The paper selects the number of clusters ``k`` by running K-Means for a range
of candidate values, recording the average within-cluster sum of squared
distances, and handing the resulting curve to Kneedle (Section 3.3.1).  When
Kneedle fails to find a knee, the silhouette score breaks the tie.
"""

from __future__ import annotations

import numpy as np


def _normalize(values: np.ndarray) -> np.ndarray:
    """Min-max normalize ``values`` to [0, 1] (constant input maps to zeros)."""
    values = np.asarray(values, dtype=np.float64)
    low, high = float(values.min()), float(values.max())
    if high - low == 0:
        return np.zeros_like(values)
    return (values - low) / (high - low)


def find_knee(
    x: np.ndarray,
    y: np.ndarray,
    sensitivity: float = 1.0,
    decreasing: bool = True,
) -> float | None:
    """Return the x-coordinate of the knee of the curve ``y = f(x)``.

    Parameters
    ----------
    x, y:
        Curve samples; ``x`` must be strictly increasing.
    sensitivity:
        Kneedle's ``S`` parameter; larger values require a more pronounced knee.
    decreasing:
        ``True`` for elbow detection on decreasing curves (the SSE-vs-k curve),
        ``False`` for knees of increasing curves.

    Returns
    -------
    The x value of the detected knee, or ``None`` when no knee exists.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if len(x) < 3:
        return None
    if np.any(np.diff(x) <= 0):
        raise ValueError("x must be strictly increasing")
    if sensitivity < 0:
        raise ValueError("sensitivity must be >= 0")

    x_norm = _normalize(x)
    y_norm = _normalize(y)
    if decreasing:
        # Transform a decreasing "elbow" curve into an increasing "knee" curve.
        y_norm = 1.0 - y_norm

    # Difference curve: distance of the normalized curve above the diagonal.
    difference = y_norm - x_norm
    maxima = [
        i for i in range(1, len(difference) - 1)
        if difference[i] >= difference[i - 1] and difference[i] >= difference[i + 1]
    ]
    if not maxima:
        return None

    # Kneedle threshold for each local maximum.
    mean_spacing = float(np.mean(np.diff(x_norm)))
    best_knee: float | None = None
    for position, index in enumerate(maxima):
        threshold = difference[index] - sensitivity * mean_spacing
        # The candidate is a knee if the difference curve drops below the
        # threshold before the next local maximum.
        end = maxima[position + 1] if position + 1 < len(maxima) else len(difference)
        for j in range(index + 1, end):
            if difference[j] < threshold:
                best_knee = float(x[index])
                break
        if best_knee is not None:
            break
    return best_knee


def find_knee_index(x: np.ndarray, y: np.ndarray, sensitivity: float = 1.0,
                    decreasing: bool = True) -> int | None:
    """Like :func:`find_knee` but returning the index into ``x`` instead of the value."""
    knee = find_knee(x, y, sensitivity=sensitivity, decreasing=decreasing)
    if knee is None:
        return None
    x = np.asarray(x, dtype=np.float64)
    return int(np.argmin(np.abs(x - knee)))
