"""Clustering substrate: K-Means, constrained K-Means, Kneedle, silhouette."""

from repro.clustering.constrained import ConstrainedKMeans, SizeConstraints
from repro.clustering.kmeans import KMeans, KMeansResult, average_cluster_sse, kmeans_plus_plus_init
from repro.clustering.kneedle import find_knee, find_knee_index
from repro.clustering.model_selection import (
    ClusterSelection,
    candidate_cluster_counts,
    cluster_representations,
    select_num_clusters,
)
from repro.clustering.silhouette import silhouette_samples, silhouette_score

__all__ = [
    "ClusterSelection",
    "ConstrainedKMeans",
    "KMeans",
    "KMeansResult",
    "SizeConstraints",
    "average_cluster_sse",
    "candidate_cluster_counts",
    "cluster_representations",
    "find_knee",
    "find_knee_index",
    "kmeans_plus_plus_init",
    "select_num_clusters",
    "silhouette_samples",
    "silhouette_score",
]
