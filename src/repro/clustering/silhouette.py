"""Silhouette score (Rousseeuw) for clustering quality.

Used as the fallback criterion for choosing ``k`` when the Kneedle algorithm
does not find a knee (Section 3.3.1 of the paper).
"""

from __future__ import annotations

import numpy as np


def _pairwise_euclidean(points: np.ndarray) -> np.ndarray:
    """Full pairwise Euclidean distance matrix."""
    norms = np.sum(points * points, axis=1)
    squared = norms[:, None] - 2.0 * points @ points.T + norms[None, :]
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared)


def silhouette_samples(points: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-point silhouette coefficients.

    For point ``i`` with intra-cluster mean distance ``a`` and smallest
    mean distance to another cluster ``b``, the coefficient is
    ``(b - a) / max(a, b)``.  Points in singleton clusters receive 0.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if len(points) != len(labels):
        raise ValueError("points and labels must have the same length")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("Silhouette requires at least two clusters")

    distances = _pairwise_euclidean(points)
    n = len(points)
    scores = np.zeros(n)
    cluster_masks = {cluster: labels == cluster for cluster in unique}
    for i in range(n):
        own = cluster_masks[labels[i]].copy()
        own[i] = False
        own_size = int(np.sum(own))
        if own_size == 0:
            scores[i] = 0.0
            continue
        a = float(np.mean(distances[i, own]))
        b = np.inf
        for cluster in unique:
            if cluster == labels[i]:
                continue
            other = cluster_masks[cluster]
            b = min(b, float(np.mean(distances[i, other])))
        denominator = max(a, b)
        scores[i] = 0.0 if denominator == 0 else (b - a) / denominator
    return scores


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points."""
    return float(np.mean(silhouette_samples(points, labels)))
