"""The battleship selector — the paper's primary contribution (Section 3).

Every iteration the selector:

1. splits the universe by the current matcher's predictions and builds three
   pair graphs over the pair representations (Section 3.3.3): ``G+`` over the
   pool pairs predicted *match*, ``G-`` over the pool pairs predicted
   *non-match*, and the heterogeneous graph ``G`` over everything (labeled and
   unlabeled);
2. clusters each node set with constrained K-Means before edge creation
   (Section 3.3.1) and connects ``q`` nearest neighbours per node plus the top
   share of remaining intra-cluster pairs (Section 3.3.2);
3. computes certainty scores on ``G`` (spatial entropy, Eqs. 3–4) and PageRank
   centrality on the connected components of ``G+`` / ``G-`` (Eq. 5);
4. splits the budget into ``B+`` / ``B-`` with the decaying positive schedule
   and distributes each over the connected components proportionally to their
   size (Eq. 2, Section 3.4);
5. inside each component, ranks nodes by the weighted combination of the
   certainty and centrality rankings (Eq. 6) and selects the component's
   budget worth of pairs;
6. optionally proposes weak labels: the *most spatially confident* pool pairs
   (minimizing Eq. 4), again distributed over the components (Section 3.7).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro._rng import ensure_rng, spawn_rng
from repro.active.budget import cap_budgets_by_size, distribute_budget, split_budget
from repro.active.selectors.base import SelectionContext, Selector
from repro.clustering.model_selection import cluster_representations
from repro.graphs.sparse import (
    SparseAdjacency,
    build_sparse_adjacency,
    certainty_scores_batch,
    pagerank_components,
)


@dataclass(frozen=True)
class BattleshipConfig:
    """Hyper-parameters of the battleship selector.

    Attributes
    ----------
    alpha:
        Weight of the certainty ranking against the centrality ranking in
        Eq. 6 (``alpha = 1`` is certainty only, ``0`` is centrality only).
    beta:
        Weight of the local (model) entropy against the spatial entropy in
        Eq. 4 (``beta = 1`` is model confidence only, ``0`` spatial only).
    num_neighbors:
        ``q``: nearest neighbours connected per node (the paper uses 15).
    extra_edge_ratio:
        Share of remaining intra-cluster pairs added as extra edges (3%).
    min_cluster_fraction / max_cluster_fraction:
        Cluster-size bounds relative to the node-set size (5%–15%).
    pagerank_damping:
        ``ρ`` of Eq. 5.
    positive_initial_share / positive_decay / positive_floor:
        Parameters of the positive-budget schedule ``B+ = B * max(initial -
        decay * i, floor)``.
    use_correspondence:
        When ``False`` the prediction-based graph separation and the B+/B-
        split are disabled (ablation switch; selection then runs on a single
        graph over the whole pool).
    """

    alpha: float = 0.5
    beta: float = 0.5
    num_neighbors: int = 15
    extra_edge_ratio: float = 0.03
    min_cluster_fraction: float = 0.05
    max_cluster_fraction: float = 0.15
    pagerank_damping: float = 0.85
    positive_initial_share: float = 0.8
    positive_decay: float = 0.05
    positive_floor: float = 0.5
    use_correspondence: bool = True
    random_state: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        if self.num_neighbors < 1:
            raise ValueError("num_neighbors must be >= 1")
        if not 0.0 <= self.extra_edge_ratio <= 1.0:
            raise ValueError("extra_edge_ratio must be in [0, 1]")


@dataclass
class _IterationArtifacts:
    """Graphs and scores computed once per iteration and shared by
    :meth:`BattleshipSelector.select` and :meth:`BattleshipSelector.select_weak`.
    Cached per context *object* (see :meth:`BattleshipSelector._prepare`)."""

    heterogeneous_graph: SparseAdjacency
    positive_graph: SparseAdjacency
    negative_graph: SparseAdjacency
    certainty: dict[int, float] = field(default_factory=dict)
    positive_centrality: dict[int, float] = field(default_factory=dict)
    negative_centrality: dict[int, float] = field(default_factory=dict)
    positive_components: list[set[int]] = field(default_factory=list)
    negative_components: list[set[int]] = field(default_factory=list)


class BattleshipSelector(Selector):
    """Space-aware active-learning selection for entity matching."""

    name = "battleship"

    def __init__(self, config: BattleshipConfig | None = None, **overrides: object) -> None:
        if config is None:
            config = BattleshipConfig(**overrides)  # type: ignore[arg-type]
        elif overrides:
            raise ValueError("Pass either a config object or keyword overrides, not both")
        self.config = config
        self._artifacts: _IterationArtifacts | None = None
        self._artifacts_context: weakref.ref[SelectionContext] | None = None

    def reset(self) -> None:
        """Drop cached per-iteration artifacts (called at the start of a run)."""
        self._artifacts = None
        self._artifacts_context = None

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def _build_graph(self, context: SelectionContext, positions: np.ndarray,
                     include_labels: bool, rng: np.random.Generator) -> SparseAdjacency:
        """Cluster the representations at ``positions`` and build their CSR pair graph."""
        if len(positions) == 0:
            return build_sparse_adjacency(
                np.zeros((0, 1)), [], [], [], [], [])
        representations = context.representations[positions]
        predictions = context.predictions[positions].copy()
        probabilities = context.probabilities[positions].copy()
        labeled = context.labeled_mask[positions] if include_labels else np.zeros(
            len(positions), dtype=bool)
        # Labeled nodes adopt their oracle label with full confidence.
        if include_labels:
            labels = context.labels[positions]
            labeled_positions = np.flatnonzero(labeled)
            predictions[labeled_positions] = labels[labeled_positions]
            probabilities[labeled_positions] = labels[labeled_positions].astype(np.float64)
        confidences = np.where(labeled, 1.0, np.maximum(probabilities, 1.0 - probabilities))

        if len(positions) >= 4:
            clustering, _ = cluster_representations(
                representations,
                min_fraction=self.config.min_cluster_fraction,
                max_fraction=self.config.max_cluster_fraction,
                random_state=rng,
            )
            cluster_labels = clustering.labels
        else:
            cluster_labels = np.zeros(len(positions), dtype=np.int64)

        return build_sparse_adjacency(
            representations=representations,
            node_ids=context.universe[positions],
            predictions=predictions,
            confidences=confidences,
            match_probabilities=probabilities,
            labeled_mask=labeled,
            cluster_labels=cluster_labels,
            num_neighbors=self.config.num_neighbors,
            extra_edge_ratio=self.config.extra_edge_ratio,
        )

    def _prepare(self, context: SelectionContext) -> _IterationArtifacts:
        """Compute (or reuse) the per-iteration graphs and scores.

        The cache is keyed on the context *object* (not just its iteration
        number): a selector instance reused across runs or datasets would
        otherwise silently serve the previous run's graphs whenever the
        iteration numbers coincide.
        """
        cached_context = (self._artifacts_context()
                          if self._artifacts_context is not None else None)
        if self._artifacts is not None and cached_context is context:
            return self._artifacts

        rng = ensure_rng(self.config.random_state + context.iteration)
        hetero_rng, plus_rng, minus_rng = spawn_rng(rng, 3)

        pool = context.pool_positions
        predictions = context.predictions
        if self.config.use_correspondence:
            plus_positions = pool[predictions[pool] == 1]
            minus_positions = pool[predictions[pool] == 0]
        else:
            # Ablation: a single prediction-agnostic pool graph (assigned to the
            # "positive" slot; the negative slot stays empty).
            plus_positions = pool
            minus_positions = np.asarray([], dtype=np.int64)

        all_positions = np.arange(len(context.universe))
        heterogeneous = self._build_graph(context, all_positions, include_labels=True,
                                          rng=hetero_rng)
        positive_graph = self._build_graph(context, plus_positions, include_labels=False,
                                           rng=plus_rng)
        negative_graph = self._build_graph(context, minus_positions, include_labels=False,
                                           rng=minus_rng)

        artifacts = _IterationArtifacts(
            heterogeneous_graph=heterogeneous,
            positive_graph=positive_graph,
            negative_graph=negative_graph,
        )
        # Certainty (Eq. 4) on the heterogeneous graph: one batched pass over
        # all nodes (rows of the heterogeneous adjacency are context rows),
        # exposed for pool nodes only.
        certainty_values = certainty_scores_batch(heterogeneous, beta=self.config.beta)
        for position in pool:
            artifacts.certainty[int(context.universe[position])] = float(
                certainty_values[position])
        # Centrality (Eq. 5) per connected component of the prediction graphs,
        # by sparse power iteration over each component's edge arrays.
        artifacts.positive_components = positive_graph.components()
        artifacts.negative_components = negative_graph.components()
        artifacts.positive_centrality.update(pagerank_components(
            positive_graph, artifacts.positive_components,
            damping=self.config.pagerank_damping))
        artifacts.negative_centrality.update(pagerank_components(
            negative_graph, artifacts.negative_components,
            damping=self.config.pagerank_damping))
        self._artifacts = artifacts
        self._artifacts_context = weakref.ref(context)
        return artifacts

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ranking(scores: dict[int, float]) -> dict[int, int]:
        """Rank node ids by descending score (rank 1 = highest score)."""
        ordered = sorted(scores, key=lambda node: scores[node], reverse=True)
        return {node: rank for rank, node in enumerate(ordered, start=1)}

    def _select_from_components(
        self,
        components: list[set[int]],
        budgets: dict[int, int],
        certainty: dict[int, float],
        centrality: dict[int, float],
    ) -> list[int]:
        """Pick each component's budget worth of nodes by the weighted rank (Eq. 6)."""
        selected: list[int] = []
        for component_id, component in enumerate(components):
            budget = budgets.get(component_id, 0)
            if budget <= 0:
                continue
            members = [node for node in component if node in certainty]
            if not members:
                continue
            certainty_rank = self._ranking({node: certainty[node] for node in members})
            centrality_rank = self._ranking(
                {node: centrality.get(node, 0.0) for node in members})
            combined = {
                node: (self.config.alpha * certainty_rank[node]
                       + (1.0 - self.config.alpha) * centrality_rank[node])
                for node in members
            }
            ordered = sorted(members, key=lambda node: (combined[node], node))
            selected.extend(ordered[:budget])
        return selected

    def select(self, context: SelectionContext) -> list[int]:
        if context.budget <= 0:
            return []
        pool = context.pool_indices()
        if len(pool) == 0:
            return []
        artifacts = self._prepare(context)

        positive_budget_total, negative_budget_total = split_budget(
            context.budget, context.iteration,
            initial_share=self.config.positive_initial_share,
            decay=self.config.positive_decay,
            floor=self.config.positive_floor,
        )
        if not self.config.use_correspondence:
            positive_budget_total, negative_budget_total = context.budget, 0

        selection_rng = ensure_rng(self.config.random_state + 1000 + context.iteration)
        selected: list[int] = []
        for components, centrality, budget_total in (
            (artifacts.positive_components, artifacts.positive_centrality,
             positive_budget_total),
            (artifacts.negative_components, artifacts.negative_centrality,
             negative_budget_total),
        ):
            if budget_total <= 0 or not components:
                continue
            sizes = {component_id: len(component)
                     for component_id, component in enumerate(components)}
            budgets = distribute_budget(sizes, budget_total, random_state=selection_rng)
            budgets = cap_budgets_by_size(budgets, sizes)
            selected.extend(self._select_from_components(
                components, budgets, artifacts.certainty, centrality))

        # Deduplicate while preserving order and top up from the overall
        # certainty ranking when one side could not absorb its budget.
        unique: list[int] = []
        seen: set[int] = set()
        for node in selected:
            if node not in seen:
                unique.append(node)
                seen.add(node)
        if len(unique) < context.budget:
            fallback = sorted(artifacts.certainty,
                              key=lambda node: -artifacts.certainty[node])
            for node in fallback:
                if node not in seen:
                    unique.append(node)
                    seen.add(node)
                if len(unique) >= context.budget:
                    break
        return unique[:context.budget]

    # ------------------------------------------------------------------ #
    # Weak supervision (Section 3.7)
    # ------------------------------------------------------------------ #
    def select_weak(self, context: SelectionContext, budget: int) -> dict[int, int]:
        if budget <= 0:
            return {}
        artifacts = self._prepare(context)
        already_selected = set()  # weak labels may overlap nothing labeled
        weak_rng = ensure_rng(self.config.random_state + 2000 + context.iteration)

        weak: dict[int, int] = {}
        per_class = budget // 2
        for components, label, class_budget in (
            (artifacts.positive_components, 1, per_class),
            (artifacts.negative_components, 0, budget - per_class),
        ):
            if class_budget <= 0 or not components:
                continue
            sizes = {component_id: len(component)
                     for component_id, component in enumerate(components)}
            budgets = distribute_budget(sizes, class_budget, random_state=weak_rng)
            budgets = cap_budgets_by_size(budgets, sizes)
            for component_id, component in enumerate(components):
                share = budgets.get(component_id, 0)
                if share <= 0:
                    continue
                members = [node for node in component
                           if node in artifacts.certainty and node not in already_selected]
                # Most confident = smallest certainty (entropy) score.
                ordered = sorted(members, key=lambda node: (artifacts.certainty[node], node))
                for node in ordered[:share]:
                    weak[node] = label
                    already_selected.add(node)
        return weak
