"""The DAL baseline (Kasai et al., 2019): uncertainty sampling by entropy.

In every iteration DAL labels the ``B/2`` most uncertain predicted matches and
the ``B/2`` most uncertain predicted non-matches, where uncertainty is the
conditional entropy of the matcher's confidence (Eq. 1).  Its weak-supervision
component (high-confidence augmentation) is the default implementation
inherited from :class:`~repro.active.selectors.base.Selector`.

The adversarial transfer-learning component of the original paper is omitted,
exactly as in Section 4.3 of the battleship paper (no source-domain data is
available in this setting).
"""

from __future__ import annotations

import numpy as np

from repro.active.selectors.base import SelectionContext, Selector
from repro.graphs.entropy import conditional_entropy


class EntropySelector(Selector):
    """Entropy-based uncertainty sampling with a balanced class split (DAL)."""

    name = "dal"

    def __init__(self, positive_share: float = 0.5) -> None:
        if not 0.0 <= positive_share <= 1.0:
            raise ValueError("positive_share must be in [0, 1]")
        self.positive_share = positive_share

    def select(self, context: SelectionContext) -> list[int]:
        pool = context.pool_positions
        if len(pool) == 0 or context.budget <= 0:
            return []
        probabilities = context.probabilities[pool]
        predictions = (probabilities >= 0.5).astype(np.int64)
        entropies = np.asarray(conditional_entropy(probabilities))

        positive_budget = int(round(context.budget * self.positive_share))
        negative_budget = context.budget - positive_budget

        selected: list[int] = []
        for class_value, class_budget in ((1, positive_budget), (0, negative_budget)):
            class_mask = predictions == class_value
            class_positions = pool[class_mask]
            class_entropies = entropies[class_mask]
            # Most uncertain first (largest entropy).
            order = np.argsort(-class_entropies)
            selected.extend(int(context.universe[p])
                            for p in class_positions[order][:class_budget])

        # If one class ran short (e.g. no predicted matches at all), fill the
        # remaining budget with the most uncertain pairs overall.
        if len(selected) < context.budget:
            already = set(selected)
            order = np.argsort(-entropies)
            for position in pool[order]:
                index = int(context.universe[position])
                if index not in already:
                    selected.append(index)
                    already.add(index)
                if len(selected) >= context.budget:
                    break
        return selected[:context.budget]
