"""Sample-selection strategies: battleship plus the active-learning baselines."""

from repro.active.selectors.base import (
    SelectionContext,
    Selector,
    entropy_weak_selection,
    take_top_ranked,
)
from repro.active.selectors.battleship import BattleshipConfig, BattleshipSelector
from repro.active.selectors.committee import CommitteeSelector
from repro.active.selectors.entropy import EntropySelector
from repro.active.selectors.random_selector import RandomSelector

__all__ = [
    "BattleshipConfig",
    "BattleshipSelector",
    "CommitteeSelector",
    "EntropySelector",
    "RandomSelector",
    "SelectionContext",
    "Selector",
    "entropy_weak_selection",
    "take_top_ranked",
]
