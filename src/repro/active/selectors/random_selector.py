"""The Random baseline: uniform sampling from the pool (Section 4.3)."""

from __future__ import annotations

from repro.active.selectors.base import SelectionContext, Selector


class RandomSelector(Selector):
    """Selects ``budget`` pool pairs uniformly at random.

    Ignores both the matcher's predictions and the pair representations; this
    is the naive baseline of the paper.
    """

    name = "random"

    def select(self, context: SelectionContext) -> list[int]:
        pool = context.pool_indices()
        if len(pool) == 0:
            return []
        budget = min(context.budget, len(pool))
        chosen = context.rng.choice(pool, size=budget, replace=False)
        return [int(index) for index in chosen]
