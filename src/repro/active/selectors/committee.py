"""A DIAL-style committee selector (query-by-committee over representations).

DIAL (Jain et al., 2021) co-learns a blocker and a matcher and selects samples
with an *index-by-committee* uncertainty criterion.  In this reproduction the
committee is a set of lightweight logistic-regression heads trained on
bootstrap resamples of the labeled set, using the current matcher's pair
representations as features — the analogue of committee heads sharing a
transformer encoder.  Committee disagreement ``X(u) * (1 - X(u))`` (the
variance form used by Mozafari et al. and adopted in the related-work
discussion of the paper) ranks the pool; selection is class balanced like DAL.
"""

from __future__ import annotations

import numpy as np

from repro._rng import ensure_rng, spawn_rng
from repro.active.selectors.base import SelectionContext, Selector
from repro.neural.activations import sigmoid


class _LogisticHead:
    """A tiny L2-regularized logistic regression trained by gradient descent."""

    def __init__(self, num_features: int, learning_rate: float = 0.1,
                 epochs: int = 60, l2: float = 1e-3,
                 rng: np.random.Generator | None = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.weights = rng.normal(0.0, 0.01, size=num_features)
        self.bias = 0.0
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "_LogisticHead":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        for _ in range(self.epochs):
            logits = features @ self.weights + self.bias
            probabilities = sigmoid(logits)
            error = probabilities - labels
            grad_weights = features.T @ error / len(labels) + self.l2 * self.weights
            grad_bias = float(np.mean(error))
            self.weights -= self.learning_rate * grad_weights
            self.bias -= self.learning_rate * grad_bias
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return sigmoid(np.asarray(features, dtype=np.float64) @ self.weights + self.bias)


class CommitteeSelector(Selector):
    """Query-by-committee uncertainty sampling over pair representations."""

    name = "dial"

    def __init__(self, committee_size: int = 5, positive_share: float = 0.5,
                 random_state: int = 0) -> None:
        if committee_size < 2:
            raise ValueError("committee_size must be >= 2")
        if not 0.0 <= positive_share <= 1.0:
            raise ValueError("positive_share must be in [0, 1]")
        self.committee_size = committee_size
        self.positive_share = positive_share
        self.random_state = random_state

    def _committee_votes(self, context: SelectionContext) -> np.ndarray:
        """Fraction of committee members voting *match* for every pool pair."""
        rng = ensure_rng(self.random_state)
        member_rngs = spawn_rng(rng, self.committee_size)
        labeled = context.labeled_positions
        pool = context.pool_positions
        features = context.representations
        labels = context.labels[labeled]

        votes = np.zeros(len(pool), dtype=np.float64)
        for member_rng in member_rngs:
            if len(labeled) >= 2 and len(np.unique(labels)) == 2:
                sample = member_rng.choice(len(labeled), size=len(labeled), replace=True)
                train_positions = labeled[sample]
                # A bootstrap resample may lose one class entirely; resample
                # until both classes are present (bounded retries).
                for _ in range(5):
                    if len(np.unique(context.labels[train_positions])) == 2:
                        break
                    sample = member_rng.choice(len(labeled), size=len(labeled), replace=True)
                    train_positions = labeled[sample]
                head = _LogisticHead(features.shape[1], rng=member_rng)
                head.fit(features[train_positions], context.labels[train_positions])
                member_probabilities = head.predict_proba(features[pool])
            else:
                # Cold start: fall back to the matcher's own probabilities with
                # bootstrap noise so members still disagree.
                noise = member_rng.normal(0.0, 0.05, size=len(pool))
                member_probabilities = np.clip(context.probabilities[pool] + noise, 0.0, 1.0)
            votes += (member_probabilities >= 0.5).astype(np.float64)
        return votes / self.committee_size

    def select(self, context: SelectionContext) -> list[int]:
        pool = context.pool_positions
        if len(pool) == 0 or context.budget <= 0:
            return []
        votes = self._committee_votes(context)
        disagreement = votes * (1.0 - votes)
        predictions = (votes >= 0.5).astype(np.int64)

        positive_budget = int(round(context.budget * self.positive_share))
        negative_budget = context.budget - positive_budget
        selected: list[int] = []
        for class_value, class_budget in ((1, positive_budget), (0, negative_budget)):
            class_mask = predictions == class_value
            class_positions = pool[class_mask]
            class_scores = disagreement[class_mask]
            order = np.argsort(-class_scores)
            selected.extend(int(context.universe[p])
                            for p in class_positions[order][:class_budget])

        if len(selected) < context.budget:
            already = set(selected)
            order = np.argsort(-disagreement)
            for position in pool[order]:
                index = int(context.universe[position])
                if index not in already:
                    selected.append(index)
                    already.add(index)
                if len(selected) >= context.budget:
                    break
        return selected[:context.budget]
