"""Selector interface and the per-iteration selection context.

A selector receives a :class:`SelectionContext` — everything the current
matcher knows about the dataset — and returns the pool indices to send to the
oracle.  Selectors may also propose *weak* labels (Section 3.7); the default
implementation mirrors DAL: the most confident pool pairs by conditional
entropy, half predicted matches and half predicted non-matches.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.graphs.entropy import conditional_entropy


@dataclass
class SelectionContext:
    """Snapshot handed to a selector at the start of an iteration.

    All arrays are aligned: row ``i`` of every array describes the candidate
    pair whose dataset index is ``universe[i]``.

    Attributes
    ----------
    iteration:
        Zero-based active-learning iteration number.
    budget:
        Number of labels that may be requested from the oracle.
    universe:
        Dataset pair indices of the active-learning universe (the train split).
    probabilities:
        Match probability assigned by the current matcher to every pair.
    representations:
        Pair representations produced by the current matcher.
    labeled_mask:
        True for pairs already labeled by the oracle.
    labels:
        Oracle labels (−1 for unlabeled pairs).
    rng:
        Random generator for tie-breaking / residue distribution.
    """

    iteration: int
    budget: int
    universe: np.ndarray
    probabilities: np.ndarray
    representations: np.ndarray
    labeled_mask: np.ndarray
    labels: np.ndarray
    rng: np.random.Generator

    def __post_init__(self) -> None:
        self.universe = np.asarray(self.universe, dtype=np.int64)
        self.probabilities = np.asarray(self.probabilities, dtype=np.float64)
        self.representations = np.asarray(self.representations, dtype=np.float64)
        self.labeled_mask = np.asarray(self.labeled_mask, dtype=bool)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        n = len(self.universe)
        for name in ("probabilities", "labeled_mask", "labels"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} must have length {n}")
        if len(self.representations) != n:
            raise ValueError("representations must have one row per universe entry")
        self._position = {int(index): position for position, index in enumerate(self.universe)}

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def position_of(self, dataset_index: int) -> int:
        """Row position of ``dataset_index`` within the context arrays."""
        return self._position[int(dataset_index)]

    @property
    def predictions(self) -> np.ndarray:
        """Hard predictions of the current matcher (0.5 threshold)."""
        return (self.probabilities >= 0.5).astype(np.int64)

    @property
    def pool_positions(self) -> np.ndarray:
        """Row positions of unlabeled pairs."""
        return np.flatnonzero(~self.labeled_mask)

    @property
    def labeled_positions(self) -> np.ndarray:
        """Row positions of labeled pairs."""
        return np.flatnonzero(self.labeled_mask)

    def pool_indices(self) -> np.ndarray:
        """Dataset indices of unlabeled pairs."""
        return self.universe[self.pool_positions]


class Selector(abc.ABC):
    """Base class of all sample-selection strategies."""

    #: Human-readable name used in experiment reports.
    name: str = "selector"

    @abc.abstractmethod
    def select(self, context: SelectionContext) -> list[int]:
        """Return up to ``context.budget`` pool *dataset indices* to label."""

    def reset(self) -> None:
        """Drop any per-run state (caches, artifacts).

        :class:`~repro.active.loop.ActiveLearningLoop` calls this at the start
        of every run so one selector instance can safely serve several runs or
        datasets.  Stateless selectors need not override it.
        """

    def select_weak(self, context: SelectionContext, budget: int) -> dict[int, int]:
        """Propose weak labels (dataset index → predicted label).

        The default mirrors DAL (Kasai et al.): the most confident pool
        pairs by conditional entropy, split half and half between predicted
        matches and predicted non-matches.
        """
        return entropy_weak_selection(context, budget)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


def entropy_weak_selection(context: SelectionContext, budget: int) -> dict[int, int]:
    """DAL-style weak supervision: lowest-entropy pool pairs, class balanced."""
    if budget <= 0:
        return {}
    pool = context.pool_positions
    if len(pool) == 0:
        return {}
    probabilities = context.probabilities[pool]
    predictions = (probabilities >= 0.5).astype(np.int64)
    entropies = np.asarray(conditional_entropy(probabilities))

    per_class = budget // 2
    weak: dict[int, int] = {}
    for class_value, class_budget in ((1, per_class), (0, budget - per_class)):
        class_positions = pool[predictions == class_value]
        class_entropies = entropies[predictions == class_value]
        order = np.argsort(class_entropies)
        for position in class_positions[order][:class_budget]:
            weak[int(context.universe[position])] = class_value
    return weak


def take_top_ranked(scores: dict[int, float], budget: int,
                    largest_first: bool = True) -> list[int]:
    """Return up to ``budget`` keys of ``scores`` in score order."""
    ordered = sorted(scores, key=lambda key: scores[key], reverse=largest_first)
    return ordered[:max(budget, 0)]
