"""Budget handling: the positive/negative split and the per-component shares.

Two pieces of the paper live here:

* the decaying positive-budget schedule of Section 4.2,
  ``B+ = B * max(0.8 - i / 20, 0.5)``, which front-loads the hunt for match
  pairs in the early iterations (the *correspondence* criterion), and
* the proportional distribution of a budget over connected components
  (Eq. 2), with the rounded-down residue assigned at random.
"""

from __future__ import annotations

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.exceptions import BudgetError


def positive_budget(total_budget: int, iteration: int,
                    initial_share: float = 0.8, decay: float = 0.05,
                    floor: float = 0.5) -> int:
    """The match-pair share of the labeling budget for ``iteration`` (Section 4.2).

    The paper uses ``B * max(0.8 - i/20, 0.5)``, i.e. an initial share of 0.8
    decaying by 0.05 per iteration down to a floor of 0.5.
    """
    if total_budget < 0:
        raise BudgetError("total_budget must be >= 0")
    if iteration < 0:
        raise BudgetError("iteration must be >= 0")
    share = max(initial_share - decay * iteration, floor)
    share = min(max(share, 0.0), 1.0)
    return int(round(total_budget * share))


def split_budget(total_budget: int, iteration: int, **kwargs: float) -> tuple[int, int]:
    """Return ``(B+, B-)`` for ``iteration`` (see :func:`positive_budget`)."""
    positive = positive_budget(total_budget, iteration, **kwargs)
    return positive, total_budget - positive


def distribute_budget(
    component_sizes: dict[int, int],
    budget: int,
    random_state: RandomState = None,
) -> dict[int, int]:
    """Distribute ``budget`` over connected components proportionally to size (Eq. 2).

    Each component ``cc`` receives ``floor(budget * |cc| / total)``; whatever
    remains after rounding down is handed out one unit at a time to randomly
    chosen components (Example 6).

    Parameters
    ----------
    component_sizes:
        Mapping component id → number of nodes.
    budget:
        Labels to distribute (``B+`` or ``B-``).
    """
    if budget < 0:
        raise BudgetError("budget must be >= 0")
    for component, size in component_sizes.items():
        if size < 0:
            raise BudgetError(f"Component {component} has negative size {size}")
    rng = ensure_rng(random_state)
    components = list(component_sizes)
    if not components or budget == 0:
        return {component: 0 for component in components}

    total_size = sum(component_sizes.values())
    if total_size == 0:
        return {component: 0 for component in components}

    shares = {
        component: int(np.floor(budget * component_sizes[component] / total_size))
        for component in components
    }
    residue = budget - sum(shares.values())
    if residue > 0:
        # Randomly distribute the residue, preferring components that can
        # still absorb labels (size above their current share).
        eligible = [c for c in components if component_sizes[c] > shares[c]]
        if not eligible:
            eligible = components
        chosen = rng.choice(len(eligible), size=residue, replace=len(eligible) < residue)
        for position in np.atleast_1d(chosen):
            shares[eligible[int(position)]] += 1
    return shares


def cap_budgets_by_size(shares: dict[int, int], component_sizes: dict[int, int]) -> dict[int, int]:
    """Clip each component's share at its size (cannot label more than exists)."""
    return {component: min(share, component_sizes.get(component, 0))
            for component, share in shares.items()}
