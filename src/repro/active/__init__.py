"""Active-learning core: the battleship approach, baselines, loop, and oracles."""

from repro.active.budget import (
    cap_budgets_by_size,
    distribute_budget,
    positive_budget,
    split_budget,
)
from repro.active.loop import ActiveLearningLoop, ActiveLearningResult, IterationRecord
from repro.active.oracle import (
    ABSTAIN,
    AbstainingOracle,
    ClassConditionalNoisyOracle,
    LabelingOracle,
    NoisyOracle,
    PerfectOracle,
)
from repro.active.selectors import (
    BattleshipConfig,
    BattleshipSelector,
    CommitteeSelector,
    EntropySelector,
    RandomSelector,
    SelectionContext,
    Selector,
)
from repro.active.state import ActiveLearningState
from repro.active.weak_supervision import WeakSupervisionMode, resolve_mode, select_weak_labels

__all__ = [
    "ABSTAIN",
    "AbstainingOracle",
    "ActiveLearningLoop",
    "ActiveLearningResult",
    "ActiveLearningState",
    "BattleshipConfig",
    "BattleshipSelector",
    "ClassConditionalNoisyOracle",
    "CommitteeSelector",
    "EntropySelector",
    "IterationRecord",
    "LabelingOracle",
    "NoisyOracle",
    "PerfectOracle",
    "RandomSelector",
    "SelectionContext",
    "Selector",
    "WeakSupervisionMode",
    "cap_budgets_by_size",
    "distribute_budget",
    "positive_budget",
    "resolve_mode",
    "select_weak_labels",
    "split_budget",
]
