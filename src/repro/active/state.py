"""Active-learning bookkeeping: the evolving split of ``D`` into train and pool.

:class:`ActiveLearningState` tracks, over the course of the iterations, which
candidate pairs have been labeled (``D_train_i``), which remain in the pool
(``D_pool_i``), the oracle labels obtained so far, and the weak labels added by
the weak-supervision component (which are refreshed every iteration and never
count against the labeling budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import BudgetError


@dataclass
class ActiveLearningState:
    """Mutable state of one active-learning run."""

    universe: np.ndarray
    labeled: dict[int, int] = field(default_factory=dict)
    weak_labels: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.universe = np.asarray(self.universe, dtype=np.int64)
        self._universe_set = set(int(index) for index in self.universe)
        for index in self.labeled:
            if index not in self._universe_set:
                raise BudgetError(f"Labeled index {index} is not part of the universe")

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def labeled_indices(self) -> np.ndarray:
        """Dataset indices labeled so far (sorted)."""
        return np.asarray(sorted(self.labeled), dtype=np.int64)

    @property
    def pool_indices(self) -> np.ndarray:
        """Dataset indices still unlabeled (sorted)."""
        return np.asarray(
            sorted(self._universe_set - set(self.labeled)), dtype=np.int64)

    @property
    def num_labeled(self) -> int:
        return len(self.labeled)

    @property
    def num_pool(self) -> int:
        return len(self._universe_set) - len(self.labeled)

    def labeled_positives(self) -> list[int]:
        """Labeled indices whose oracle label is match."""
        return [index for index, label in self.labeled.items() if label == 1]

    def labeled_negatives(self) -> list[int]:
        """Labeled indices whose oracle label is non-match."""
        return [index for index, label in self.labeled.items() if label == 0]

    def is_labeled(self, index: int) -> bool:
        return index in self.labeled

    def label_array(self, indices: np.ndarray) -> np.ndarray:
        """Oracle labels of ``indices`` as an array (``-1`` where unlabeled).

        Vectorized equivalent of ``[self.labeled.get(int(i), -1) for i in
        indices]``: the labeled mapping is materialized once (it is small —
        bounded by the labeling budget) and matched against ``indices`` with
        a sorted lookup, so the cost no longer scales as a Python loop over
        the whole universe.
        """
        indices = np.asarray(indices, dtype=np.int64)
        labels = np.full(len(indices), -1, dtype=np.int64)
        if self.labeled and len(indices):
            keys = np.fromiter(self.labeled.keys(), dtype=np.int64,
                               count=len(self.labeled))
            values = np.fromiter(self.labeled.values(), dtype=np.int64,
                                 count=len(self.labeled))
            order = np.argsort(keys)
            keys, values = keys[order], values[order]
            positions = np.searchsorted(keys, indices)
            positions[positions == len(keys)] = 0
            found = keys[positions] == indices
            labels[found] = values[positions[found]]
        return labels

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add_labels(self, labels: dict[int, int]) -> None:
        """Move pairs from the pool to the labeled set with their oracle labels."""
        for index, label in labels.items():
            index = int(index)
            if index not in self._universe_set:
                raise BudgetError(f"Index {index} is not part of the universe")
            if index in self.labeled:
                raise BudgetError(f"Index {index} is already labeled")
            if label not in (0, 1):
                raise BudgetError(f"Label for index {index} must be 0 or 1, got {label}")
            self.labeled[index] = int(label)
        # Newly labeled pairs lose any weak label they may have carried.
        for index in labels:
            self.weak_labels.pop(int(index), None)

    def set_weak_labels(self, weak_labels: dict[int, int]) -> None:
        """Replace the weak-label set (refreshed every iteration, Section 3.7)."""
        cleaned: dict[int, int] = {}
        for index, label in weak_labels.items():
            index = int(index)
            if index in self.labeled:
                continue
            if index not in self._universe_set:
                raise BudgetError(f"Weak-label index {index} is not part of the universe")
            if label not in (0, 1):
                raise BudgetError(f"Weak label for {index} must be 0 or 1, got {label}")
            cleaned[index] = int(label)
        self.weak_labels = cleaned

    def training_set(self) -> tuple[np.ndarray, np.ndarray]:
        """Indices and labels used to train the matcher (labeled + weak)."""
        indices = list(self.labeled) + [i for i in self.weak_labels if i not in self.labeled]
        labels = [self.labeled.get(i, self.weak_labels.get(i)) for i in indices]
        return (np.asarray(indices, dtype=np.int64),
                np.asarray(labels, dtype=np.int64))
