"""Labeling oracles.

Active learning sends selected pairs to an oracle (Section 3.6).  The paper
assumes a perfect oracle; the remaining oracles model the annotator
imperfections Section 3.6 concedes exist in practice and are the oracle axis
of the scenario matrix (:mod:`repro.scenarios`):

* :class:`NoisyOracle` — answers flipped uniformly at random;
* :class:`ClassConditionalNoisyOracle` — asymmetric mistakes (different
  false-positive and false-negative rates), the "biased annotator";
* :class:`AbstainingOracle` — refuses to answer some queries, so the loop
  receives fewer labels than it paid for.

Wrapping oracles delegate to their base oracle through
:meth:`LabelingOracle.peek`, the sanctioned hook that answers without
counting a query, so oracles compose (e.g. an abstaining annotator that is
also noisy) without reaching into each other's private methods.
"""

from __future__ import annotations

import abc

import numpy as np

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.data.dataset import EMDataset
from repro.exceptions import OracleError

#: Sentinel label returned by an oracle that declines to answer a query.
ABSTAIN = -1


class LabelingOracle(abc.ABC):
    """Answers label queries for candidate pairs (by dataset pair index)."""

    def __init__(self) -> None:
        self.num_queries = 0

    @abc.abstractmethod
    def _label(self, pair_index: int) -> int:
        """Return the label for ``pair_index`` (without bookkeeping)."""

    def peek(self, pair_index: int) -> int:
        """Answer without counting a query.

        This is the delegation hook wrapping oracles use: a wrapper counts
        the query against *itself* and obtains the underlying answer here, so
        stacking wrappers never double-counts ``num_queries`` and never
        depends on another oracle's private methods.
        """
        return self._label(pair_index)

    def query(self, pair_index: int) -> int:
        """Label a single pair, counting the query."""
        self.num_queries += 1
        return self._label(pair_index)

    def query_many(self, pair_indices: list[int] | np.ndarray) -> dict[int, int]:
        """Label many pairs at once; returns index → label.

        Duplicate indices are collapsed *before* querying, so every pair is
        asked (and counted against ``num_queries``) exactly once — previously
        duplicates were each counted as a query while the returned dict could
        only hold one entry per index.  Pairs the oracle abstains on
        (:data:`ABSTAIN`) are omitted from the result but still count as
        queries: the annotator was asked.
        """
        unique_indices = dict.fromkeys(int(index) for index in pair_indices)
        answers = {index: self.query(index) for index in unique_indices}
        return {index: label for index, label in answers.items()
                if label != ABSTAIN}


class PerfectOracle(LabelingOracle):
    """Returns the gold label of the dataset (the paper's assumption)."""

    def __init__(self, dataset: EMDataset) -> None:
        super().__init__()
        self._labels = dataset.pairs.labels()
        if np.any(self._labels < 0):
            raise OracleError(
                f"Dataset {dataset.name!r} has unlabeled pairs; a perfect oracle "
                "requires gold labels for every candidate pair"
            )

    def _label(self, pair_index: int) -> int:
        if not 0 <= pair_index < len(self._labels):
            raise OracleError(f"Pair index {pair_index} out of range")
        return int(self._labels[pair_index])


class NoisyOracle(LabelingOracle):
    """An oracle whose answers are flipped with a fixed probability.

    Section 3.6 notes that real annotators are biased; this oracle lets the
    experiments quantify the sensitivity of each selector to label noise.
    The flip is drawn per *query*, modelling an inconsistent annotator:
    asking the same pair twice may yield different answers.

    Parameters
    ----------
    dataset:
        Benchmark whose gold labels the default base oracle answers with.
    flip_probability:
        Probability that any single answer is flipped.
    random_state:
        Seed or generator for the flip draws.
    base:
        Oracle supplying the unflipped answers (defaults to a
        :class:`PerfectOracle` over ``dataset``); wrapping a non-perfect base
        composes noise models.
    """

    def __init__(self, dataset: EMDataset, flip_probability: float = 0.05,
                 random_state: RandomState = None,
                 base: LabelingOracle | None = None) -> None:
        super().__init__()
        if not 0.0 <= flip_probability <= 1.0:
            raise OracleError("flip_probability must be in [0, 1]")
        self._base = base if base is not None else PerfectOracle(dataset)
        self.flip_probability = flip_probability
        self._rng, = spawn_rng(ensure_rng(random_state), 1)

    def _label(self, pair_index: int) -> int:
        label = self._base.peek(pair_index)
        if label == ABSTAIN:
            return ABSTAIN
        if self._rng.random() < self.flip_probability:
            return 1 - label
        return label


class ClassConditionalNoisyOracle(LabelingOracle):
    """An annotator whose error rate depends on the true class.

    Real annotators rarely err symmetrically: merging two near-identical
    product variants (a false positive) is a different mistake from missing a
    heavily corrupted true match (a false negative).  The flip decision is
    drawn *per pair* at construction from two independent child generators
    (one per class, derived with :func:`repro._rng.spawn_rng`), so the oracle
    is deterministic: the same pair always receives the same answer, no
    matter how often or in which order it is queried.

    Parameters
    ----------
    dataset:
        Benchmark whose gold labels are perturbed.
    false_positive_rate:
        Probability that a true non-match is reported as a match.
    false_negative_rate:
        Probability that a true match is reported as a non-match.
    random_state:
        Seed or generator for the per-pair flip masks.
    """

    def __init__(self, dataset: EMDataset, false_positive_rate: float = 0.1,
                 false_negative_rate: float = 0.1,
                 random_state: RandomState = None) -> None:
        super().__init__()
        for name, rate in (("false_positive_rate", false_positive_rate),
                           ("false_negative_rate", false_negative_rate)):
            if not 0.0 <= rate <= 1.0:
                raise OracleError(f"{name} must be in [0, 1]")
        self._labels = dataset.pairs.labels()
        if np.any(self._labels < 0):
            raise OracleError(
                f"Dataset {dataset.name!r} has unlabeled pairs; a "
                "class-conditional oracle requires gold labels")
        self.false_positive_rate = false_positive_rate
        self.false_negative_rate = false_negative_rate
        positive_rng, negative_rng = spawn_rng(ensure_rng(random_state), 2)
        positives = self._labels == 1
        flip = np.where(positives,
                        positive_rng.random(len(self._labels)) < false_negative_rate,
                        negative_rng.random(len(self._labels)) < false_positive_rate)
        self._answers = np.where(flip, 1 - self._labels, self._labels)

    def _label(self, pair_index: int) -> int:
        if not 0 <= pair_index < len(self._answers):
            raise OracleError(f"Pair index {pair_index} out of range")
        return int(self._answers[pair_index])


class AbstainingOracle(LabelingOracle):
    """An annotator who declines to answer a fixed subset of the pairs.

    Crowd workers skip examples they find ambiguous.  Which pairs are skipped
    is decided *per pair* at construction (via a child generator derived with
    :func:`repro._rng.spawn_rng`), so abstention is consistent: a pair the
    annotator refuses once is refused forever, and the active-learning loop
    receives fewer labels than its budget paid for on exactly those pairs.

    Parameters
    ----------
    dataset:
        Benchmark the default base oracle answers over.
    abstain_probability:
        Fraction of pairs the annotator declines.
    random_state:
        Seed or generator for the abstention mask.
    base:
        Oracle answering the non-abstained queries (defaults to a
        :class:`PerfectOracle` over ``dataset``).
    """

    def __init__(self, dataset: EMDataset, abstain_probability: float = 0.1,
                 random_state: RandomState = None,
                 base: LabelingOracle | None = None) -> None:
        super().__init__()
        if not 0.0 <= abstain_probability <= 1.0:
            raise OracleError("abstain_probability must be in [0, 1]")
        self._base = base if base is not None else PerfectOracle(dataset)
        self.abstain_probability = abstain_probability
        self.num_abstentions = 0
        mask_rng, = spawn_rng(ensure_rng(random_state), 1)
        self._abstains = mask_rng.random(len(dataset.pairs)) < abstain_probability

    def query(self, pair_index: int) -> int:
        """Label a single pair, counting the query and any billed abstention.

        The abstention counter lives here (not in ``_label``) so that
        :meth:`peek` stays side-effect free, as the delegation contract
        promises: only *billed* refusals count.
        """
        label = super().query(pair_index)
        if label == ABSTAIN:
            self.num_abstentions += 1
        return label

    def _label(self, pair_index: int) -> int:
        if not 0 <= pair_index < len(self._abstains):
            raise OracleError(f"Pair index {pair_index} out of range")
        if self._abstains[pair_index]:
            return ABSTAIN
        return self._base.peek(pair_index)
