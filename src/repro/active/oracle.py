"""Labeling oracles.

Active learning sends selected pairs to an oracle (Section 3.6).  The paper
assumes a perfect oracle; :class:`NoisyOracle` is provided as an extension to
study how labeling mistakes affect the selection strategies.
"""

from __future__ import annotations

import abc

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.data.dataset import EMDataset
from repro.exceptions import OracleError


class LabelingOracle(abc.ABC):
    """Answers label queries for candidate pairs (by dataset pair index)."""

    def __init__(self) -> None:
        self.num_queries = 0

    @abc.abstractmethod
    def _label(self, pair_index: int) -> int:
        """Return the label for ``pair_index`` (without bookkeeping)."""

    def query(self, pair_index: int) -> int:
        """Label a single pair, counting the query."""
        self.num_queries += 1
        return self._label(pair_index)

    def query_many(self, pair_indices: list[int] | np.ndarray) -> dict[int, int]:
        """Label many pairs at once; returns index → label."""
        return {int(index): self.query(int(index)) for index in pair_indices}


class PerfectOracle(LabelingOracle):
    """Returns the gold label of the dataset (the paper's assumption)."""

    def __init__(self, dataset: EMDataset) -> None:
        super().__init__()
        self._labels = dataset.pairs.labels()
        if np.any(self._labels < 0):
            raise OracleError(
                f"Dataset {dataset.name!r} has unlabeled pairs; a perfect oracle "
                "requires gold labels for every candidate pair"
            )

    def _label(self, pair_index: int) -> int:
        if not 0 <= pair_index < len(self._labels):
            raise OracleError(f"Pair index {pair_index} out of range")
        return int(self._labels[pair_index])


class NoisyOracle(LabelingOracle):
    """A perfect oracle whose answers are flipped with a fixed probability.

    Section 3.6 notes that real annotators are biased; this oracle lets the
    experiments quantify the sensitivity of each selector to label noise.
    """

    def __init__(self, dataset: EMDataset, flip_probability: float = 0.05,
                 random_state: RandomState = None) -> None:
        super().__init__()
        if not 0.0 <= flip_probability <= 1.0:
            raise OracleError("flip_probability must be in [0, 1]")
        self._base = PerfectOracle(dataset)
        self.flip_probability = flip_probability
        self._rng = ensure_rng(random_state)

    def _label(self, pair_index: int) -> int:
        label = self._base._label(pair_index)
        if self._rng.random() < self.flip_probability:
            return 1 - label
        return label
