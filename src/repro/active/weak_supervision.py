"""Weak-supervision modes (Section 3.7).

The training set of every iteration is augmented — without spending labeling
budget — with pool pairs whose predicted label is adopted as a weak label.
Two strategies exist in the paper:

* ``entropy`` — DAL's method: the pool pairs with the lowest conditional
  entropy (most confident model predictions), class balanced;
* ``spatial`` — the battleship method: the pairs minimizing the spatial
  certainty score (Eq. 4), distributed over connected components with the
  Section 3.4 budget policy.

The ``spatial`` strategy is implemented by
:meth:`repro.active.selectors.battleship.BattleshipSelector.select_weak`;
the ``entropy`` strategy by
:func:`repro.active.selectors.base.entropy_weak_selection`.  This module only
defines the mode names and dispatch used by the loop, so that e.g. Figure 10
(battleship with DAL's weak supervision) is a one-argument change.
"""

from __future__ import annotations

from enum import Enum

from repro._suggest import unknown_name_message
from repro.active.selectors.base import SelectionContext, Selector, entropy_weak_selection
from repro.exceptions import ConfigurationError


class WeakSupervisionMode(str, Enum):
    """How weak labels are chosen each iteration."""

    #: No weak supervision (the "-WS" ablation of Figure 9).
    OFF = "off"
    #: Use the selector's own strategy (spatial for battleship, entropy otherwise).
    SELECTOR = "selector"
    #: Force DAL's entropy-based strategy regardless of the selector (Figure 10).
    ENTROPY = "entropy"


def resolve_mode(mode: WeakSupervisionMode | str | None) -> WeakSupervisionMode:
    """Normalize a mode given as enum, string, or ``None`` (→ ``SELECTOR``)."""
    if mode is None:
        return WeakSupervisionMode.SELECTOR
    if isinstance(mode, WeakSupervisionMode):
        return mode
    try:
        return WeakSupervisionMode(str(mode).strip().lower())
    except ValueError:
        raise ConfigurationError(
            unknown_name_message("weak-supervision mode", mode,
                                 [m.value for m in WeakSupervisionMode])
        ) from None


def select_weak_labels(
    mode: WeakSupervisionMode,
    selector: Selector,
    context: SelectionContext,
    budget: int,
) -> dict[int, int]:
    """Dispatch weak-label selection according to ``mode``."""
    if mode is WeakSupervisionMode.OFF or budget <= 0:
        return {}
    if mode is WeakSupervisionMode.ENTROPY:
        return entropy_weak_selection(context, budget)
    return selector.select_weak(context, budget)
