"""The active-learning loop (Figure 3 of the paper).

:class:`ActiveLearningLoop` orchestrates one full run: seed the labeled set,
then for every iteration train the matcher from scratch on the labeled (+weak)
set, evaluate on the held-out test split, hand the matcher's probabilities and
pair representations to the selector, send the selected pairs to the oracle,
and refresh the weak labels.  The loop records an
:class:`IterationRecord` per iteration; the experiment harness aggregates the
records into the paper's figures and tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.active.oracle import LabelingOracle, PerfectOracle
from repro.active.selectors.base import SelectionContext, Selector
from repro.active.state import ActiveLearningState
from repro.active.weak_supervision import WeakSupervisionMode, resolve_mode, select_weak_labels
from repro.data.dataset import EMDataset
from repro.evaluation.curves import LearningCurve
from repro.evaluation.metrics import MatchingMetrics, matching_metrics
from repro.exceptions import BudgetError, ConfigurationError
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer
from repro.neural.matcher import MatcherConfig, NeuralMatcher


@dataclass(frozen=True)
class IterationRecord:
    """Diagnostics of one active-learning iteration."""

    iteration: int
    num_labeled: int
    num_weak: int
    num_labeled_positives: int
    test_metrics: MatchingMetrics
    train_seconds: float
    selection_seconds: float

    @property
    def f1(self) -> float:
        return self.test_metrics.f1

    def to_dict(self) -> dict[str, object]:
        """Lossless JSON-ready representation (artifact-store format)."""
        return {
            "iteration": self.iteration,
            "num_labeled": self.num_labeled,
            "num_weak": self.num_weak,
            "num_labeled_positives": self.num_labeled_positives,
            "test_metrics": self.test_metrics.to_dict(),
            "train_seconds": self.train_seconds,
            "selection_seconds": self.selection_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "IterationRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            iteration=int(payload["iteration"]),
            num_labeled=int(payload["num_labeled"]),
            num_weak=int(payload["num_weak"]),
            num_labeled_positives=int(payload["num_labeled_positives"]),
            test_metrics=MatchingMetrics.from_dict(payload["test_metrics"]),
            train_seconds=float(payload["train_seconds"]),
            selection_seconds=float(payload["selection_seconds"]),
        )


@dataclass
class ActiveLearningResult:
    """Outcome of one complete active-learning run."""

    dataset_name: str
    selector_name: str
    records: list[IterationRecord] = field(default_factory=list)

    @property
    def final_f1(self) -> float:
        return self.records[-1].f1 if self.records else 0.0

    def learning_curve(self) -> LearningCurve:
        """F1 versus the cumulative number of labeled samples."""
        curve = LearningCurve()
        for record in self.records:
            curve.add(record.num_labeled, record.f1)
        return curve

    def selection_runtimes(self) -> list[float]:
        """Selection wall-clock seconds per iteration (Figure 6)."""
        return [record.selection_seconds for record in self.records
                if record.selection_seconds > 0.0]

    def to_dict(self) -> dict[str, object]:
        """Lossless JSON-ready representation (artifact-store format)."""
        return {
            "dataset_name": self.dataset_name,
            "selector_name": self.selector_name,
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ActiveLearningResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            dataset_name=str(payload["dataset_name"]),
            selector_name=str(payload["selector_name"]),
            records=[IterationRecord.from_dict(record)
                     for record in payload["records"]],
        )

    def as_rows(self) -> list[dict[str, object]]:
        """Flat rows for report tables."""
        return [
            {
                "dataset": self.dataset_name,
                "selector": self.selector_name,
                "iteration": record.iteration,
                "labeled": record.num_labeled,
                "weak": record.num_weak,
                "f1": round(record.f1 * 100.0, 2),
                "precision": round(record.test_metrics.precision * 100.0, 2),
                "recall": round(record.test_metrics.recall * 100.0, 2),
                "select_s": round(record.selection_seconds, 3),
                "train_s": round(record.train_seconds, 3),
            }
            for record in self.records
        ]


class ActiveLearningLoop:
    """Runs active learning for one (dataset, selector) combination.

    Parameters
    ----------
    dataset:
        The benchmark; its train split is the active-learning universe ``D``,
        its validation split drives matcher model selection, and its test
        split is used only for reporting.
    selector:
        The sample-selection strategy.
    oracle:
        Labeling oracle (defaults to a perfect oracle over the gold labels).
    matcher_config / featurizer_config:
        Hyper-parameters of the DITTO stand-in.
    iterations:
        ``I``: number of selection rounds (the matcher is trained
        ``iterations + 1`` times, once per labeled-set size).
    budget_per_iteration:
        ``B``: labels requested from the oracle per iteration.
    seed_size:
        Size of the labeled initialization seed ``D_train_0`` (half matches,
        half non-matches); defaults to ``budget_per_iteration``.
    weak_supervision / weak_budget:
        Weak-supervision mode (Section 3.7) and its per-iteration budget
        (defaults to ``budget_per_iteration``).
    features:
        Optional precomputed feature matrix for *all* candidate pairs of
        ``dataset`` (as produced by ``PairFeaturizer(featurizer_config)
        .transform(dataset)``).  The featurizer is stateless, so a matrix
        computed once — e.g. by the experiment engine's feature cache — can
        be shared by every run touching the dataset; when omitted the loop
        featurizes the dataset itself on first use.
    """

    def __init__(
        self,
        dataset: EMDataset,
        selector: Selector,
        oracle: LabelingOracle | None = None,
        matcher_config: MatcherConfig | None = None,
        featurizer_config: FeaturizerConfig | None = None,
        iterations: int = 8,
        budget_per_iteration: int = 100,
        seed_size: int | None = None,
        weak_supervision: WeakSupervisionMode | str | None = WeakSupervisionMode.SELECTOR,
        weak_budget: int | None = None,
        random_state: RandomState = None,
        features: np.ndarray | None = None,
    ) -> None:
        if iterations < 0:
            raise BudgetError("iterations must be >= 0")
        if budget_per_iteration <= 0:
            raise BudgetError("budget_per_iteration must be positive")
        self.dataset = dataset
        self.selector = selector
        self.oracle = oracle or PerfectOracle(dataset)
        self.matcher_config = matcher_config or MatcherConfig()
        self.featurizer = PairFeaturizer(featurizer_config)
        self.iterations = iterations
        self.budget_per_iteration = budget_per_iteration
        self.seed_size = seed_size if seed_size is not None else budget_per_iteration
        self.weak_mode = resolve_mode(weak_supervision)
        self.weak_budget = weak_budget if weak_budget is not None else budget_per_iteration
        self._rng = ensure_rng(random_state)

        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            expected = (len(dataset.pairs), self.featurizer.feature_dim(dataset))
            if features.shape != expected:
                raise ConfigurationError(
                    f"Precomputed feature matrix has shape {features.shape}, "
                    f"but dataset {dataset.name!r} with this featurizer "
                    f"config requires {expected}")
        self._features = features
        #: The matcher trained in the final iteration (available after run()).
        self.final_matcher_: NeuralMatcher | None = None
        #: The labeling state at the end of the run (available after run()).
        self.final_state_: ActiveLearningState | None = None

    # ------------------------------------------------------------------ #
    # Setup helpers
    # ------------------------------------------------------------------ #
    def _ensure_features(self) -> np.ndarray:
        """Featurize the whole dataset once (the featurizer is stateless).

        A matrix passed through the ``features`` constructor argument is used
        as-is; otherwise the dataset is featurized on first call.
        """
        if self._features is None:
            self._features = self.featurizer.transform(self.dataset)
        return self._features

    def _initial_seed(self, universe: np.ndarray, rng: np.random.Generator) -> dict[int, int]:
        """Labeled initialization seed: half matches, half non-matches.

        An abstaining oracle may decline some of the chosen pairs, in which
        case the seed simply ends up smaller — exactly as a real campaign
        would when annotators skip examples.
        """
        labels = self.dataset.labels(universe)
        positives = universe[labels == 1]
        negatives = universe[labels == 0]
        per_class = self.seed_size // 2
        num_positive = min(per_class, len(positives))
        num_negative = min(self.seed_size - num_positive, len(negatives))
        chosen_positive = rng.choice(positives, size=num_positive, replace=False)
        chosen_negative = rng.choice(negatives, size=num_negative, replace=False)
        return self.oracle.query_many(
            np.concatenate([chosen_positive, chosen_negative]))

    def _train_matcher(self, state: ActiveLearningState, features: np.ndarray,
                       iteration: int) -> tuple[NeuralMatcher, float]:
        """Train a fresh matcher on the current labeled (+weak) training set."""
        train_indices, train_labels = state.training_set()
        validation_indices = self.dataset.validation_indices
        validation_labels = self.dataset.labels(validation_indices)
        config = replace(self.matcher_config,
                         random_state=self.matcher_config.random_state + iteration)
        matcher = NeuralMatcher(input_dim=features.shape[1], config=config)
        start = time.perf_counter()
        matcher.fit(
            features[train_indices], train_labels,
            validation_features=features[validation_indices],
            validation_labels=validation_labels,
        )
        return matcher, time.perf_counter() - start

    def _evaluate(self, matcher: NeuralMatcher, features: np.ndarray) -> MatchingMetrics:
        test_indices = self.dataset.test_indices
        predictions = matcher.predict(features[test_indices])
        return matching_metrics(self.dataset.labels(test_indices), predictions)

    def _build_context(self, matcher: NeuralMatcher, state: ActiveLearningState,
                       features: np.ndarray, iteration: int,
                       rng: np.random.Generator) -> SelectionContext:
        universe = state.universe
        probabilities, representations = matcher.predict_with_representations(
            features[universe])
        labels = state.label_array(universe)
        labeled_mask = labels >= 0
        return SelectionContext(
            iteration=iteration,
            budget=self.budget_per_iteration,
            universe=universe,
            probabilities=probabilities,
            representations=representations,
            labeled_mask=labeled_mask,
            labels=labels,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> ActiveLearningResult:
        """Execute the complete active-learning run."""
        # A fresh run must not see cached artifacts from a previous run (the
        # iteration numbers coincide, the data does not).
        self.selector.reset()
        features = self._ensure_features()
        universe = np.asarray(self.dataset.train_indices, dtype=np.int64)
        seed_rng, loop_rng = spawn_rng(self._rng, 2)

        state = ActiveLearningState(universe=universe)
        state.add_labels(self._initial_seed(universe, seed_rng))

        result = ActiveLearningResult(
            dataset_name=self.dataset.name,
            selector_name=self.selector.name,
        )
        # Pairs the oracle declined to label.  Abstention is per-pair
        # consistent (see AbstainingOracle), so re-querying a refused pair
        # would burn budget on an answer that is deterministically refused.
        refused: set[int] = set()

        for iteration in range(self.iterations + 1):
            matcher, train_seconds = self._train_matcher(state, features, iteration)
            metrics = self._evaluate(matcher, features)

            # Snapshot how much supervision the matcher of this iteration saw;
            # labels added below only affect the next iteration's matcher.
            num_labeled_at_training = state.num_labeled
            num_weak_at_training = len(state.weak_labels)
            num_positives_at_training = len(state.labeled_positives())

            selection_seconds = 0.0
            if iteration < self.iterations and state.num_pool > 0:
                context_rng, = spawn_rng(loop_rng, 1)
                context = self._build_context(matcher, state, features, iteration,
                                              context_rng)
                start = time.perf_counter()
                selected = self.selector.select(context)
                weak = select_weak_labels(self.weak_mode, self.selector, context,
                                          self.weak_budget)
                selection_seconds = time.perf_counter() - start

                selected = [int(index) for index in selected
                            if not state.is_labeled(int(index))
                            and int(index) not in refused]
                selected = selected[:self.budget_per_iteration]
                new_labels = self.oracle.query_many(selected)
                refused.update(set(selected) - set(new_labels))
                state.add_labels(new_labels)
                state.set_weak_labels(weak)

            result.records.append(IterationRecord(
                iteration=iteration,
                num_labeled=num_labeled_at_training,
                num_weak=num_weak_at_training,
                num_labeled_positives=num_positives_at_training,
                test_metrics=metrics,
                train_seconds=train_seconds,
                selection_seconds=selection_seconds,
            ))
            self.final_matcher_ = matcher
        self.final_state_ = state
        return result
