"""t-SNE (van der Maaten & Hinton, 2008) for the Figure 1 reproduction.

The paper visualizes pair representations of a fully trained matcher with
t-SNE, showing that match pairs concentrate in a few regions of the latent
space.  This is an exact (non-Barnes-Hut) implementation suitable for a few
thousand points: pairwise affinities with per-point perplexity calibration via
binary search, a Student-t low-dimensional kernel, and gradient descent with
momentum and early exaggeration.  A PCA projection is used for initialization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.visualization.projection import PCA

_EPSILON = 1e-12


@dataclass(frozen=True)
class TSNEConfig:
    """Hyper-parameters of :class:`TSNE`."""

    num_components: int = 2
    perplexity: float = 30.0
    learning_rate: float = 50.0
    num_iterations: int = 300
    early_exaggeration: float = 4.0
    exaggeration_iterations: int = 80
    momentum: float = 0.8

    def __post_init__(self) -> None:
        if self.num_components <= 0:
            raise ValueError("num_components must be positive")
        if self.perplexity <= 1:
            raise ValueError("perplexity must exceed 1")
        if self.num_iterations <= 0:
            raise ValueError("num_iterations must be positive")


def _pairwise_squared_distances(data: np.ndarray) -> np.ndarray:
    norms = np.sum(data * data, axis=1)
    distances = norms[:, None] - 2.0 * data @ data.T + norms[None, :]
    np.maximum(distances, 0.0, out=distances)
    np.fill_diagonal(distances, 0.0)
    return distances


def _conditional_probabilities(distances_row: np.ndarray, beta: float) -> np.ndarray:
    """Gaussian conditional probabilities of one row at precision ``beta``."""
    probabilities = np.exp(-distances_row * beta)
    total = probabilities.sum()
    if total <= 0:
        return np.full_like(probabilities, 1.0 / max(len(probabilities), 1))
    return probabilities / total


def _calibrate_row(distances_row: np.ndarray, perplexity: float,
                   tolerance: float = 1e-5, max_steps: int = 50) -> np.ndarray:
    """Binary-search the Gaussian precision so the row entropy matches ``perplexity``."""
    target_entropy = np.log(perplexity)
    beta, beta_min, beta_max = 1.0, 0.0, np.inf
    probabilities = _conditional_probabilities(distances_row, beta)
    for _ in range(max_steps):
        entropy = -np.sum(probabilities * np.log(probabilities + _EPSILON))
        difference = entropy - target_entropy
        if abs(difference) < tolerance:
            break
        if difference > 0:
            beta_min = beta
            beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
        else:
            beta_max = beta
            beta = beta / 2.0 if beta_min == 0.0 else (beta + beta_min) / 2.0
        probabilities = _conditional_probabilities(distances_row, beta)
    return probabilities


def _joint_probabilities(data: np.ndarray, perplexity: float) -> np.ndarray:
    """Symmetrized high-dimensional affinities P."""
    n = len(data)
    distances = _pairwise_squared_distances(data)
    conditionals = np.zeros((n, n))
    for i in range(n):
        row = np.delete(distances[i], i)
        probabilities = _calibrate_row(row, perplexity=min(perplexity, max(n - 2, 2)))
        conditionals[i, np.arange(n) != i] = probabilities
    joint = (conditionals + conditionals.T) / (2.0 * n)
    return np.maximum(joint, _EPSILON)


class TSNE:
    """Exact t-SNE embedding."""

    def __init__(self, config: TSNEConfig | None = None,
                 random_state: RandomState = None) -> None:
        self.config = config or TSNEConfig()
        self.random_state = random_state

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Embed ``data`` into ``num_components`` dimensions."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be 2-dimensional")
        n = len(data)
        if n < 5:
            raise ValueError("t-SNE needs at least 5 points")
        config = self.config
        rng = ensure_rng(self.random_state)

        joint = _joint_probabilities(data, config.perplexity)

        # PCA initialization keeps runs deterministic and well spread.
        num_init_components = min(config.num_components, min(data.shape))
        embedding = PCA(num_init_components).fit_transform(data)
        if embedding.shape[1] < config.num_components:
            padding = rng.normal(0.0, 1e-4,
                                 size=(n, config.num_components - embedding.shape[1]))
            embedding = np.hstack([embedding, padding])
        embedding = embedding / (np.std(embedding, axis=0, keepdims=True) + _EPSILON) * 1e-2

        velocity = np.zeros_like(embedding)
        for iteration in range(config.num_iterations):
            exaggeration = (config.early_exaggeration
                            if iteration < config.exaggeration_iterations else 1.0)
            distances = _pairwise_squared_distances(embedding)
            student = 1.0 / (1.0 + distances)
            np.fill_diagonal(student, 0.0)
            q = np.maximum(student / student.sum(), _EPSILON)

            difference = exaggeration * joint - q
            gradient = np.zeros_like(embedding)
            weighted = difference * student
            gradient = 4.0 * ((np.diag(weighted.sum(axis=1)) - weighted) @ embedding)

            velocity = config.momentum * velocity - config.learning_rate * gradient
            embedding = embedding + velocity
            embedding = embedding - embedding.mean(axis=0, keepdims=True)
        return embedding


def kl_divergence(data: np.ndarray, embedding: np.ndarray, perplexity: float = 30.0) -> float:
    """KL divergence between the high- and low-dimensional affinities."""
    joint = _joint_probabilities(np.asarray(data, dtype=np.float64), perplexity)
    distances = _pairwise_squared_distances(np.asarray(embedding, dtype=np.float64))
    student = 1.0 / (1.0 + distances)
    np.fill_diagonal(student, 0.0)
    q = np.maximum(student / student.sum(), _EPSILON)
    return float(np.sum(joint * np.log(joint / q)))
