"""Principal component analysis for dimensionality reduction."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError


class PCA:
    """Principal component analysis via the SVD of the centered data matrix."""

    def __init__(self, num_components: int = 2) -> None:
        if num_components <= 0:
            raise ValueError("num_components must be positive")
        self.num_components = num_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Learn the principal axes of ``data`` (rows are samples)."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be 2-dimensional")
        if self.num_components > min(data.shape):
            raise ValueError(
                f"num_components={self.num_components} exceeds min(data.shape)={min(data.shape)}"
            )
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        _, singular_values, v_transposed = np.linalg.svd(centered, full_matrices=False)
        self.components_ = v_transposed[: self.num_components]
        variance = singular_values ** 2
        total = variance.sum()
        ratio = variance / total if total > 0 else np.zeros_like(variance)
        self.explained_variance_ratio_ = ratio[: self.num_components]
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``data`` onto the learned principal axes."""
        if self.mean_ is None or self.components_ is None:
            raise NotFittedError("PCA.fit must be called before transform")
        data = np.asarray(data, dtype=np.float64)
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Equivalent to ``fit(data).transform(data)``."""
        return self.fit(data).transform(data)
