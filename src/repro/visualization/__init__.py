"""Visualization substrate: PCA and exact t-SNE (Figure 1)."""

from repro.visualization.projection import PCA
from repro.visualization.tsne import TSNE, TSNEConfig, kl_divergence

__all__ = ["PCA", "TSNE", "TSNEConfig", "kl_divergence"]
