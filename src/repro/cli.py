"""Command-line interface.

Exposes the most common workflows without writing Python::

    python -m repro datasets                       # list benchmarks + statistics
    python -m repro run --dataset amazon_google --selector battleship \
        --iterations 3 --budget 20 --scale tiny    # one active-learning campaign
    python -m repro full --dataset amazon_google --scale tiny
    python -m repro export --dataset wdc_cameras --output ./wdc_cameras_csv
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.active.loop import ActiveLearningLoop
from repro.active.selectors import (
    BattleshipSelector,
    CommitteeSelector,
    EntropySelector,
    RandomSelector,
    Selector,
)
from repro.baselines.full_training import train_full_matcher
from repro.config import available_scales
from repro.data.io import export_dataset
from repro.datasets.registry import available_benchmarks, load_benchmark
from repro.evaluation.reporting import format_table
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig

_SELECTORS = {
    "battleship": lambda args: BattleshipSelector(alpha=args.alpha, beta=args.beta),
    "dal": lambda args: EntropySelector(),
    "dial": lambda args: CommitteeSelector(),
    "random": lambda args: RandomSelector(),
}


def _matcher_config(args: argparse.Namespace) -> MatcherConfig:
    return MatcherConfig(hidden_dims=(96, 48), epochs=args.epochs, batch_size=16,
                         learning_rate=2e-3, random_state=args.seed)


def _featurizer_config() -> FeaturizerConfig:
    return FeaturizerConfig(hash_dim=128)


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the battleship approach to low-resource entity matching",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="List the available benchmarks")
    datasets.add_argument("--scale", default="tiny", choices=available_scales())
    datasets.add_argument("--seed", type=int, default=7)

    run = subparsers.add_parser("run", help="Run one active-learning campaign")
    run.add_argument("--dataset", required=True, choices=available_benchmarks())
    run.add_argument("--selector", default="battleship", choices=sorted(_SELECTORS))
    run.add_argument("--scale", default="tiny", choices=available_scales())
    run.add_argument("--iterations", type=int, default=3)
    run.add_argument("--budget", type=int, default=20)
    run.add_argument("--seed-size", type=int, default=None)
    run.add_argument("--alpha", type=float, default=0.5)
    run.add_argument("--beta", type=float, default=0.5)
    run.add_argument("--epochs", type=int, default=8)
    run.add_argument("--no-weak-supervision", action="store_true")
    run.add_argument("--seed", type=int, default=7)

    full = subparsers.add_parser("full", help="Train the Full D reference model")
    full.add_argument("--dataset", required=True, choices=available_benchmarks())
    full.add_argument("--scale", default="tiny", choices=available_scales())
    full.add_argument("--epochs", type=int, default=8)
    full.add_argument("--seed", type=int, default=7)

    export = subparsers.add_parser("export", help="Export a benchmark as CSV files")
    export.add_argument("--dataset", required=True, choices=available_benchmarks())
    export.add_argument("--scale", default="tiny", choices=available_scales())
    export.add_argument("--output", required=True)
    export.add_argument("--seed", type=int, default=7)

    return parser


def _command_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in available_benchmarks():
        dataset = load_benchmark(name, scale=args.scale, random_state=args.seed)
        rows.append(dataset.statistics().as_row())
    print(format_table(rows, title=f"Available benchmarks (scale={args.scale})"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    dataset = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    selector: Selector = _SELECTORS[args.selector](args)
    loop = ActiveLearningLoop(
        dataset=dataset,
        selector=selector,
        matcher_config=_matcher_config(args),
        featurizer_config=_featurizer_config(),
        iterations=args.iterations,
        budget_per_iteration=args.budget,
        seed_size=args.seed_size if args.seed_size is not None else args.budget,
        weak_supervision="off" if args.no_weak_supervision else "selector",
        random_state=args.seed,
    )
    result = loop.run()
    print(format_table(result.as_rows(),
                       title=f"{args.selector} on {args.dataset} (scale={args.scale})"))
    curve = result.learning_curve()
    print(f"\nfinal F1: {curve.final_f1 * 100:.2f}%   AUC: {curve.auc():.2f}")
    return 0


def _command_full(args: argparse.Namespace) -> int:
    dataset = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    result = train_full_matcher(dataset, _matcher_config(args), _featurizer_config())
    print(f"Full D on {args.dataset} (scale={args.scale}): "
          f"{result.num_training_labels} training labels, "
          f"F1={result.f1 * 100:.2f}%  precision={result.test_metrics.precision * 100:.2f}%  "
          f"recall={result.test_metrics.recall * 100:.2f}%")
    return 0


def _command_export(args: argparse.Namespace) -> int:
    dataset = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    written = export_dataset(dataset, args.output)
    for name, path in written.items():
        print(f"{name}: {path}")
    return 0


_COMMANDS = {
    "datasets": _command_datasets,
    "run": _command_run,
    "full": _command_full,
    "export": _command_export,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
