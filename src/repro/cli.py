"""Command-line interface.

Exposes the most common workflows without writing Python::

    python -m repro datasets                       # list benchmarks + statistics
    python -m repro run --dataset amazon_google --selector battleship \
        --iterations 3 --budget 20 --scale tiny    # one active-learning campaign
    python -m repro full --dataset amazon_google --scale tiny
    python -m repro export --dataset wdc_cameras --output ./wdc_cameras_csv
    python -m repro experiments --scale tiny --jobs 4 --store ./artifacts \
        --figure 5 --table 5                       # (parallel, resumable) harness
    python -m repro scenarios --scale tiny --jobs 4 --store ./artifacts \
        --datasets amazon_google --scenarios perfect,noisy-0.1,abstaining
    python -m repro manifest lint examples/campaign.toml
    python -m repro manifest build examples/campaign.toml --jobs 2 \
        --store ./artifacts
    python -m repro manifest versions examples/campaign.toml
    python -m repro lint-code src                  # determinism/spawn-safety lint
    python -m repro lint-code src --format json    # CI artifact document
    python -m repro lint-code --list-rules         # rule catalog + history
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Sequence

from repro.active.loop import ActiveLearningLoop
from repro.analysis.baseline import DEFAULT_BASELINE_NAME
from repro.active.selectors import (
    BattleshipSelector,
    CommitteeSelector,
    EntropySelector,
    RandomSelector,
    Selector,
)
from repro.baselines.full_training import train_full_matcher
from repro.config import available_scales
from repro.data.io import export_dataset
from repro.datasets.registry import available_benchmarks, load_benchmark
from repro.evaluation.reporting import format_table
from repro.experiments.configs import ExperimentSettings, default_settings
from repro.experiments.engine import (
    ACTIVE_LEARNING_METHODS,
    ExperimentEngine,
    ParallelExecutor,
    SerialExecutor,
)
from repro.experiments.store import ArtifactStore
from repro.exceptions import ManifestError
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig
from repro.scenarios import available_scenarios, get_scenario, resolve_scenarios

_SELECTORS = {
    "battleship": lambda args: BattleshipSelector(alpha=args.alpha, beta=args.beta),
    "dal": lambda args: EntropySelector(),
    "dial": lambda args: CommitteeSelector(),
    "random": lambda args: RandomSelector(),
}

#: Figures/tables the ``experiments`` subcommand can (re)build.
_EXPERIMENT_FIGURES = (5, 6, 7, 8, 9, 10)
_EXPERIMENT_TABLES = (3, 4, 5, 6)


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    """The shared fault-tolerance flags of the sweep subcommands."""
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="Max attempts per job (default: fail fast; "
                             "transient failures retry with deterministic "
                             "backoff)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="Per-job wall-clock timeout; a timed-out job "
                             "counts as a transient failure (needs --jobs "
                             ">= 2 for process isolation)")
    parser.add_argument("--keep-going", action="store_true",
                        help="Record permanent failures in the failure "
                             "ledger and keep executing sibling jobs "
                             "instead of aborting the sweep")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="Deterministic fault injection for tests/CI: "
                             "comma-separated KIND[=VALUE][@RANK][:ATTEMPT] "
                             "directives (kinds: raise, permanent, kill, "
                             "hang, torn); also honored from the "
                             "REPRO_CHAOS environment variable")


def _fault_tolerance(args: argparse.Namespace, base_policy=None,
                     base_keep_going: bool = False):
    """Resolve the flags (plus a manifest's [execution] base) to
    ``(retry_policy, keep_going, injector)``.

    CLI flags override the manifest's declared policy field by field; any
    fault-tolerance request (flags, manifest section, chaos spec) implies a
    policy so the executor runs in fault-tolerant mode.
    """
    from repro.experiments.faults import FaultInjector, RetryPolicy

    injector = (FaultInjector.from_spec(args.chaos)
                if args.chaos else FaultInjector.from_environment())
    policy = base_policy
    keep_going = base_keep_going or args.keep_going
    if args.retries is not None or args.timeout is not None:
        base = policy if policy is not None else RetryPolicy()
        policy = replace(
            base,
            max_attempts=(args.retries if args.retries is not None
                          else base.max_attempts),
            timeout=(args.timeout if args.timeout is not None
                     else base.timeout),
        )
    if policy is None and (keep_going or injector is not None):
        policy = RetryPolicy()
    return policy, keep_going, injector


def _make_executor(jobs: int, retry_policy=None, keep_going: bool = False,
                   injector=None) -> SerialExecutor | ParallelExecutor:
    """An executor for ``jobs`` workers with optional fault tolerance.

    ParallelExecutor validates the job count, so --jobs 0 fails loudly
    instead of silently degrading to serial execution.
    """
    if jobs == 1:
        return SerialExecutor(retry_policy=retry_policy,
                              keep_going=keep_going, injector=injector)
    return ParallelExecutor(jobs=jobs, retry_policy=retry_policy,
                            keep_going=keep_going, injector=injector)


def _matcher_config(args: argparse.Namespace,
                    settings: ExperimentSettings) -> MatcherConfig:
    """The harness matcher configuration, with CLI overrides applied.

    Deriving from :class:`ExperimentSettings` keeps one-off CLI campaigns
    comparable with harness runs — same architecture, same optimizer knobs.
    """
    config = settings.matcher_config
    if args.epochs is not None:
        config = replace(config, epochs=args.epochs)
    return config


def _featurizer_config(settings: ExperimentSettings) -> FeaturizerConfig:
    return settings.featurizer_config


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the battleship approach to low-resource entity matching",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="List the available benchmarks")
    datasets.add_argument("--scale", default="tiny", choices=available_scales())
    datasets.add_argument("--seed", type=int, default=7)

    run = subparsers.add_parser("run", help="Run one active-learning campaign")
    run.add_argument("--dataset", required=True, choices=available_benchmarks())
    run.add_argument("--selector", default="battleship", choices=sorted(_SELECTORS))
    run.add_argument("--scale", default="tiny", choices=available_scales())
    run.add_argument("--iterations", type=int, default=3)
    run.add_argument("--budget", type=int, default=20)
    run.add_argument("--seed-size", type=int, default=None)
    run.add_argument("--alpha", type=float, default=0.5)
    run.add_argument("--beta", type=float, default=0.5)
    run.add_argument("--epochs", type=int, default=None,
                     help="Matcher training epochs (default: the harness setting)")
    run.add_argument("--no-weak-supervision", action="store_true")
    run.add_argument("--seed", type=int, default=7)

    full = subparsers.add_parser("full", help="Train the Full D reference model")
    full.add_argument("--dataset", required=True, choices=available_benchmarks())
    full.add_argument("--scale", default="tiny", choices=available_scales())
    full.add_argument("--epochs", type=int, default=None,
                      help="Matcher training epochs (default: the harness setting)")
    full.add_argument("--seed", type=int, default=7)

    export = subparsers.add_parser("export", help="Export a benchmark as CSV files")
    export.add_argument("--dataset", required=True, choices=available_benchmarks())
    export.add_argument("--scale", default="tiny", choices=available_scales())
    export.add_argument("--output", required=True)
    export.add_argument("--seed", type=int, default=7)

    experiments = subparsers.add_parser(
        "experiments",
        help="Run the paper's figure/table sweeps through the job engine")
    experiments.add_argument("--scale", default="tiny", choices=available_scales())
    experiments.add_argument("--jobs", type=int, default=1,
                             help="Worker processes (1 = serial execution)")
    experiments.add_argument("--store", default=None, metavar="DIR",
                             help="Artifact directory; completed runs are "
                                  "persisted there and skipped on re-execution")
    experiments.add_argument("--figure", type=int, action="append", default=None,
                             choices=_EXPERIMENT_FIGURES, metavar="N",
                             help=f"Figure to build {_EXPERIMENT_FIGURES} (repeatable)")
    experiments.add_argument("--table", type=int, action="append", default=None,
                             choices=_EXPERIMENT_TABLES, metavar="N",
                             help=f"Table to build {_EXPERIMENT_TABLES} (repeatable)")
    experiments.add_argument("--datasets", nargs="+", default=None,
                             choices=available_benchmarks(),
                             help="Restrict the sweep to these benchmarks")
    experiments.add_argument("--methods", nargs="+", default=None,
                             choices=ACTIVE_LEARNING_METHODS,
                             help="Restrict learning-curve sweeps to these methods")
    experiments.add_argument("--dry-run", action="store_true",
                             help="Enumerate the RunSpec grid (count + "
                                  "fingerprints) without executing anything")
    _add_fault_args(experiments)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="Sweep a robustness scenario grid through the job engine")
    scenarios.add_argument("--list", action="store_true", dest="list_scenarios",
                           help="List the registered scenarios and exit")
    scenarios.add_argument("--scale", default="tiny", choices=available_scales())
    scenarios.add_argument("--jobs", type=int, default=1,
                           help="Worker processes (1 = serial execution)")
    scenarios.add_argument("--store", default=None, metavar="DIR",
                           help="Artifact directory; completed runs are "
                                "persisted there and skipped on re-execution")
    scenarios.add_argument("--datasets", nargs="+", default=None,
                           choices=available_benchmarks(),
                           help="Restrict the sweep to these benchmarks")
    scenarios.add_argument("--scenarios", nargs="+", default=None,
                           metavar="NAME[,NAME...]",
                           help="Scenario names (space- or comma-separated; "
                                "default: every registered scenario)")
    scenarios.add_argument("--methods", nargs="+", default=None,
                           choices=ACTIVE_LEARNING_METHODS,
                           help="Restrict the sweep to these selectors")
    _add_fault_args(scenarios)

    manifest = subparsers.add_parser(
        "manifest",
        help="Lint, build, or version a declarative experiment manifest")
    manifest_sub = manifest.add_subparsers(dest="manifest_command",
                                           required=True)

    manifest_lint = manifest_sub.add_parser(
        "lint",
        help="Validate a manifest, reporting every issue with its location")
    manifest_lint.add_argument("path", help="Manifest file (.toml or .json)")

    manifest_build = manifest_sub.add_parser(
        "build",
        help="Expand a manifest into its RunSpec grid and execute it")
    manifest_build.add_argument("path", help="Manifest file (.toml or .json)")
    manifest_build.add_argument("--jobs", type=int, default=1,
                                help="Worker processes (1 = serial execution)")
    manifest_build.add_argument("--store", default=None, metavar="DIR",
                                help="Artifact directory; completed runs are "
                                     "persisted there and skipped on "
                                     "re-execution")
    manifest_build.add_argument("--dry-run", action="store_true",
                                help="Print the expanded grid (count + "
                                     "fingerprints) without executing")
    manifest_build.add_argument("--ignore-lockfile", action="store_true",
                                help="Execute even when the lockfile pins "
                                     "have drifted")
    _add_fault_args(manifest_build)

    manifest_versions = manifest_sub.add_parser(
        "versions",
        help="Pin the manifest's referenced definitions into a lockfile")
    manifest_versions.add_argument("path",
                                   help="Manifest file (.toml or .json)")
    manifest_versions.add_argument("--update", action="store_true",
                                   help="Rewrite a drifted lockfile instead "
                                        "of failing")

    lint_code = subparsers.add_parser(
        "lint-code",
        help="Run the reprolint determinism/spawn-safety analyzer")
    lint_code.add_argument("paths", nargs="*", default=["src"],
                           help="Files or directories to lint (default: src)")
    lint_code.add_argument("--select", action="append", default=None,
                           metavar="RULE[,RULE...]",
                           help="Run only these rules (repeatable, "
                                "comma-separable)")
    lint_code.add_argument("--ignore", action="append", default=None,
                           metavar="RULE[,RULE...]",
                           help="Skip these rules (repeatable, "
                                "comma-separable)")
    lint_code.add_argument("--format", default="human",
                           choices=("human", "json"), dest="output_format",
                           help="Report format (json is the CI artifact "
                                "document)")
    lint_code.add_argument("--baseline", default=None, metavar="FILE",
                           help="Baseline of grandfathered findings "
                                f"(default: ./{DEFAULT_BASELINE_NAME} when "
                                "present)")
    lint_code.add_argument("--no-baseline", action="store_true",
                           help="Report every finding, ignoring any baseline")
    lint_code.add_argument("--write-baseline", action="store_true",
                           help="Rewrite the baseline to cover every current "
                                "finding, then exit 0")
    lint_code.add_argument("--list-rules", action="store_true",
                           dest="list_rules",
                           help="Print the rule catalog (code, summary, the "
                                "historical bug behind it) and exit")

    return parser


def _command_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in available_benchmarks():
        dataset = load_benchmark(name, scale=args.scale, random_state=args.seed)
        rows.append(dataset.statistics().as_row())
    print(format_table(rows, title=f"Available benchmarks (scale={args.scale})"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    settings = default_settings(args.scale)
    dataset = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    selector: Selector = _SELECTORS[args.selector](args)
    loop = ActiveLearningLoop(
        dataset=dataset,
        selector=selector,
        matcher_config=_matcher_config(args, settings),
        featurizer_config=_featurizer_config(settings),
        iterations=args.iterations,
        budget_per_iteration=args.budget,
        seed_size=args.seed_size if args.seed_size is not None else args.budget,
        weak_supervision="off" if args.no_weak_supervision else "selector",
        random_state=args.seed,
    )
    result = loop.run()
    print(format_table(result.as_rows(),
                       title=f"{args.selector} on {args.dataset} (scale={args.scale})"))
    curve = result.learning_curve()
    print(f"\nfinal F1: {curve.final_f1 * 100:.2f}%   AUC: {curve.auc():.2f}")
    return 0


def _command_full(args: argparse.Namespace) -> int:
    settings = default_settings(args.scale)
    dataset = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    result = train_full_matcher(dataset, _matcher_config(args, settings),
                                _featurizer_config(settings))
    print(f"Full D on {args.dataset} (scale={args.scale}): "
          f"{result.num_training_labels} training labels, "
          f"F1={result.f1 * 100:.2f}%  precision={result.test_metrics.precision * 100:.2f}%  "
          f"recall={result.test_metrics.recall * 100:.2f}%")
    return 0


def _command_export(args: argparse.Namespace) -> int:
    dataset = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    written = export_dataset(dataset, args.output)
    for name, path in written.items():
        print(f"{name}: {path}")
    return 0


def _curve_rows(curves) -> list[dict[str, object]]:
    """Flatten dataset → method → LearningCurve into printable rows."""
    rows: list[dict[str, object]] = []
    for dataset_name, methods in curves.items():
        for method, curve in methods.items():
            for labeled, f1 in zip(curve.labeled_counts, curve.f1_scores):
                rows.append({"dataset": dataset_name, "method": method,
                             "labeled": labeled, "f1": round(f1 * 100, 2)})
    return rows


def _command_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import figures, tables

    settings = default_settings(
        args.scale, datasets=tuple(args.datasets) if args.datasets else None)
    policy, keep_going, injector = _fault_tolerance(args)
    executor = _make_executor(args.jobs, policy, keep_going, injector)
    store = ArtifactStore(args.store) if args.store else None
    dry_run = getattr(args, "dry_run", False)
    engine = ExperimentEngine(settings, executor=executor, store=store,
                              plan_only=dry_run)
    # A dry run enumerates every grid through the plan-only engine; the
    # builders' placeholder outputs are meaningless, so only the plan prints.
    emit = (lambda text: None) if dry_run else print

    requested_figures = tuple(dict.fromkeys(args.figure or ()))
    requested_tables = tuple(dict.fromkeys(args.table or ()))
    if not requested_figures and not requested_tables:
        requested_figures, requested_tables = (5,), (4, 5)
    methods = tuple(args.methods) if args.methods else ACTIVE_LEARNING_METHODS
    # Figures 7-10 default to the paper's ablation datasets; an explicit
    # --datasets restriction overrides that too.
    ablation_kwargs = ({"dataset_names": tuple(args.datasets)}
                       if args.datasets else {})

    # The learning-curve grid feeds Figure 5 and Tables 4/5; run it once.
    curves = None
    if 5 in requested_figures or {4, 5} & set(requested_tables):
        curves = figures.figure5_learning_curves(settings, methods=methods,
                                                 engine=engine)

    for number in requested_figures:
        if number == 5:
            emit(format_table(_curve_rows(curves),
                              title="Figure 5 — learning curves"))
        elif number == 6:
            # figure6_runtime guards its own timings: with --jobs > 1 or a
            # --store it re-measures through a serial, store-less engine
            # (warning) and hands the fresh results back to ``engine``.
            emit(format_table(figures.figure6_runtime(settings, engine=engine),
                              title="Figure 6 — selection runtime"))
        elif number == 7:
            rows = figures.figure7_rows(
                figures.figure7_beta_ablation(settings, engine=engine,
                                              **ablation_kwargs))
            emit(format_table(rows, title="Figure 7 — β ablation"))
        elif number == 8:
            emit(format_table(
                figures.figure8_correspondence(settings, engine=engine,
                                               **ablation_kwargs),
                title="Figure 8 — correspondence effect"))
        elif number == 9:
            emit(format_table(
                figures.figure9_weak_supervision(settings, engine=engine,
                                                 **ablation_kwargs),
                title="Figure 9 — weak supervision"))
        elif number == 10:
            emit(format_table(
                figures.figure10_ws_method(settings, engine=engine,
                                           **ablation_kwargs),
                title="Figure 10 — weak-supervision method"))

    for number in requested_tables:
        if number == 3:
            if dry_run:
                # Table 3 generates datasets to measure them — exactly the
                # side effect a dry run promises not to have.
                continue
            print(format_table(tables.table3_dataset_statistics(settings),
                               title="Table 3 — dataset statistics"))
        elif number == 4:
            emit(format_table(
                tables.table4_f1_by_budget(curves, settings,
                                           include_reference_models=False),
                title="Table 4 — F1 at labeled-budget checkpoints"))
        elif number == 5:
            emit(format_table(tables.table5_auc(curves),
                              title="Table 5 — learning-curve AUC"))
        elif number == 6:
            emit(format_table(tables.table6_alpha_ablation(settings,
                                                           engine=engine),
                              title="Table 6 — α ablation"))

    if dry_run:
        print(_dry_run_summary(engine, args.store))
    else:
        print(_engine_report_line(engine, args.store))
    return 1 if engine.total_report.failed else 0


def _dry_run_summary(engine: ExperimentEngine, store_path: str | None) -> str:
    """The dry-run closing block: planned count plus one line per job."""
    planned = engine.planned_specs()
    cached = engine.planned_cached_specs()
    store_note = (f" ({len(cached)} already in store {store_path})"
                  if store_path else "")
    lines = [f"dry-run: {len(planned)} runs would execute{store_note}"]
    for spec in planned:
        lines.append(f"  {spec.fingerprint()}  {spec.dataset} {spec.method} "
                     f"scenario={spec.scenario} seed={spec.seed} "
                     f"alpha={spec.alpha:g} beta={spec.beta:g} "
                     f"ws={spec.weak_supervision}")
    return "\n".join(lines)


def _engine_report_line(engine: ExperimentEngine, store_path: str | None) -> str:
    """The harness' closing summary line (greppable by the CI smoke jobs).

    The ``executed``/``loaded`` prefix is pinned (CI greps it); the retry
    and failure notes are appended only when nonzero, so fault-free runs
    print exactly what they always did.
    """
    report = engine.total_report
    store_note = f"  store={store_path}" if store_path else ""
    memory_note = (f", {report.from_memory} reused in-memory"
                   if report.from_memory else "")
    retry_note = f", {report.retried} retried" if report.retried else ""
    failed_note = f", {report.failed} failed" if report.failed else ""
    line = (f"\nengine: {report.executed} runs executed, "
            f"{report.from_store} loaded from store"
            f"{memory_note}{retry_note}{failed_note}{store_note}")
    if report.failed and store_path:
        from repro.experiments.faults import ledger_path
        line += (f"\nfailures: {report.failed} permanent failure(s) "
                 f"recorded in {ledger_path(store_path)}; a re-run with the "
                 "same store retries exactly these jobs")
    return line


def _command_scenarios(args: argparse.Namespace) -> int:
    from repro.experiments import robustness

    if args.list_scenarios:
        rows = [get_scenario(name).as_row() for name in available_scenarios()]
        print(format_table(rows, title="Registered scenarios"))
        return 0

    scenarios = resolve_scenarios(args.scenarios)
    settings = default_settings(
        args.scale, datasets=tuple(args.datasets) if args.datasets else None)
    policy, keep_going, injector = _fault_tolerance(args)
    executor = _make_executor(args.jobs, policy, keep_going, injector)
    store = ArtifactStore(args.store) if args.store else None
    engine = ExperimentEngine(settings, executor=executor, store=store)
    methods = tuple(args.methods) if args.methods else ACTIVE_LEARNING_METHODS

    curves = robustness.robustness_curves(
        settings, dataset_names=settings.datasets, scenarios=scenarios,
        methods=methods, engine=engine)
    print(format_table(robustness.robustness_rows(curves),
                       title="Robustness — F1 per scenario and selector"))
    sensitivity = robustness.noise_sensitivity_rows(curves)
    if sensitivity:
        print(format_table(sensitivity,
                           title="Robustness — F1 drop vs. the perfect scenario"))
    print(_engine_report_line(engine, args.store))
    return 1 if engine.total_report.failed else 0


def _manifest_lint(args: argparse.Namespace) -> int:
    from repro.manifests import expand_run_specs, lint_manifest, load_manifest

    source = load_manifest(args.path)
    report = lint_manifest(source)
    for issue in report.issues:
        print(issue.render())
    if not report.ok:
        print(f"{source.display_path}: {len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
        return 1
    # Expansion is pure (no datasets, no store), so lint can report the
    # grid size the manifest declares.
    specs = expand_run_specs(report.document)
    print(f"{source.display_path}: OK — {len(specs)} runs, "
          f"{len(report.warnings)} warning(s)")
    return 0


def _manifest_build(args: argparse.Namespace) -> int:
    from repro.manifests import (
        build_manifest,
        build_retry_policy,
        compute_lockfile,
        load_manifest,
        lockfile_drift,
        lockfile_path,
        read_lockfile,
    )

    source = load_manifest(args.path)
    document, settings, specs = build_manifest(source)
    manifest_policy, manifest_keep_going = build_retry_policy(document)

    lock_path = lockfile_path(args.path)
    if lock_path.exists() and not args.ignore_lockfile:
        drift = lockfile_drift(read_lockfile(lock_path),
                               compute_lockfile(document, settings, specs))
        if drift:
            print(f"{lock_path}: lockfile drift detected — the manifest's "
                  "referenced definitions changed since the pins were "
                  "written:")
            for line in drift:
                print(f"  {line}")
            print("Re-pin with 'repro manifest versions --update' or build "
                  "with --ignore-lockfile.")
            return 1

    policy, keep_going, injector = _fault_tolerance(
        args, base_policy=manifest_policy,
        base_keep_going=manifest_keep_going)
    executor = _make_executor(args.jobs, policy, keep_going, injector)
    store = ArtifactStore(args.store) if args.store else None
    engine = ExperimentEngine(settings, executor=executor, store=store,
                              plan_only=args.dry_run,
                              manifest_id=document.manifest_id())
    results = engine.run(specs)
    if args.dry_run:
        print(_dry_run_summary(engine, args.store))
        return 0

    # Under --keep-going a permanently failed spec has no result; its row
    # is simply absent (the report and ledger account for it).
    rows = [{
        "dataset": spec.dataset,
        "method": spec.method,
        "scenario": spec.scenario,
        "seed": spec.seed,
        "alpha": spec.alpha,
        "final_f1": round(results[spec].final_f1 * 100, 2),
    } for spec in specs if spec in results]
    print(format_table(
        rows, title=f"Manifest {document.manifest_id()} — {len(specs)} runs"))
    print(_engine_report_line(engine, args.store))
    return 1 if engine.total_report.failed else 0


def _manifest_versions(args: argparse.Namespace) -> int:
    from repro.manifests import (
        build_manifest,
        compute_lockfile,
        load_manifest,
        lockfile_drift,
        lockfile_path,
        read_lockfile,
        write_lockfile,
    )

    source = load_manifest(args.path)
    document, settings, specs = build_manifest(source)
    current = compute_lockfile(document, settings, specs)
    lock_path = lockfile_path(args.path)
    if not lock_path.exists():
        write_lockfile(lock_path, current)
        print(f"wrote {lock_path} ({len(specs)} runs pinned)")
        return 0
    drift = lockfile_drift(read_lockfile(lock_path), current)
    if not drift:
        print(f"{lock_path}: up to date")
        return 0
    if args.update:
        write_lockfile(lock_path, current)
        print(f"updated {lock_path}:")
        for line in drift:
            print(f"  {line}")
        return 0
    print(f"{lock_path}: drift detected (re-pin with --update):")
    for line in drift:
        print(f"  {line}")
    return 1


def _split_rule_args(values: list[str] | None) -> list[str] | None:
    """Flatten repeatable, comma-separable rule options into one list."""
    if values is None:
        return None
    return [code.strip() for value in values for code in value.split(",")
            if code.strip()]


def _command_lint_code(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import lint_paths, rule_catalog, write_baseline
    from repro.exceptions import ConfigurationError

    if args.list_rules:
        rows = rule_catalog()
        print(format_table(rows, title="reprolint rules"))
        return 0

    if args.no_baseline and (args.baseline or args.write_baseline):
        print("--no-baseline cannot be combined with --baseline/"
              "--write-baseline", file=sys.stderr)
        return 2

    baseline_path: Path | None
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        default = Path.cwd() / DEFAULT_BASELINE_NAME
        baseline_path = default if (default.exists()
                                    or args.write_baseline) else None

    try:
        report = lint_paths(
            args.paths,
            select=_split_rule_args(args.select),
            ignore=_split_rule_args(args.ignore),
            baseline_path=None if args.write_baseline else baseline_path,
        )
    except ConfigurationError as error:
        print(error, file=sys.stderr)
        return 2

    if args.write_baseline:
        assert baseline_path is not None
        write_baseline(baseline_path, report.baseline_entries())
        print(f"wrote {baseline_path} "
              f"({len(report.baseline_entries())} finding(s) baselined)")
        return 0

    if args.output_format == "json":
        print(report.render_json())
    else:
        print(report.render_human())
    return 0 if report.ok and not report.stale_baseline else 1


_MANIFEST_COMMANDS = {
    "lint": _manifest_lint,
    "build": _manifest_build,
    "versions": _manifest_versions,
}


def _command_manifest(args: argparse.Namespace) -> int:
    try:
        return _MANIFEST_COMMANDS[args.manifest_command](args)
    except ManifestError as error:
        print(error, file=sys.stderr)
        return 1


_COMMANDS = {
    "datasets": _command_datasets,
    "run": _command_run,
    "full": _command_full,
    "export": _command_export,
    "experiments": _command_experiments,
    "scenarios": _command_scenarios,
    "manifest": _command_manifest,
    "lint-code": _command_lint_code,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
