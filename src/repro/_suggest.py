"""Shared formatting for "unknown name" lookup errors.

Every registry of the package (benchmarks, scenarios, selectors, scales,
pool transforms, weak-supervision modes) rejects unknown keys.  The manifest
linter surfaces those messages directly to users editing TOML files, so the
message must carry everything needed to fix the typo: the full list of valid
names plus, when the unknown key is close to a valid one, an explicit
suggestion.
"""

from __future__ import annotations

import difflib
from typing import Iterable


def unknown_name_message(kind: str, name: object, available: Iterable[object]) -> str:
    """Error text for a failed ``name`` lookup among ``available`` ``kind``s.

    Lists every valid name (sorted, so the message is deterministic) and adds
    a "did you mean" hint when the unknown key is a near-miss.
    """
    options = sorted(str(option) for option in available)
    listing = ", ".join(options) if options else "(none registered)"
    matches = difflib.get_close_matches(str(name), options, n=2, cutoff=0.6)
    if matches:
        hint = " or ".join(repr(match) for match in matches)
        return (f"Unknown {kind} {name!r}; did you mean {hint}? "
                f"Available: {listing}")
    return f"Unknown {kind} {name!r}; available: {listing}"
