"""Builders for the paper's tables (3, 4, 5, 6).

Each function returns a list of flat row dictionaries (ready for
:func:`repro.evaluation.reporting.format_table`) and, where the paper reports
numbers, includes them next to the measured values.
"""

from __future__ import annotations

from repro.baselines.full_training import evaluate_zeroer, train_full_matcher
from repro.datasets.registry import PAPER_STATISTICS
from repro.evaluation.curves import LearningCurve
from repro.experiments.configs import ExperimentSettings, default_settings
from repro.experiments.engine import ExperimentEngine
from repro.experiments.paper_values import TABLE4_F1, TABLE5_AUC, TABLE6_ALPHA_F1
from repro.experiments.runner import (
    enumerate_run_specs,
    get_dataset,
    run_curve_grid,
)


def table3_dataset_statistics(settings: ExperimentSettings | None = None) -> list[dict[str, object]]:
    """Table 3: dataset statistics (paper sizes next to generated sizes)."""
    settings = settings or default_settings()
    rows: list[dict[str, object]] = []
    for name in settings.datasets:
        dataset = get_dataset(name, settings)
        stats = dataset.statistics()
        paper = PAPER_STATISTICS[name]
        rows.append({
            "dataset": name,
            "paper_size": paper.train_size,
            "size": stats.num_train_pairs,
            "paper_pos": round(paper.positive_rate * 100, 1),
            "pos": round(stats.positive_rate * 100, 1),
            "paper_atts": paper.num_attributes,
            "atts": stats.num_attributes,
        })
    return rows


def _paper_f1_at(method: str, dataset: str, checkpoint_key: int) -> float | None:
    entry = TABLE4_F1.get(method, {}).get(dataset)
    if isinstance(entry, dict):
        return entry.get(checkpoint_key)
    return entry


def table4_f1_by_budget(
    curves: dict[str, dict[str, LearningCurve]],
    settings: ExperimentSettings,
    include_reference_models: bool = True,
) -> list[dict[str, object]]:
    """Table 4: F1 at the mid and final labeled-sample checkpoints.

    ``curves`` maps dataset → method → learning curve (as produced by
    :func:`repro.experiments.runner.run_learning_curves`).  The mid / final
    checkpoints play the role of the paper's 500 / 900 labeled samples.
    """
    mid, final = settings.mid_checkpoint, settings.final_checkpoint
    rows: list[dict[str, object]] = []
    for dataset_name, methods in curves.items():
        for method, curve in methods.items():
            rows.append({
                "dataset": dataset_name,
                "method": method,
                "labels_mid": mid,
                "f1_mid": round(curve.f1_at(mid) * 100, 2),
                "paper_f1_500": _paper_f1_at(method, dataset_name, 500),
                "labels_final": final,
                "f1_final": round(curve.f1_at(final) * 100, 2),
                "paper_f1_900": _paper_f1_at(method, dataset_name, 900),
            })
        if include_reference_models:
            rows.extend(_reference_model_rows(dataset_name, settings))
    return rows


def _reference_model_rows(dataset_name: str,
                          settings: ExperimentSettings) -> list[dict[str, object]]:
    """Full D and ZeroER rows of Table 4 for one dataset."""
    dataset = get_dataset(dataset_name, settings)
    full = train_full_matcher(dataset, settings.matcher_config, settings.featurizer_config)
    zero = evaluate_zeroer(dataset, random_state=settings.base_random_seed)
    full_paper = TABLE4_F1["full_d"].get(dataset_name)
    zero_paper = TABLE4_F1["zeroer"].get(dataset_name)
    return [
        {
            "dataset": dataset_name, "method": "full_d",
            "labels_mid": full.num_training_labels,
            "f1_mid": round(full.f1 * 100, 2), "paper_f1_500": full_paper,
            "labels_final": full.num_training_labels,
            "f1_final": round(full.f1 * 100, 2), "paper_f1_900": full_paper,
        },
        {
            "dataset": dataset_name, "method": "zeroer",
            "labels_mid": 0, "f1_mid": round(zero.f1 * 100, 2),
            "paper_f1_500": zero_paper,
            "labels_final": 0, "f1_final": round(zero.f1 * 100, 2),
            "paper_f1_900": zero_paper,
        },
    ]


def table5_auc(curves: dict[str, dict[str, LearningCurve]]) -> list[dict[str, object]]:
    """Table 5: AUC of the F1 learning curve per dataset and method."""
    rows: list[dict[str, object]] = []
    for dataset_name, methods in curves.items():
        for method, curve in methods.items():
            paper_value = TABLE5_AUC.get(method, {}).get(dataset_name)
            rows.append({
                "dataset": dataset_name,
                "method": method,
                "auc": round(curve.auc(), 2),
                "paper_auc": paper_value,
            })
    return rows


def table6_alpha_ablation(
    settings: ExperimentSettings,
    dataset_names: tuple[str, ...] | None = None,
    alphas: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    engine: ExperimentEngine | None = None,
) -> list[dict[str, object]]:
    """Table 6: final battleship F1 for different α values (β fixed at 0.5)."""
    dataset_names = dataset_names or settings.datasets
    groups = {
        (dataset_name, alpha): enumerate_run_specs(
            dataset_name, "battleship", settings, alphas=(alpha,))
        for dataset_name in dataset_names
        for alpha in alphas
    }
    curves = run_curve_grid(groups, settings, engine)
    rows: list[dict[str, object]] = []
    for dataset_name in dataset_names:
        row: dict[str, object] = {"dataset": dataset_name}
        for alpha in alphas:
            curve = curves[(dataset_name, alpha)]
            row[f"alpha_{alpha}"] = round(curve.final_f1 * 100, 2)
            row[f"paper_{alpha}"] = TABLE6_ALPHA_F1.get(dataset_name, {}).get(alpha)
        rows.append(row)
    return rows
