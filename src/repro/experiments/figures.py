"""Builders for the paper's figures (1, 5, 6, 7, 8, 9, 10).

Figures are reproduced as data series (and summary rows) rather than plots:
each builder returns the numbers a plotting script would consume, and the
benchmark harness prints them so the shape can be compared with the paper.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.active.weak_supervision import WeakSupervisionMode
from repro.ann.exact import ExactNearestNeighbors
from repro.baselines.full_training import train_full_matcher
from repro.evaluation.curves import LearningCurve
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ABLATION_DATASETS, ExperimentSettings, default_settings
from repro.experiments.engine import ExperimentEngine, SerialExecutor
from repro.experiments.paper_values import (
    FIGURE7_BETA_F1,
    FIGURE8_CORRESPONDENCE,
    FIGURE9_WEAK_SUPERVISION,
    FIGURE10_WS_METHOD_AUC,
)
from repro.experiments.runner import (
    ACTIVE_LEARNING_METHODS,
    enumerate_run_specs,
    get_dataset,
    run_curve_grid,
    run_learning_curves,
    run_method,
)
from repro.neural.featurizer import PairFeaturizer
from repro.visualization.tsne import TSNE, TSNEConfig


def _resolve_settings(settings: ExperimentSettings | None,
                      engine: ExperimentEngine | None = None) -> ExperimentSettings:
    """Explicit settings win; otherwise reuse the engine's, else defaults."""
    if settings is not None:
        return settings
    return engine.settings if engine is not None else default_settings()


# --------------------------------------------------------------------------- #
# Figure 1 — latent-space concentration of match pairs
# --------------------------------------------------------------------------- #
@dataclass
class LatentSpaceReport:
    """Quantified version of Figure 1 for one dataset.

    The paper shows t-SNE scatter plots in which match pairs concentrate in a
    few regions.  The report captures that phenomenon numerically:

    * ``knn_label_agreement`` — fraction of each pair's nearest neighbours (in
      the full representation space) sharing its gold label; values well above
      the positive rate indicate concentration.
    * ``match_centroid_distance_ratio`` — mean distance of match pairs to the
      match centroid divided by the mean distance to the non-match centroid
      (< 1 means matches sit closer to their own centroid).
    * ``embedding`` / ``labels`` — the 2-D t-SNE coordinates for plotting.
    """

    dataset: str
    knn_label_agreement: float
    match_centroid_distance_ratio: float
    positive_rate: float
    embedding: np.ndarray = field(repr=False, default_factory=lambda: np.zeros((0, 2)))
    labels: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0, dtype=int))

    def as_row(self) -> dict[str, object]:
        return {
            "dataset": self.dataset,
            "knn_label_agreement": round(self.knn_label_agreement, 3),
            "positive_rate": round(self.positive_rate, 3),
            "match_centroid_ratio": round(self.match_centroid_distance_ratio, 3),
        }


def figure1_latent_space(
    dataset_name: str = "amazon_google",
    settings: ExperimentSettings | None = None,
    max_points: int = 400,
    num_neighbors: int = 10,
    run_tsne: bool = True,
) -> LatentSpaceReport:
    """Reproduce Figure 1: representations of a fully trained matcher cluster by label."""
    settings = settings or default_settings()
    dataset = get_dataset(dataset_name, settings)
    full = train_full_matcher(dataset, settings.matcher_config, settings.featurizer_config)

    featurizer = PairFeaturizer(settings.featurizer_config)
    indices = np.asarray(dataset.train_indices)
    rng = np.random.default_rng(settings.base_random_seed)
    if len(indices) > max_points:
        indices = rng.choice(indices, size=max_points, replace=False)
    features = featurizer.transform(dataset, indices)
    representations = full.matcher.embed(features)
    labels = dataset.labels(indices)

    # k-NN label agreement in the representation space.
    index = ExactNearestNeighbors().build(representations)
    neighbor_ids, _ = index.query(representations, k=min(num_neighbors, len(indices) - 1),
                                  exclude_self=True)
    agreement = float(np.mean(labels[neighbor_ids] == labels[:, None]))

    # Centroid distance ratio for match pairs.
    match_mask = labels == 1
    ratio = 1.0
    if match_mask.any() and (~match_mask).any():
        match_centroid = representations[match_mask].mean(axis=0)
        non_match_centroid = representations[~match_mask].mean(axis=0)
        to_match = np.linalg.norm(representations[match_mask] - match_centroid, axis=1).mean()
        to_non_match = np.linalg.norm(representations[match_mask] - non_match_centroid,
                                      axis=1).mean()
        ratio = float(to_match / to_non_match) if to_non_match > 0 else 1.0

    embedding = np.zeros((0, 2))
    if run_tsne and len(indices) >= 5:
        tsne = TSNE(TSNEConfig(num_iterations=150, perplexity=min(30.0, len(indices) / 4)),
                    random_state=settings.base_random_seed)
        embedding = tsne.fit_transform(representations)

    return LatentSpaceReport(
        dataset=dataset_name,
        knn_label_agreement=agreement,
        match_centroid_distance_ratio=ratio,
        positive_rate=float(np.mean(labels)),
        embedding=embedding,
        labels=labels,
    )


# --------------------------------------------------------------------------- #
# Figure 5 — learning curves of all methods on all datasets
# --------------------------------------------------------------------------- #
def figure5_learning_curves(
    settings: ExperimentSettings | None = None,
    dataset_names: tuple[str, ...] | None = None,
    methods: tuple[str, ...] | None = None,
    engine: ExperimentEngine | None = None,
) -> dict[str, dict[str, LearningCurve]]:
    """Reproduce Figure 5: F1 versus labeled samples per dataset and method."""
    settings = _resolve_settings(settings, engine)
    dataset_names = dataset_names or settings.datasets
    methods = methods or ACTIVE_LEARNING_METHODS
    return run_learning_curves(tuple(dataset_names), tuple(methods), settings,
                               engine=engine)


# --------------------------------------------------------------------------- #
# Figure 6 — battleship selection runtime per iteration
# --------------------------------------------------------------------------- #
def _measures_timings_faithfully(engine: ExperimentEngine) -> bool:
    """Whether runs resolved by ``engine`` yield trustworthy wall-clock timings.

    A warm store replays the timings recorded when the artifact was produced,
    and parallel workers contend for cores — either way the measured
    ``selection_seconds`` no longer describe this machine running one job.
    A plan-only engine never measures anything, so there is nothing to
    re-measure — spawning a real timing engine would defeat the dry run.
    """
    if getattr(engine, "plan_only", False):
        return True
    if engine.store is not None:
        return False
    executor = engine.executor
    return isinstance(executor, SerialExecutor) or getattr(executor, "jobs", 0) == 1


def figure6_runtime(
    settings: ExperimentSettings | None = None,
    dataset_names: tuple[str, ...] | None = None,
    engine: ExperimentEngine | None = None,
) -> list[dict[str, object]]:
    """Reproduce Figure 6: battleship runtime (seconds) per iteration.

    The figure reports *measured* runtimes, so given a parallel or
    store-backed engine the runs are re-measured through a dedicated serial,
    store-less engine (with a warning).  The fresh results are then handed
    back to the caller's engine — serial measurements are valid artifacts;
    only *replaying* stored timings is not — so overlapping figures don't
    re-execute the same specs.
    """
    settings = _resolve_settings(settings, engine)
    if engine is not None and engine.settings != settings:
        # Checked before any timing run, not only when adopt_results would
        # reject the finished sweep's results at the very end.
        raise ConfigurationError(
            "figure6_runtime was given settings different from the engine's; "
            "build both from the same ExperimentSettings")
    dataset_names = dataset_names or settings.datasets
    timing_engine = engine
    if engine is not None and not _measures_timings_faithfully(engine):
        warnings.warn(
            "figure 6: re-measuring selection runtimes through a serial, "
            "store-less engine (timings taken under parallel contention or "
            "replayed from artifacts would be invalid)",
            stacklevel=2)
        timing_engine = ExperimentEngine(settings)
    rows: list[dict[str, object]] = []
    try:
        for dataset_name in dataset_names:
            run = run_method(dataset_name, "battleship", settings,
                             engine=timing_engine)
            runtimes = run.selection_runtimes()
            for iteration, seconds in enumerate(runtimes, start=1):
                rows.append({
                    "dataset": dataset_name,
                    "iteration": iteration,
                    "selection_seconds": round(seconds, 3),
                })
    finally:
        # Adopt even on interruption/failure: runs the timing engine did
        # complete would otherwise be lost with it, forcing a resume to
        # re-execute them.
        if timing_engine is not engine:
            engine.adopt_results(timing_engine.cached_results())
            engine.total_report.merge(timing_engine.total_report)
    return rows


# --------------------------------------------------------------------------- #
# Figure 7 — local vs. spatial certainty (β ablation)
# --------------------------------------------------------------------------- #
def figure7_beta_ablation(
    settings: ExperimentSettings | None = None,
    dataset_names: tuple[str, ...] = ABLATION_DATASETS,
    betas: tuple[float, ...] = (0.0, 0.5, 1.0),
    engine: ExperimentEngine | None = None,
) -> dict[str, dict[float, LearningCurve]]:
    """Reproduce Figure 7: battleship with β ∈ {0, 0.5, 1} and α = 0.5."""
    settings = _resolve_settings(settings, engine)
    groups = {
        (dataset_name, beta): enumerate_run_specs(
            dataset_name, "battleship", settings, beta=beta, alphas=(0.5,))
        for dataset_name in dataset_names
        for beta in betas
    }
    curves = run_curve_grid(groups, settings, engine)
    return {
        dataset_name: {beta: curves[(dataset_name, beta)] for beta in betas}
        for dataset_name in dataset_names
    }


def figure7_rows(curves: dict[str, dict[float, LearningCurve]]) -> list[dict[str, object]]:
    """Summary rows (final F1 per β) with the paper's values."""
    rows = []
    for dataset_name, by_beta in curves.items():
        for beta, curve in by_beta.items():
            rows.append({
                "dataset": dataset_name,
                "beta": beta,
                "final_f1": round(curve.final_f1 * 100, 2),
                "paper_final_f1": FIGURE7_BETA_F1.get(dataset_name, {}).get(beta),
            })
    return rows


# --------------------------------------------------------------------------- #
# Figure 8 — the correspondence effect (α = 1, β = 1 vs. DAL)
# --------------------------------------------------------------------------- #
def figure8_correspondence(
    settings: ExperimentSettings | None = None,
    dataset_names: tuple[str, ...] = ABLATION_DATASETS,
    engine: ExperimentEngine | None = None,
) -> list[dict[str, object]]:
    """Reproduce Figure 8: DAL's criterion confined to connected components.

    With α = 1 and β = 1 the battleship approach ranks purely by the model's
    conditional entropy — exactly DAL's criterion — so any remaining difference
    is due to the graph separation and budget distribution (correspondence).
    """
    settings = _resolve_settings(settings, engine)
    groups = {}
    for dataset_name in dataset_names:
        groups[(dataset_name, "battleship")] = enumerate_run_specs(
            dataset_name, "battleship", settings, beta=1.0, alphas=(1.0,))
        groups[(dataset_name, "dal")] = enumerate_run_specs(
            dataset_name, "dal", settings)
    curves = run_curve_grid(groups, settings, engine)

    rows: list[dict[str, object]] = []
    for dataset_name in dataset_names:
        battleship = curves[(dataset_name, "battleship")]
        dal = curves[(dataset_name, "dal")]
        paper = FIGURE8_CORRESPONDENCE.get(dataset_name, {})
        rows.append({
            "dataset": dataset_name,
            "battleship_final_f1": round(battleship.final_f1 * 100, 2),
            "dal_final_f1": round(dal.final_f1 * 100, 2),
            "battleship_auc": round(battleship.auc(), 2),
            "dal_auc": round(dal.auc(), 2),
            "paper_battleship_auc": paper.get("battleship_auc"),
            "paper_dal_auc": paper.get("dal_auc"),
        })
    return rows


# --------------------------------------------------------------------------- #
# Figure 9 — weak supervision on/off
# --------------------------------------------------------------------------- #
def figure9_weak_supervision(
    settings: ExperimentSettings | None = None,
    dataset_names: tuple[str, ...] = ABLATION_DATASETS,
    engine: ExperimentEngine | None = None,
) -> list[dict[str, object]]:
    """Reproduce Figure 9: battleship and DAL with and without weak supervision."""
    settings = _resolve_settings(settings, engine)
    modes = (WeakSupervisionMode.SELECTOR, WeakSupervisionMode.OFF)
    groups = {
        (dataset_name, method, mode): enumerate_run_specs(
            dataset_name, method, settings, weak_supervision=mode)
        for dataset_name in dataset_names
        for method in ("battleship", "dal")
        for mode in modes
    }
    curves = run_curve_grid(groups, settings, engine)

    rows: list[dict[str, object]] = []
    for dataset_name in dataset_names:
        results = {
            method: tuple(curves[(dataset_name, method, mode)] for mode in modes)
            for method in ("battleship", "dal")
        }
        paper = FIGURE9_WEAK_SUPERVISION.get(dataset_name, {})
        rows.append({
            "dataset": dataset_name,
            "battleship_f1": round(results["battleship"][0].final_f1 * 100, 2),
            "battleship_no_ws_f1": round(results["battleship"][1].final_f1 * 100, 2),
            "dal_f1": round(results["dal"][0].final_f1 * 100, 2),
            "dal_no_ws_f1": round(results["dal"][1].final_f1 * 100, 2),
            "paper_battleship_f1": paper.get("battleship"),
            "paper_battleship_no_ws_f1": paper.get("battleship_no_ws"),
            "paper_dal_f1": paper.get("dal"),
            "paper_dal_no_ws_f1": paper.get("dal_no_ws"),
        })
    return rows


# --------------------------------------------------------------------------- #
# Figure 10 — spatial vs. entropy-only weak supervision
# --------------------------------------------------------------------------- #
def figure10_ws_method(
    settings: ExperimentSettings | None = None,
    dataset_names: tuple[str, ...] = ABLATION_DATASETS,
    engine: ExperimentEngine | None = None,
) -> list[dict[str, object]]:
    """Reproduce Figure 10: battleship with its own WS vs. DAL-style WS."""
    settings = _resolve_settings(settings, engine)
    modes = (WeakSupervisionMode.SELECTOR, WeakSupervisionMode.ENTROPY)
    groups = {
        (dataset_name, mode): enumerate_run_specs(
            dataset_name, "battleship", settings, alphas=(0.5,),
            weak_supervision=mode)
        for dataset_name in dataset_names
        for mode in modes
    }
    curves = run_curve_grid(groups, settings, engine)

    rows: list[dict[str, object]] = []
    for dataset_name in dataset_names:
        spatial = curves[(dataset_name, WeakSupervisionMode.SELECTOR)]
        entropy = curves[(dataset_name, WeakSupervisionMode.ENTROPY)]
        paper = FIGURE10_WS_METHOD_AUC.get(dataset_name, {})
        rows.append({
            "dataset": dataset_name,
            "battleship_ws_auc": round(spatial.auc(), 2),
            "dal_style_ws_auc": round(entropy.auc(), 2),
            "battleship_ws_final_f1": round(spatial.final_f1 * 100, 2),
            "dal_style_ws_final_f1": round(entropy.final_f1 * 100, 2),
            "paper_battleship_ws_auc": paper.get("battleship_ws"),
            "paper_dal_style_ws_auc": paper.get("dal_style_ws"),
        })
    return rows
