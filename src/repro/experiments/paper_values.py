"""Numbers reported in the paper's tables and figures.

These constants are used by the benchmark harness and EXPERIMENTS.md to place
the measured results next to the published ones.  Absolute values are not
expected to match (the matcher substrate and the data are synthetic stand-ins,
see DESIGN.md); the comparison is about *shape*: ordering of methods, rough
factors, and where crossovers happen.

All F1 values are percentages, AUC values are the paper's unit-less
area-under-the-F1-curve scores.  ``None`` marks combinations the paper does
not report (DIAL and ZeroER are not evaluated on every dataset).
"""

from __future__ import annotations

#: Dataset order used by every paper table.
PAPER_DATASET_ORDER = (
    "walmart_amazon", "amazon_google", "wdc_cameras", "wdc_shoes",
    "abt_buy", "dblp_scholar",
)

#: Table 4 — F1 with 500 and 900 labeled samples, plus ZeroER / Full D.
TABLE4_F1: dict[str, dict[str, dict[int, float | None] | float | None]] = {
    "zeroer": {
        "walmart_amazon": 47.82, "amazon_google": 47.51, "wdc_cameras": None,
        "wdc_shoes": None, "abt_buy": 32.39, "dblp_scholar": 81.93,
    },
    "full_d": {
        "walmart_amazon": 81.60, "amazon_google": 68.75, "wdc_cameras": 83.65,
        "wdc_shoes": 73.48, "abt_buy": 84.95, "dblp_scholar": 95.46,
    },
    "random": {
        "walmart_amazon": {500: 33.79, 900: 61.57},
        "amazon_google": {500: 51.77, 900: 55.23},
        "wdc_cameras": {500: 58.22, 900: 71.54},
        "wdc_shoes": {500: 43.31, 900: 59.23},
        "abt_buy": {500: 45.79, 900: 52.42},
        "dblp_scholar": {500: 89.78, 900: 93.51},
    },
    "dal": {
        "walmart_amazon": {500: 46.17, 900: 75.47},
        "amazon_google": {500: 58.15, 900: 64.28},
        "wdc_cameras": {500: 65.53, 900: 75.93},
        "wdc_shoes": {500: 45.08, 900: 61.80},
        "abt_buy": {500: 34.49, 900: 74.08},
        "dblp_scholar": {500: 94.11, 900: 94.62},
    },
    "dial": {
        "walmart_amazon": {500: 41.40, 900: 41.00},
        "amazon_google": {500: 53.90, 900: 54.90},
        "wdc_cameras": {500: None, 900: None},
        "wdc_shoes": {500: None, 900: None},
        "abt_buy": {500: 61.30, 900: 52.30},
        "dblp_scholar": {500: 88.90, 900: 90.00},
    },
    "battleship": {
        "walmart_amazon": {500: 65.30, 900: 77.98},
        "amazon_google": {500: 61.48, 900: 66.94},
        "wdc_cameras": {500: 78.24, 900: 84.76},
        "wdc_shoes": {500: 61.93, 900: 71.57},
        "abt_buy": {500: 67.95, 900: 85.99},
        "dblp_scholar": {500: 93.47, 900: 94.75},
    },
}

#: Table 5 — AUC of the F1 learning curves.
TABLE5_AUC: dict[str, dict[str, float | None]] = {
    "random": {
        "walmart_amazon": 304.86, "amazon_google": 353.32, "wdc_cameras": 514.56,
        "wdc_shoes": 353.14, "abt_buy": 326.73, "dblp_scholar": 720.13,
    },
    "dal": {
        "walmart_amazon": 418.46, "amazon_google": 444.19, "wdc_cameras": 546.33,
        "wdc_shoes": 410.55, "abt_buy": 338.88, "dblp_scholar": 732.70,
    },
    "dial": {
        "walmart_amazon": 313.45, "amazon_google": 423.70, "wdc_cameras": None,
        "wdc_shoes": None, "abt_buy": 454.30, "dblp_scholar": 708.50,
    },
    "battleship": {
        "walmart_amazon": 491.15, "amazon_google": 473.03, "wdc_cameras": 605.25,
        "wdc_shoes": 490.06, "abt_buy": 515.96, "dblp_scholar": 740.54,
    },
}

#: Table 6 — final F1 for α ∈ {0, 0.25, 0.5, 0.75, 1} (β = 0.5).
TABLE6_ALPHA_F1: dict[str, dict[float, float]] = {
    "walmart_amazon": {0.0: 77.71, 0.25: 78.04, 0.5: 79.76, 0.75: 76.14, 1.0: 76.13},
    "amazon_google": {0.0: 65.10, 0.25: 65.38, 0.5: 67.23, 0.75: 68.22, 1.0: 66.10},
    "wdc_cameras": {0.0: 83.85, 0.25: 86.53, 0.5: 84.97, 0.75: 82.79, 1.0: 82.22},
    "wdc_shoes": {0.0: 66.08, 0.25: 68.48, 0.5: 72.98, 0.75: 73.24, 1.0: 71.65},
    "abt_buy": {0.0: 83.21, 0.25: 86.07, 0.5: 84.31, 0.75: 87.59, 1.0: 81.52},
    "dblp_scholar": {0.0: 93.95, 0.25: 94.47, 0.5: 96.03, 0.75: 93.75, 1.0: 93.81},
}

#: Figure 7 — final F1 for β ∈ {0, 0.5, 1} (α = 0.5).
FIGURE7_BETA_F1: dict[str, dict[float, float]] = {
    "walmart_amazon": {0.0: 76.37, 0.5: 79.76, 1.0: 77.59},
    "amazon_google": {0.0: 66.04, 0.5: 67.23, 1.0: 65.87},
}

#: Figure 8 — correspondence ablation (α = 1, β = 1): final F1 and AUC.
FIGURE8_CORRESPONDENCE: dict[str, dict[str, float]] = {
    "walmart_amazon": {"battleship_f1": 74.81, "dal_f1": 75.47,
                       "battleship_auc": 485.20, "dal_auc": 418.46},
}

#: Figure 9 — weak supervision on/off: final (maximum) F1.
FIGURE9_WEAK_SUPERVISION: dict[str, dict[str, float]] = {
    "walmart_amazon": {"battleship": 77.98, "battleship_no_ws": 60.66,
                       "dal": 75.47, "dal_no_ws": 50.70},
    "amazon_google": {"battleship": 66.94, "battleship_no_ws": 60.37,
                      "dal": 64.28, "dal_no_ws": 58.70},
}

#: Figure 10 — weak-supervision method comparison: AUC.
FIGURE10_WS_METHOD_AUC: dict[str, dict[str, float]] = {
    "walmart_amazon": {"battleship_ws": 503.58, "dal_style_ws": 482.92},
    "amazon_google": {"battleship_ws": 467.49, "dal_style_ws": 451.49},
}

#: Figure 6 — runtime notes: per-iteration runtimes of the battleship approach
#: on the paper's hardware decrease over iterations; DBLP-Scholar runs 430-549s
#: per iteration, the rest roughly 100-220s.
FIGURE6_RUNTIME_RANGE_SECONDS: dict[str, tuple[float, float]] = {
    "walmart_amazon": (100.0, 220.0),
    "amazon_google": (100.0, 220.0),
    "wdc_cameras": (100.0, 220.0),
    "wdc_shoes": (100.0, 220.0),
    "abt_buy": (100.0, 220.0),
    "dblp_scholar": (430.0, 549.0),
}
