"""Experiment settings mirroring Section 4.2 of the paper.

The paper runs 8 active-learning iterations with a budget of 100 labels per
iteration, a 100-sample seed (50 matches / 50 non-matches), averages the
battleship approach over α ∈ {0.25, 0.5, 0.75} with β = 0.5, and repeats every
configuration over 3 random seeds.  :func:`default_settings` scales those
counts with the active :class:`~repro.config.ScaleProfile` so the harness can
run on a laptop; ``REPRO_SCALE=paper`` restores the paper's numbers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.config import ScaleProfile, get_scale
from repro.datasets.registry import available_benchmarks
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig

#: The α values averaged by the paper's headline battleship configuration.
PAPER_ALPHAS: tuple[float, ...] = (0.25, 0.5, 0.75)
#: The β value fixed for the headline configuration.
PAPER_BETA: float = 0.5
#: Number of random seeds the paper averages over.
PAPER_NUM_SEEDS: int = 3

#: Datasets used for the component-analysis figures (Section 6).
ABLATION_DATASETS: tuple[str, ...] = ("walmart_amazon", "amazon_google")

#: :class:`ExperimentSettings` fields that only shape the experiment *grid*.
#: Every other field influences a single run and must be fingerprinted; the
#: engine's ``settings_fingerprint`` derives its payload as
#: ``fingerprint_fields(ExperimentSettings, exclude=GRID_ONLY_FIELDS)``, so a
#: new settings field is hashed by construction unless deliberately listed
#: here.
GRID_ONLY_FIELDS: tuple[str, ...] = ("datasets", "num_seeds", "alphas", "beta")


@dataclass(frozen=True)
class ExperimentSettings:
    """Resolved knobs shared by every experiment of the harness."""

    scale: ScaleProfile
    datasets: tuple[str, ...]
    iterations: int
    budget_per_iteration: int
    seed_size: int
    num_seeds: int
    alphas: tuple[float, ...]
    beta: float
    matcher_config: MatcherConfig = field(default_factory=MatcherConfig)
    featurizer_config: FeaturizerConfig = field(default_factory=FeaturizerConfig)
    base_random_seed: int = 7

    @property
    def labeled_checkpoints(self) -> tuple[int, ...]:
        """Cumulative labeled counts at which the matcher is evaluated."""
        return tuple(self.seed_size + i * self.budget_per_iteration
                     for i in range(self.iterations + 1))

    @property
    def mid_checkpoint(self) -> int:
        """The "500 labels" analogue: the checkpoint halfway through the run."""
        checkpoints = self.labeled_checkpoints
        return checkpoints[len(checkpoints) // 2]

    @property
    def final_checkpoint(self) -> int:
        """The "900 labels" analogue: the last checkpoint."""
        return self.labeled_checkpoints[-1]

    def seeds(self) -> tuple[int, ...]:
        """The random seeds every configuration is repeated over."""
        return tuple(self.base_random_seed + 13 * run for run in range(self.num_seeds))


def config_fingerprint(config: object) -> str:
    """Content hash of a frozen config dataclass (featurizer, matcher, …).

    Manifest lockfiles pin these per-component fingerprints next to the
    run-level :func:`~repro.experiments.engine.settings_fingerprint`, so a
    drifted default (say, a new ``FeaturizerConfig`` field) is attributable
    to the component that changed rather than just "the settings hash moved".
    """
    payload = dataclasses.asdict(config)  # type: ignore[call-overload]
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def default_settings(
    scale: ScaleProfile | str | None = None,
    datasets: tuple[str, ...] | None = None,
    num_seeds: int | None = None,
    alphas: tuple[float, ...] | None = None,
) -> ExperimentSettings:
    """Build :class:`ExperimentSettings` for the active scale profile.

    At reduced scales the number of seeds and the battleship α sweep are
    trimmed (1 seed, α = 0.5 only) so the full harness stays fast; the paper
    profile restores the published configuration.
    """
    scale = get_scale(scale) if not isinstance(scale, ScaleProfile) else scale
    is_paper = scale.name == "paper"
    return ExperimentSettings(
        scale=scale,
        datasets=tuple(datasets or available_benchmarks()),
        iterations=scale.iterations,
        budget_per_iteration=scale.budget_per_iteration,
        seed_size=scale.seed_size,
        num_seeds=num_seeds if num_seeds is not None else (PAPER_NUM_SEEDS if is_paper else 1),
        alphas=tuple(alphas) if alphas is not None else (PAPER_ALPHAS if is_paper else (0.5,)),
        beta=PAPER_BETA,
    )
