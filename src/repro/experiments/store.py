"""Persistent JSON artifact store for active-learning runs.

One completed :class:`~repro.active.loop.ActiveLearningResult` is one JSON
file named after the :meth:`~repro.experiments.engine.RunSpec.fingerprint` of
the spec that produced it.  The spec itself is embedded in the payload, so a
store directory is self-describing: results can be re-aggregated into new
figures and tables long after the sweep that produced them, and a re-executed
sweep skips every run whose artifact already exists (resume).

Layout::

    <root>/
        3f2a…c9.json   # {"format_version": 1, "spec": {…}, "result": {…}}
        71be…04.json
"""

from __future__ import annotations

import json
import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.active.loop import ActiveLearningResult
from repro.exceptions import ConfigurationError
from repro.experiments.faults import TornWriteError, active_injector

if TYPE_CHECKING:  # avoid a circular import; engine imports the store
    from repro.experiments.engine import RunSpec

#: Bumped whenever the artifact payload layout changes incompatibly.
FORMAT_VERSION = 1

#: Active collectors for deferred corruption warnings (innermost last).
_DEFERRED_CORRUPTION: list[list[str]] = []


@contextmanager
def collect_corruption_warnings(action: str = "resume") -> Iterator[list[str]]:
    """Collapse per-artifact corruption warnings into one summary.

    While the context is active, every corrupt artifact the store skips is
    collected instead of warned about individually; on exit a single summary
    warning names the action and the affected artifacts.  A 500-run resume
    against a damaged store then produces one line, not 500.  Outside the
    context (direct ``get`` calls, tests) the per-artifact warning remains.
    """
    collected: list[str] = []
    _DEFERRED_CORRUPTION.append(collected)
    try:
        yield collected
    finally:
        _DEFERRED_CORRUPTION.pop()
        if collected:
            shown = ", ".join(collected[:5])
            more = (f", … {len(collected) - 5} more"
                    if len(collected) > 5 else "")
            warnings.warn(
                f"Skipped {len(collected)} corrupt artifact(s) during "
                f"{action} ({shown}{more}); each affected run will be "
                "re-executed",
                stacklevel=3)


class ArtifactStore:
    """Directory of per-run JSON artifacts keyed by RunSpec fingerprint."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # A crash between temp-write and rename strands a ``*.json.tmp``
        # file; it describes no completed run, so it is garbage by
        # definition — and left around it would shadow the *next* writer's
        # temp file semantics.  Clean on init, when no writer can be active.
        for stale in self.root.glob("*.json.tmp"):
            stale.unlink(missing_ok=True)

    def path_for(self, spec: "RunSpec") -> Path:
        """The artifact file a result for ``spec`` lives at."""
        return self.root / f"{spec.fingerprint()}.json"

    def __contains__(self, spec: "RunSpec") -> bool:
        return self.path_for(spec).exists()

    def _read_payload(self, path: Path) -> dict[str, object]:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "format_version" not in payload:
            # Valid JSON of some other shape — foreign file or torn write,
            # not a genuine version conflict.  Treat as corruption (skip +
            # warn + re-execute) rather than halting the whole resume.
            raise KeyError("format_version")
        version = payload["format_version"]
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"Artifact {path} has format version {version!r}, expected "
                f"{FORMAT_VERSION}; use a fresh --store directory (or delete "
                f"the stale artifacts) to re-execute these runs")
        return payload

    def _load(self, path: Path) -> tuple[dict[str, object], ActiveLearningResult] | None:
        """Parse one artifact into ``(payload, result)``, tolerating damage.

        A truncated or otherwise corrupt artifact (killed process, full disk,
        manual edit) is reported with a warning and treated as absent, so a
        resumed sweep re-executes that one run instead of crashing.  An
        explicit format-version mismatch still raises: those artifacts are
        *valid* files the current code genuinely cannot interpret, and
        silently re-executing a whole store would be far more expensive than
        the instructed fix.
        """
        try:
            payload = self._read_payload(path)
            if not isinstance(payload.get("spec"), dict):
                raise KeyError("spec")
            return payload, ActiveLearningResult.from_dict(payload["result"])
        except ConfigurationError:
            raise
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError,
                ValueError) as error:
            if _DEFERRED_CORRUPTION:
                _DEFERRED_CORRUPTION[-1].append(path.name)
                return None
            warnings.warn(
                f"Skipping corrupt artifact {path} ({error.__class__.__name__}: "
                f"{error}); the run will be re-executed",
                stacklevel=3)
            return None

    def get(self, spec: "RunSpec") -> ActiveLearningResult | None:
        """Load the stored result for ``spec``, or ``None`` if absent/corrupt."""
        path = self.path_for(spec)
        if not path.exists():
            return None
        loaded = self._load(path)
        return loaded[1] if loaded is not None else None

    def put(self, spec: "RunSpec", result: ActiveLearningResult,
            manifest: str | None = None) -> Path:
        """Persist ``result`` under ``spec``'s fingerprint (atomically).

        ``manifest`` optionally records which experiment manifest produced
        the run (its ``name@hash`` identity) — purely provenance, additive
        to the payload, so manifest-stamped and plain artifacts interoperate
        within one format version.
        """
        path = self.path_for(spec)
        payload: dict[str, object] = {
            "format_version": FORMAT_VERSION,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        if manifest is not None:
            payload["manifest"] = manifest
        # Serialize before touching the filesystem: a result that cannot be
        # serialized must not leave a partial temp file behind.
        text = json.dumps(payload, indent=1, sort_keys=True)
        injector = active_injector()
        if injector is not None and injector.tear_next_write(path.stem):
            # Chaos: simulate a crash mid-write on a filesystem without
            # atomic-rename semantics — a truncated artifact lands at the
            # *final* path, exactly the damage `_load` must absorb on the
            # next resume.
            path.write_text(text[:max(1, len(text) // 3)], encoding="utf-8")
            raise TornWriteError(
                f"chaos: torn artifact write for {path.name}")
        # Write-then-fsync-then-rename so neither a crashed run nor a power
        # loss right after the rename can publish a truncated or empty
        # artifact that a resume would try to load.
        temporary = path.with_suffix(".json.tmp")
        try:
            with open(temporary, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
        except BaseException:
            temporary.unlink(missing_ok=True)
            raise
        os.replace(temporary, path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def items(self) -> Iterator[tuple[dict[str, object], ActiveLearningResult]]:
        """Iterate ``(spec_dict, result)`` over every stored artifact.

        Yields the raw spec dictionary (not a RunSpec) so re-aggregation
        scripts can filter without importing the engine.  Corrupt artifacts
        are skipped and reported as one summary warning for the whole scan.
        """
        with collect_corruption_warnings("store scan"):
            for path in sorted(self.root.glob("*.json")):
                loaded = self._load(path)
                if loaded is None:
                    continue
                payload, result = loaded
                yield payload["spec"], result
